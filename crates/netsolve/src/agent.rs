//! The NetSolve agent: servers register their services with it; clients
//! ask it for the best-suited server (paper §6.2: "When a client requests
//! a service it asks the agent to find the best suited server").

use crate::transport::Conn;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// A registered server as the agent tracks it.
#[derive(Clone)]
pub struct ServerHandle {
    /// Server name (diagnostics).
    pub name: Arc<str>,
    /// Channel delivering new connections to the server's accept loop.
    submit: Sender<Conn>,
    /// Number of requests currently being served.
    load: Arc<AtomicUsize>,
}

impl ServerHandle {
    pub(crate) fn new(name: &str, submit: Sender<Conn>, load: Arc<AtomicUsize>) -> Self {
        ServerHandle {
            name: name.into(),
            submit,
            load,
        }
    }

    /// Hands the server one end of a fresh connection.
    pub fn connect(&self, server_side: Conn) -> io::Result<()> {
        self.submit
            .send(server_side)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "server stopped"))
    }

    /// Requests currently in flight on this server.
    pub fn load(&self) -> usize {
        self.load.load(Ordering::Relaxed)
    }
}

/// In-process service registry with least-loaded selection.
#[derive(Default)]
pub struct Agent {
    table: Mutex<HashMap<String, Vec<ServerHandle>>>,
}

impl Agent {
    /// Creates an empty agent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handle` as a provider of each named service.
    pub fn register(&self, services: &[&str], handle: ServerHandle) {
        let mut t = self.table.lock();
        for s in services {
            t.entry((*s).to_string()).or_default().push(handle.clone());
        }
    }

    /// Picks the least-loaded provider of `service`.
    pub fn lookup(&self, service: &str) -> Option<ServerHandle> {
        let t = self.table.lock();
        t.get(service)?.iter().min_by_key(|h| h.load()).cloned()
    }

    /// All providers of a service (diagnostics).
    pub fn providers(&self, service: &str) -> usize {
        self.table.lock().get(service).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn dummy_handle(name: &str, load: usize) -> ServerHandle {
        let (tx, _rx) = channel();
        let l = Arc::new(AtomicUsize::new(load));
        ServerHandle::new(name, tx, l)
    }

    #[test]
    fn lookup_prefers_least_loaded() {
        let agent = Agent::new();
        agent.register(&["dgemm"], dummy_handle("busy", 5));
        agent.register(&["dgemm"], dummy_handle("idle", 0));
        agent.register(&["dgemm"], dummy_handle("mid", 2));
        let h = agent.lookup("dgemm").unwrap();
        assert_eq!(&*h.name, "idle");
        assert_eq!(agent.providers("dgemm"), 3);
    }

    #[test]
    fn unknown_service_is_none() {
        let agent = Agent::new();
        assert!(agent.lookup("nope").is_none());
        assert_eq!(agent.providers("nope"), 0);
    }

    #[test]
    fn one_server_many_services() {
        let agent = Agent::new();
        agent.register(&["dgemm", "ping"], dummy_handle("multi", 0));
        assert!(agent.lookup("dgemm").is_some());
        assert!(agent.lookup("ping").is_some());
    }

    #[test]
    fn connect_to_stopped_server_fails() {
        let h = {
            let (tx, rx) = channel();
            drop(rx);
            ServerHandle::new("gone", tx, Arc::new(AtomicUsize::new(0)))
        };
        let (a, _b) = adoc_sim::pipe::duplex_pipe(64);
        let (r, w) = a.split();
        assert!(h.connect(Conn::new(r, w)).is_err());
    }
}
