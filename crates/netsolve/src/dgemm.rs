//! The `dgemm` service kernel: C = A × B on square f64 matrices.
//!
//! The paper's NetSolve experiment (§6.2) submits dgemm requests whose
//! total time is transfer + compute; the compute side here is a blocked,
//! multi-threaded matrix multiply — real work, so Figures 8–9 keep their
//! time composition.

use adoc_data::Matrix;

/// Rows of C computed per cache block in the k dimension.
const K_BLOCK: usize = 64;

/// Multiplies `a × b` using `threads` worker threads.
///
/// Uses the i-k-j loop order (streaming rows of B) with k-blocking —
/// cache-friendly without needing transposition.
pub fn dgemm(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.n, b.n, "dgemm requires equal dimensions");
    let n = a.n;
    let mut c = Matrix::sparse(n);
    if n == 0 {
        return c;
    }
    let threads = threads.clamp(1, n);

    // Split C's rows across threads; each worker owns a disjoint slice.
    let rows_per = n.div_ceil(threads);
    let a_data = &a.data;
    let b_data = &b.data;
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut c.data;
        let mut row0 = 0usize;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = (rows_per * n).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let start_row = row0;
            row0 += take / n;
            handles.push(s.spawn(move || {
                multiply_rows(a_data, b_data, chunk, start_row, n);
            }));
        }
        for h in handles {
            h.join().expect("dgemm worker panicked");
        }
    });
    c
}

/// Computes `chunk` = rows `[start_row, start_row + chunk.len()/n)` of C.
fn multiply_rows(a: &[f64], b: &[f64], chunk: &mut [f64], start_row: usize, n: usize) {
    let rows = chunk.len() / n;
    for k0 in (0..n).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(n);
        for i in 0..rows {
            let arow = &a[(start_row + i) * n..(start_row + i + 1) * n];
            let crow = &mut chunk[i * n..(i + 1) * n];
            for k in k0..k1 {
                let aik = arow[k];
                if aik == 0.0 {
                    continue; // sparse (all-zero) matrices short-circuit
                }
                let brow = &b[k * n..(k + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// Reference single-threaded naive multiply (tests).
pub fn dgemm_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.n;
    let mut c = Matrix::sparse(n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.at(i, k) * b.at(k, j);
            }
            *c.at_mut(i, j) = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::dense(33, 1);
        let i = Matrix::identity(33);
        let c = dgemm(&a, &i, 4);
        assert_eq!(c.max_abs_diff(&a), 0.0);
        let c2 = dgemm(&i, &a, 4);
        assert_eq!(c2.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn matches_naive_reference() {
        for n in [1usize, 7, 16, 65, 100] {
            let a = Matrix::dense(n, 2);
            let b = Matrix::dense(n, 3);
            let fast = dgemm(&a, &b, 3);
            let slow = dgemm_naive(&a, &b);
            // Same operand order per output element would give exact
            // equality; blocking reorders the k-sum, so allow relative fp
            // noise against the largest magnitudes involved.
            let scale = slow
                .data
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
                .max(1.0);
            let diff = fast.max_abs_diff(&slow);
            assert!(
                diff / scale < 1e-12,
                "n={n}: diff {diff:e} at scale {scale:e}"
            );
        }
    }

    #[test]
    fn sparse_times_anything_is_zero() {
        let z = Matrix::sparse(50);
        let d = Matrix::dense(50, 4);
        assert!(dgemm(&z, &d, 2).data.iter().all(|&v| v == 0.0));
        assert!(dgemm(&d, &z, 2).data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn thread_counts_agree() {
        let a = Matrix::dense(48, 5);
        let b = Matrix::dense(48, 6);
        let one = dgemm(&a, &b, 1);
        for t in [2usize, 3, 7, 48, 100] {
            let many = dgemm(&a, &b, t);
            assert_eq!(one.max_abs_diff(&many), 0.0, "threads={t} changed results");
        }
    }

    #[test]
    fn zero_sized_matrix() {
        let z = Matrix::sparse(0);
        let c = dgemm(&z, &z, 4);
        assert_eq!(c.n, 0);
        assert!(c.data.is_empty());
    }
}
