//! The GridRPC application protocol: request/response encoding for
//! services, little-endian and length-delimited throughout.

use adoc_data::matrix::{self, Matrix};
use std::io;

/// How matrix payloads are serialized on the wire.
///
/// The paper's dense-matrix results (2.6× with compression over the
/// Internet) indicate a digit-oriented encoding; `Ascii` reproduces that.
/// `Binary` ships raw little-endian f64 for comparison/ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixEncoding {
    /// 13-significant-digit scientific notation (NetSolve-era default).
    Ascii,
    /// Raw little-endian f64.
    Binary,
}

impl MatrixEncoding {
    fn to_byte(self) -> u8 {
        match self {
            MatrixEncoding::Ascii => 0,
            MatrixEncoding::Binary => 1,
        }
    }

    fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(MatrixEncoding::Ascii),
            1 => Ok(MatrixEncoding::Binary),
            other => Err(bad_data(format!("unknown matrix encoding {other}"))),
        }
    }

    /// Serializes matrix values.
    pub fn encode(&self, values: &[f64]) -> Vec<u8> {
        match self {
            MatrixEncoding::Ascii => matrix::values_to_ascii(values),
            MatrixEncoding::Binary => matrix::values_to_binary(values),
        }
    }

    /// Deserializes matrix values.
    pub fn decode(&self, bytes: &[u8], expected: usize) -> io::Result<Vec<f64>> {
        match self {
            MatrixEncoding::Ascii => matrix::values_from_ascii(bytes, expected).map_err(bad_data),
            MatrixEncoding::Binary => matrix::values_from_binary(bytes, expected).map_err(bad_data),
        }
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A generic service request: a name plus an opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Service name (e.g. `"dgemm"`).
    pub service: String,
    /// Service-specific payload.
    pub body: Vec<u8>,
}

impl Request {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let name = self.service.as_bytes();
        let mut out = Vec::with_capacity(2 + name.len() + self.body.len());
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.body);
        out
    }

    /// Decodes from wire bytes.
    pub fn decode(bytes: &[u8]) -> io::Result<Request> {
        if bytes.len() < 2 {
            return Err(bad_data("request too short"));
        }
        let name_len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + name_len {
            return Err(bad_data("request name truncated"));
        }
        let service = std::str::from_utf8(&bytes[2..2 + name_len])
            .map_err(|e| bad_data(e.to_string()))?
            .to_string();
        Ok(Request {
            service,
            body: bytes[2 + name_len..].to_vec(),
        })
    }
}

/// A service response: success payload or an error string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The service's result payload.
    Ok(Vec<u8>),
    /// Service-side failure description.
    Err(String),
}

impl Response {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok(body) => {
                let mut out = Vec::with_capacity(1 + body.len());
                out.push(0);
                out.extend_from_slice(body);
                out
            }
            Response::Err(msg) => {
                let mut out = Vec::with_capacity(1 + msg.len());
                out.push(1);
                out.extend_from_slice(msg.as_bytes());
                out
            }
        }
    }

    /// Decodes from wire bytes.
    pub fn decode(bytes: &[u8]) -> io::Result<Response> {
        match bytes.first() {
            Some(0) => Ok(Response::Ok(bytes[1..].to_vec())),
            Some(1) => Ok(Response::Err(
                String::from_utf8_lossy(&bytes[1..]).into_owned(),
            )),
            Some(other) => Err(bad_data(format!("unknown response tag {other}"))),
            None => Err(bad_data("empty response")),
        }
    }
}

/// dgemm request body: two n×n matrices and their encoding.
#[derive(Debug, Clone)]
pub struct DgemmRequest {
    /// Matrix dimension.
    pub n: u32,
    /// Payload encoding.
    pub encoding: MatrixEncoding,
    /// Operand A.
    pub a: Matrix,
    /// Operand B.
    pub b: Matrix,
}

impl DgemmRequest {
    /// Encodes the body (wrapped in a [`Request`] by the client).
    pub fn encode(&self) -> Vec<u8> {
        let a_bytes = self.encoding.encode(&self.a.data);
        let b_bytes = self.encoding.encode(&self.b.data);
        let mut out = Vec::with_capacity(13 + a_bytes.len() + b_bytes.len());
        out.push(self.encoding.to_byte());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&(a_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&a_bytes);
        out.extend_from_slice(&b_bytes);
        out
    }

    /// Decodes a body produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> io::Result<DgemmRequest> {
        if bytes.len() < 13 {
            return Err(bad_data("dgemm request too short"));
        }
        let encoding = MatrixEncoding::from_byte(bytes[0])?;
        let n = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
        let a_len = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")) as usize;
        if bytes.len() < 13 + a_len {
            return Err(bad_data("dgemm operand A truncated"));
        }
        let elems = (n as usize) * (n as usize);
        let a = encoding.decode(&bytes[13..13 + a_len], elems)?;
        let b = encoding.decode(&bytes[13 + a_len..], elems)?;
        Ok(DgemmRequest {
            n,
            encoding,
            a: Matrix {
                n: n as usize,
                data: a,
            },
            b: Matrix {
                n: n as usize,
                data: b,
            },
        })
    }
}

/// Encodes a dgemm result matrix for the response.
pub fn encode_dgemm_result(c: &Matrix, encoding: MatrixEncoding) -> Vec<u8> {
    encoding.encode(&c.data)
}

/// Decodes a dgemm result.
pub fn decode_dgemm_result(bytes: &[u8], n: usize, encoding: MatrixEncoding) -> io::Result<Matrix> {
    let data = encoding.decode(bytes, n * n)?;
    Ok(Matrix { n, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request {
            service: "dgemm".into(),
            body: vec![1, 2, 3, 4],
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn request_with_empty_body() {
        let r = Request {
            service: "ping".into(),
            body: vec![],
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[5, 0, b'a']).is_err()); // name longer than data
    }

    #[test]
    fn response_roundtrips() {
        let ok = Response::Ok(vec![9; 100]);
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        let err = Response::Err("no such service".into());
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
        assert!(Response::decode(&[7]).is_err());
        assert!(Response::decode(&[]).is_err());
    }

    #[test]
    fn dgemm_request_roundtrip_both_encodings() {
        for encoding in [MatrixEncoding::Ascii, MatrixEncoding::Binary] {
            let req = DgemmRequest {
                n: 12,
                encoding,
                a: Matrix::dense(12, 1),
                b: Matrix::dense(12, 2),
            };
            let dec = DgemmRequest::decode(&req.encode()).unwrap();
            assert_eq!(dec.n, 12);
            assert_eq!(dec.encoding, encoding);
            match encoding {
                MatrixEncoding::Binary => {
                    assert_eq!(dec.a.data, req.a.data);
                    assert_eq!(dec.b.data, req.b.data);
                }
                MatrixEncoding::Ascii => {
                    assert!(dec.a.max_abs_diff(&req.a) / 1e20 < 1e-12);
                }
            }
        }
    }

    #[test]
    fn dgemm_result_roundtrip() {
        let c = Matrix::dense(9, 7);
        for encoding in [MatrixEncoding::Ascii, MatrixEncoding::Binary] {
            let bytes = encode_dgemm_result(&c, encoding);
            let back = decode_dgemm_result(&bytes, 9, encoding).unwrap();
            match encoding {
                MatrixEncoding::Binary => assert_eq!(back.data, c.data),
                MatrixEncoding::Ascii => {
                    for (x, y) in back.data.iter().zip(&c.data) {
                        assert!(((x - y) / y).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn dgemm_truncations_rejected() {
        let req = DgemmRequest {
            n: 4,
            encoding: MatrixEncoding::Binary,
            a: Matrix::dense(4, 1),
            b: Matrix::dense(4, 2),
        };
        let enc = req.encode();
        assert!(DgemmRequest::decode(&enc[..10]).is_err());
        assert!(DgemmRequest::decode(&enc[..enc.len() - 4]).is_err());
    }
}
