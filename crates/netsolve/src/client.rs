//! The GridRPC client: looks a service up at the agent, connects to the
//! chosen server across the (simulated) network, and executes the request
//! as a normal RPC.

use crate::agent::Agent;
use crate::proto::{self, DgemmRequest, MatrixEncoding, Request, Response};
use crate::transport::{Conn, TransportMode};
use adoc_data::Matrix;
use adoc_sim::link::{duplex, LinkCfg};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Creates the two ends of a fresh client↔server connection.
pub type LinkFactory = Arc<dyn Fn() -> (Conn, Conn) + Send + Sync>;

/// A link factory over the simulation substrate with a fixed profile.
pub fn sim_link_factory(cfg: LinkCfg) -> LinkFactory {
    Arc::new(move || {
        let (a, b) = duplex(cfg.clone());
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        (Conn::new(ar, aw), Conn::new(br, bw))
    })
}

/// A link factory over plain fast pipes (tests).
pub fn pipe_link_factory() -> LinkFactory {
    Arc::new(|| {
        let (a, b) = adoc_sim::pipe::duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        (Conn::new(ar, aw), Conn::new(br, bw))
    })
}

/// Timing/volume metrics for one RPC.
#[derive(Debug, Clone, Copy)]
pub struct RpcMetrics {
    /// End-to-end request time (send + compute + receive).
    pub elapsed: Duration,
    /// Bytes the client put on the wire.
    pub sent_wire: u64,
    /// Size of the encoded request body.
    pub request_bytes: usize,
    /// Size of the response body.
    pub response_bytes: usize,
}

/// A NetSolve client bound to an agent, a network, and a transport mode.
pub struct Client {
    agent: Arc<Agent>,
    mode: TransportMode,
    links: LinkFactory,
}

impl Client {
    /// Creates a client.
    pub fn new(agent: Arc<Agent>, mode: TransportMode, links: LinkFactory) -> Self {
        Client { agent, mode, links }
    }

    /// Generic RPC: submit `body` to `service`, returning the response
    /// body and metrics.
    pub fn call(&self, service: &str, body: Vec<u8>) -> io::Result<(Vec<u8>, RpcMetrics)> {
        let handle = self.agent.lookup(service).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no server offers '{service}'"),
            )
        })?;

        let (client_side, server_side) = (self.links)();
        handle.connect(server_side)?;
        let mut transport = self.mode.wrap(client_side);

        let request = Request {
            service: service.to_string(),
            body,
        }
        .encode();
        let request_bytes = request.len();
        let start = Instant::now();
        let sent_wire = transport.send(&request)?;
        let raw = transport
            .recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        let elapsed = start.elapsed();

        match Response::decode(&raw)? {
            Response::Ok(body) => Ok((
                body,
                RpcMetrics {
                    elapsed,
                    sent_wire,
                    request_bytes,
                    response_bytes: raw.len() - 1,
                },
            )),
            Response::Err(msg) => Err(io::Error::other(format!("remote failure: {msg}"))),
        }
    }

    /// The paper's workload: C = A × B on the chosen server.
    pub fn dgemm(
        &self,
        a: &Matrix,
        b: &Matrix,
        encoding: MatrixEncoding,
    ) -> io::Result<(Matrix, RpcMetrics)> {
        assert_eq!(a.n, b.n);
        let body = DgemmRequest {
            n: a.n as u32,
            encoding,
            a: a.clone(),
            b: b.clone(),
        }
        .encode();
        let (resp, metrics) = self.call("dgemm", body)?;
        let c = proto::decode_dgemm_result(&resp, a.n, encoding)?;
        Ok((c, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DgemmService, EchoService, Server};
    use adoc::AdocConfig;

    fn setup(mode: TransportMode) -> Client {
        let agent = Arc::new(Agent::new());
        let server = Server::new("compute-1", mode.clone())
            .with_service("dgemm", Arc::new(DgemmService { threads: 2 }))
            .with_service("echo", Arc::new(EchoService));
        let names = server.service_names();
        let handle = server.start();
        agent.register(
            &names.iter().map(String::as_str).collect::<Vec<_>>(),
            handle,
        );
        Client::new(agent, mode, pipe_link_factory())
    }

    #[test]
    fn echo_rpc() {
        let client = setup(TransportMode::Raw);
        let (resp, m) = client.call("echo", b"grid rpc".to_vec()).unwrap();
        assert_eq!(resp, b"grid rpc");
        assert!(m.sent_wire > 0);
    }

    #[test]
    fn dgemm_rpc_matches_local_compute_raw_and_adoc() {
        for mode in [
            TransportMode::Raw,
            TransportMode::Adoc(AdocConfig::default()),
        ] {
            let client = setup(mode);
            let a = Matrix::dense(40, 11);
            let b = Matrix::dense(40, 12);
            let (c, _) = client.dgemm(&a, &b, MatrixEncoding::Binary).unwrap();
            let local = crate::dgemm::dgemm(&a, &b, 1);
            assert_eq!(c.max_abs_diff(&local), 0.0);
        }
    }

    #[test]
    fn dgemm_ascii_encoding_is_close() {
        let client = setup(TransportMode::Raw);
        let a = Matrix::dense(24, 21);
        let b = Matrix::identity(24);
        let (c, _) = client.dgemm(&a, &b, MatrixEncoding::Ascii).unwrap();
        // A × I = A up to the 13-digit wire rounding.
        for (x, y) in c.data.iter().zip(&a.data) {
            assert!(((x - y) / y).abs() < 1e-11, "{x} vs {y}");
        }
    }

    #[test]
    fn missing_service_is_not_found() {
        let client = setup(TransportMode::Raw);
        let err = client.call("fft", vec![]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn sparse_dgemm_over_adoc_compresses() {
        let mode = TransportMode::Adoc(AdocConfig::default().with_levels(1, 10));
        let client = setup(mode);
        let a = Matrix::sparse(150); // 180 KB of zeros in binary
        let b = Matrix::sparse(150);
        let (c, m) = client.dgemm(&a, &b, MatrixEncoding::Ascii).unwrap();
        assert!(c.data.iter().all(|&v| v == 0.0));
        assert!(
            m.sent_wire < m.request_bytes as u64 / 10,
            "sparse request should compress hugely: wire {} vs raw {}",
            m.sent_wire,
            m.request_bytes
        );
    }
}
