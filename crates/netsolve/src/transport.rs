//! Pluggable communication layer.
//!
//! The paper's integration swapped `read`/`write` for
//! `adoc_read`/`adoc_write` inside NetSolve's `communicator.c` and nothing
//! else; this module is that file. [`Transport`] is the seam: the raw
//! variant uses plain stream I/O, the AdOC variant routes the same framed
//! messages through an [`AdocSocket`].

use adoc::{AdocConfig, AdocSocket};
use std::io::{self, Read, Write};

/// A bidirectional connection as the middleware sees it.
pub struct Conn {
    /// Receiving half.
    pub reader: Box<dyn Read + Send>,
    /// Sending half.
    pub writer: Box<dyn Write + Send>,
}

impl Conn {
    /// Wraps any owned stream halves.
    pub fn new(reader: impl Read + Send + 'static, writer: impl Write + Send + 'static) -> Self {
        Conn {
            reader: Box::new(reader),
            writer: Box::new(writer),
        }
    }
}

/// Which communication layer a deployment uses.
#[derive(Clone, Default)]
pub enum TransportMode {
    /// Plain read/write (stock NetSolve).
    #[default]
    Raw,
    /// AdOC with the given configuration (NetSolve+AdOC).
    Adoc(AdocConfig),
}

impl std::fmt::Debug for TransportMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportMode::Raw => write!(f, "Raw"),
            TransportMode::Adoc(_) => write!(f, "Adoc"),
        }
    }
}

impl TransportMode {
    /// Human-readable label for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            TransportMode::Raw => "NetSolve",
            TransportMode::Adoc(_) => "NetSolve+AdOC",
        }
    }

    /// Wraps a connection in this mode's transport.
    pub fn wrap(&self, conn: Conn) -> Box<dyn Transport> {
        match self {
            TransportMode::Raw => Box::new(RawTransport {
                reader: conn.reader,
                writer: conn.writer,
            }),
            TransportMode::Adoc(cfg) => Box::new(AdocTransport {
                sock: AdocSocket::with_config(conn.reader, conn.writer, cfg.clone())
                    .expect("TransportMode::Adoc carries a valid AdocConfig"),
            }),
        }
    }
}

/// Message-oriented view of a connection: one `send` pairs with one
/// `recv` on the peer.
pub trait Transport: Send {
    /// Sends one length-prefixed message; returns bytes put on the wire.
    fn send(&mut self, msg: &[u8]) -> io::Result<u64>;
    /// Receives one message (None at end of stream).
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>>;
}

/// Stock NetSolve: plain stream I/O with a u64 length prefix.
pub struct RawTransport {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
}

impl Transport for RawTransport {
    fn send(&mut self, msg: &[u8]) -> io::Result<u64> {
        self.writer.write_all(&(msg.len() as u64).to_le_bytes())?;
        self.writer.write_all(msg)?;
        self.writer.flush()?;
        Ok(8 + msg.len() as u64)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut len_buf = [0u8; 8];
        // Distinguish clean EOF from a torn header.
        match self.reader.read(&mut len_buf[..1])? {
            0 => return Ok(None),
            _ => self.reader.read_exact(&mut len_buf[1..])?,
        }
        let len = u64::from_le_bytes(len_buf);
        let mut msg = vec![
            0u8;
            usize::try_from(len).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "message too large")
            })?
        ];
        self.reader.read_exact(&mut msg)?;
        Ok(Some(msg))
    }
}

/// NetSolve+AdOC: the identical framing, but each read/write call is the
/// AdOC one.
pub struct AdocTransport {
    sock: AdocSocket<Box<dyn Read + Send>, Box<dyn Write + Send>>,
}

impl AdocTransport {
    /// Access to AdOC statistics (probe outcomes, level histogram …).
    pub fn stats(&self) -> &adoc::TransferStats {
        self.sock.stats()
    }
}

impl Transport for AdocTransport {
    fn send(&mut self, msg: &[u8]) -> io::Result<u64> {
        // One logical message = one adoc_write: the length prefix rides in
        // front of the payload, exactly as the raw variant frames it.
        let mut framed = Vec::with_capacity(8 + msg.len());
        framed.extend_from_slice(&(msg.len() as u64).to_le_bytes());
        framed.extend_from_slice(msg);
        let report = self.sock.write(&framed)?;
        Ok(report.wire)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut len_buf = [0u8; 8];
        match self.sock.read(&mut len_buf)? {
            0 => return Ok(None),
            n if n == len_buf.len() => {}
            n => {
                // Partial first read: finish the prefix.
                let mut filled = n;
                while filled < 8 {
                    let m = self.sock.read(&mut len_buf[filled..])?;
                    if m == 0 {
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                    filled += m;
                }
            }
        }
        let len = u64::from_le_bytes(len_buf);
        let mut msg =
            vec![
                0u8;
                usize::try_from(len)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "message too large"))?
            ];
        self.sock.read_exact(&mut msg)?;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adoc_sim::pipe::duplex_pipe;
    use std::thread;

    fn conn_pair() -> (Conn, Conn) {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        (Conn::new(ar, aw), Conn::new(br, bw))
    }

    fn roundtrip(mode_a: &TransportMode, mode_b: &TransportMode, msgs: Vec<Vec<u8>>) {
        let (ca, cb) = conn_pair();
        let mut ta = mode_a.wrap(ca);
        let mut tb = mode_b.wrap(cb);
        let expect = msgs.clone();
        let t = thread::spawn(move || {
            for m in &msgs {
                ta.send(m).unwrap();
            }
            ta
        });
        for m in &expect {
            let got = tb.recv().unwrap().expect("message expected");
            assert_eq!(&got, m);
        }
        t.join().unwrap();
    }

    fn sample_msgs() -> Vec<Vec<u8>> {
        vec![
            b"".to_vec(),
            b"short".to_vec(),
            b"medium message with some repetition repetition repetition".to_vec(),
            vec![7u8; 1 << 20],
        ]
    }

    #[test]
    fn raw_roundtrip() {
        roundtrip(&TransportMode::Raw, &TransportMode::Raw, sample_msgs());
    }

    #[test]
    fn adoc_roundtrip() {
        let m = TransportMode::Adoc(AdocConfig::default());
        roundtrip(&m, &m, sample_msgs());
    }

    #[test]
    fn adoc_forced_compression_roundtrip() {
        let m = TransportMode::Adoc(AdocConfig::default().with_levels(1, 10));
        roundtrip(&m, &m, vec![vec![b'z'; 3 << 20]]);
    }

    #[test]
    fn recv_none_at_eof() {
        let (ca, cb) = conn_pair();
        let ta = TransportMode::Raw.wrap(ca);
        let mut tb = TransportMode::Raw.wrap(cb);
        drop(ta);
        assert!(tb.recv().unwrap().is_none());
    }

    #[test]
    fn adoc_recv_none_at_eof() {
        let (ca, cb) = conn_pair();
        let ta = TransportMode::Adoc(AdocConfig::default()).wrap(ca);
        let mut tb = TransportMode::Adoc(AdocConfig::default()).wrap(cb);
        drop(ta);
        assert!(tb.recv().unwrap().is_none());
    }

    #[test]
    fn adoc_transport_compresses_large_payloads() {
        let (ca, cb) = conn_pair();
        let mode = TransportMode::Adoc(AdocConfig::default().with_levels(1, 10));
        let mut ta = mode.wrap(ca);
        let mut tb = mode.wrap(cb);
        let msg = b"compressible compressible ".repeat(60_000);
        let expect = msg.clone();
        let t = thread::spawn(move || {
            let wire = ta.send(&msg).unwrap();
            assert!(
                wire < msg.len() as u64 / 2,
                "wire {wire} vs raw {}",
                msg.len()
            );
        });
        let got = tb.recv().unwrap().unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }
}
