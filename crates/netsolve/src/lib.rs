//! # netsolve — a NetSolve-style GridRPC middleware substrate
//!
//! The AdOC paper's §6.2 evaluates the library inside NetSolve: clients
//! submit `dgemm` requests through an agent to computational servers, and
//! the only change for "NetSolve+AdOC" is swapping the communicator's
//! `read`/`write` for `adoc_read`/`adoc_write`. This crate rebuilds that
//! stack:
//!
//! * [`agent`] — service registry with least-loaded server selection;
//! * [`server`] — accept loop + per-connection handlers + the
//!   [`server::DgemmService`] compute kernel;
//! * [`client`] — RPC submission over a pluggable network
//!   ([`client::sim_link_factory`] wires in the simulated WAN/LAN);
//! * [`transport`] — the `communicator.c` seam: [`transport::TransportMode::Raw`]
//!   vs [`transport::TransportMode::Adoc`];
//! * [`proto`] — request/response and matrix wire encodings;
//! * [`dgemm`] — blocked multi-threaded matrix multiply.
//!
//! ```
//! use netsolve::prelude::*;
//! use std::sync::Arc;
//!
//! let agent = Arc::new(Agent::new());
//! let server = Server::new("compute-1", TransportMode::Raw)
//!     .with_service("dgemm", Arc::new(DgemmService { threads: 2 }));
//! let names = server.service_names();
//! let handle = server.start();
//! agent.register(&names.iter().map(String::as_str).collect::<Vec<_>>(), handle);
//!
//! let client = Client::new(agent, TransportMode::Raw, pipe_link_factory());
//! let a = adoc_data::Matrix::identity(16);
//! let (c, _metrics) = client.dgemm(&a, &a, MatrixEncoding::Binary).unwrap();
//! assert_eq!(c.max_abs_diff(&a), 0.0);
//! ```

#![warn(missing_docs)]
pub mod agent;
pub mod client;
pub mod dgemm;
pub mod proto;
pub mod server;
pub mod transport;

/// Common imports for middleware users.
pub mod prelude {
    pub use crate::agent::Agent;
    pub use crate::client::{pipe_link_factory, sim_link_factory, Client, RpcMetrics};
    pub use crate::dgemm::dgemm;
    pub use crate::proto::MatrixEncoding;
    pub use crate::server::{DgemmService, EchoService, Server, Service};
    pub use crate::transport::{Conn, Transport, TransportMode};
}

pub use prelude::*;
