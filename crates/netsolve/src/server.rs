//! NetSolve computational servers: an accept loop + one handler thread
//! per connection, dispatching requests to registered services.

use crate::agent::ServerHandle;
use crate::dgemm::dgemm;
use crate::proto::{self, DgemmRequest, Request, Response};
use crate::transport::{Conn, TransportMode};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

/// A computational service.
pub trait Service: Send + Sync {
    /// Handles one request body, returning the response body.
    fn call(&self, body: &[u8]) -> io::Result<Vec<u8>>;
}

/// The paper's workload: matrix multiplication.
pub struct DgemmService {
    /// Worker threads per request.
    pub threads: usize,
}

impl Service for DgemmService {
    fn call(&self, body: &[u8]) -> io::Result<Vec<u8>> {
        let req = DgemmRequest::decode(body)?;
        let c = dgemm(&req.a, &req.b, self.threads);
        Ok(proto::encode_dgemm_result(&c, req.encoding))
    }
}

/// Trivial echo service (diagnostics and tests).
pub struct EchoService;

impl Service for EchoService {
    fn call(&self, body: &[u8]) -> io::Result<Vec<u8>> {
        Ok(body.to_vec())
    }
}

/// Builder for a server process.
pub struct Server {
    name: String,
    mode: TransportMode,
    services: HashMap<String, Arc<dyn Service>>,
}

impl Server {
    /// Creates a server speaking the given transport.
    pub fn new(name: &str, mode: TransportMode) -> Self {
        Server {
            name: name.to_string(),
            mode,
            services: HashMap::new(),
        }
    }

    /// Adds a service.
    pub fn with_service(mut self, name: &str, svc: Arc<dyn Service>) -> Self {
        self.services.insert(name.to_string(), svc);
        self
    }

    /// Names of registered services.
    pub fn service_names(&self) -> Vec<String> {
        self.services.keys().cloned().collect()
    }

    /// Starts the accept loop and returns the handle to register with an
    /// agent. The server runs until every clone of the handle is dropped.
    pub fn start(self) -> ServerHandle {
        let (tx, rx) = channel::<Conn>();
        let load = Arc::new(AtomicUsize::new(0));
        let handle = ServerHandle::new(&self.name, tx, load.clone());
        let services = Arc::new(self.services);
        let mode = self.mode;
        std::thread::spawn(move || {
            // Accept loop: one handler thread per incoming connection.
            for conn in rx {
                let services = services.clone();
                let mode = mode.clone();
                let load = load.clone();
                load.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || {
                    let _ = handle_connection(conn, &mode, &services);
                    load.fetch_sub(1, Ordering::Relaxed);
                });
            }
        });
        handle
    }
}

fn handle_connection(
    conn: Conn,
    mode: &TransportMode,
    services: &HashMap<String, Arc<dyn Service>>,
) -> io::Result<()> {
    let mut transport = mode.wrap(conn);
    while let Some(msg) = transport.recv()? {
        let response = match Request::decode(&msg) {
            Ok(req) => match services.get(&req.service) {
                Some(svc) => match svc.call(&req.body) {
                    Ok(body) => Response::Ok(body),
                    Err(e) => Response::Err(format!("service error: {e}")),
                },
                None => Response::Err(format!("unknown service '{}'", req.service)),
            },
            Err(e) => Response::Err(format!("malformed request: {e}")),
        };
        transport.send(&response.encode())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;
    use adoc_sim::pipe::duplex_pipe;

    fn conn_pair() -> (Conn, Conn) {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        (Conn::new(ar, aw), Conn::new(br, bw))
    }

    #[test]
    fn echo_service_roundtrip() {
        let handle = Server::new("s1", TransportMode::Raw)
            .with_service("echo", Arc::new(EchoService))
            .start();
        let (client_side, server_side) = conn_pair();
        handle.connect(server_side).unwrap();
        let mut t = TransportMode::Raw.wrap(client_side);
        t.send(
            &Request {
                service: "echo".into(),
                body: b"hi there".to_vec(),
            }
            .encode(),
        )
        .unwrap();
        let resp = Response::decode(&t.recv().unwrap().unwrap()).unwrap();
        assert_eq!(resp, Response::Ok(b"hi there".to_vec()));
    }

    #[test]
    fn unknown_service_reports_error() {
        let handle = Server::new("s2", TransportMode::Raw).start();
        let (client_side, server_side) = conn_pair();
        handle.connect(server_side).unwrap();
        let mut t = TransportMode::Raw.wrap(client_side);
        t.send(
            &Request {
                service: "nope".into(),
                body: vec![],
            }
            .encode(),
        )
        .unwrap();
        match Response::decode(&t.recv().unwrap().unwrap()).unwrap() {
            Response::Err(msg) => assert!(msg.contains("unknown service")),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn multiple_requests_per_connection() {
        let handle = Server::new("s3", TransportMode::Raw)
            .with_service("echo", Arc::new(EchoService))
            .start();
        let (client_side, server_side) = conn_pair();
        handle.connect(server_side).unwrap();
        let mut t = TransportMode::Raw.wrap(client_side);
        for i in 0..10u8 {
            t.send(
                &Request {
                    service: "echo".into(),
                    body: vec![i; 10],
                }
                .encode(),
            )
            .unwrap();
            let resp = Response::decode(&t.recv().unwrap().unwrap()).unwrap();
            assert_eq!(resp, Response::Ok(vec![i; 10]));
        }
    }

    #[test]
    fn malformed_request_does_not_kill_connection() {
        let handle = Server::new("s4", TransportMode::Raw)
            .with_service("echo", Arc::new(EchoService))
            .start();
        let (client_side, server_side) = conn_pair();
        handle.connect(server_side).unwrap();
        let mut t = TransportMode::Raw.wrap(client_side);
        t.send(&[0xFF]).unwrap(); // not a valid Request
        match Response::decode(&t.recv().unwrap().unwrap()).unwrap() {
            Response::Err(msg) => assert!(msg.contains("malformed")),
            other => panic!("{other:?}"),
        }
        // The connection still works.
        t.send(
            &Request {
                service: "echo".into(),
                body: b"still alive".to_vec(),
            }
            .encode(),
        )
        .unwrap();
        let resp = Response::decode(&t.recv().unwrap().unwrap()).unwrap();
        assert_eq!(resp, Response::Ok(b"still alive".to_vec()));
    }
}
