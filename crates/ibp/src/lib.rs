//! # adoc-ibp — an Internet-Backplane-Protocol-style depot over AdOC
//!
//! The paper's §4.2 footnote reports AdOC running inside IBP, a storage
//! service whose data handlers drive many transfers from many threads at
//! once — the library's thread-safety evidence. Its conclusion also names
//! an "IBP data mover" as deployed future work. This crate rebuilds that
//! substrate: a depot storing named byte extents, served over AdOC
//! connections, exercised concurrently.
//!
//! ```
//! use adoc_ibp::{Depot, IbpClient};
//! use adoc_sim::pipe::duplex_pipe;
//!
//! let depot = Depot::start(adoc::AdocConfig::default());
//! let (a, b) = duplex_pipe(1 << 20);
//! let (ar, aw) = a.split();
//! let (br, bw) = b.split();
//! depot.serve(Box::new(br), Box::new(bw));
//!
//! let mut client = IbpClient::connect(ar, aw);
//! client.store("extent-1", b"replicated bytes").unwrap();
//! assert_eq!(client.retrieve("extent-1").unwrap(), b"replicated bytes");
//! ```

#![warn(missing_docs)]
use adoc::{AdocConfig, AdocSocket};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

/// Wire opcodes.
const OP_STORE: u8 = 1;
const OP_RETRIEVE: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_LIST: u8 = 4;

const STATUS_OK: u8 = 0;
const STATUS_MISSING: u8 = 1;
const STATUS_BAD_REQUEST: u8 = 2;

type Store = Arc<Mutex<HashMap<String, Arc<Vec<u8>>>>>;
type BoxedConn = (Box<dyn Read + Send>, Box<dyn Write + Send>);

/// A running depot: storage plus an accept loop.
pub struct Depot {
    submit: Sender<BoxedConn>,
    store: Store,
}

impl Depot {
    /// Starts a depot whose connections speak AdOC with `cfg`.
    pub fn start(cfg: AdocConfig) -> Depot {
        let (tx, rx) = channel::<BoxedConn>();
        let store: Store = Arc::new(Mutex::new(HashMap::new()));
        let store2 = store.clone();
        std::thread::spawn(move || {
            for (r, w) in rx {
                let store = store2.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let Ok(sock) = AdocSocket::with_config(r, w, cfg) else {
                        return; // invalid config: refuse the connection
                    };
                    let _ = serve_connection(sock, &store);
                });
            }
        });
        Depot { submit: tx, store }
    }

    /// Hands the depot the server side of a fresh connection.
    pub fn serve(&self, reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) {
        let _ = self.submit.send((reader, writer));
    }

    /// Number of stored extents (diagnostics).
    pub fn extent_count(&self) -> usize {
        self.store.lock().len()
    }

    /// Total stored payload bytes (diagnostics).
    pub fn stored_bytes(&self) -> u64 {
        self.store.lock().values().map(|v| v.len() as u64).sum()
    }
}

fn serve_connection(
    mut sock: AdocSocket<Box<dyn Read + Send>, Box<dyn Write + Send>>,
    store: &Store,
) -> io::Result<()> {
    loop {
        let Some(cmd) = read_message(&mut sock)? else {
            return Ok(());
        };
        let reply = handle(&cmd, store);
        let mut framed = Vec::with_capacity(8 + reply.len());
        framed.extend_from_slice(&(reply.len() as u64).to_le_bytes());
        framed.extend_from_slice(&reply);
        sock.write(&framed)?;
    }
}

/// Reads one length-delimited command (None at EOF).
fn read_message(
    sock: &mut AdocSocket<Box<dyn Read + Send>, Box<dyn Write + Send>>,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 8];
    let mut filled = 0usize;
    while filled < 8 {
        let n = sock.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u64::from_le_bytes(len_buf) as usize;
    let mut msg = vec![0u8; len];
    sock.read_exact(&mut msg)?;
    Ok(Some(msg))
}

fn handle(cmd: &[u8], store: &Store) -> Vec<u8> {
    let Some((&op, rest)) = cmd.split_first() else {
        return vec![STATUS_BAD_REQUEST];
    };
    let parse_key = |bytes: &[u8]| -> Option<(String, usize)> {
        if bytes.len() < 2 {
            return None;
        }
        let klen = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + klen {
            return None;
        }
        let key = String::from_utf8(bytes[2..2 + klen].to_vec()).ok()?;
        Some((key, 2 + klen))
    };

    match op {
        OP_STORE => {
            let Some((key, off)) = parse_key(rest) else {
                return vec![STATUS_BAD_REQUEST];
            };
            store.lock().insert(key, Arc::new(rest[off..].to_vec()));
            vec![STATUS_OK]
        }
        OP_RETRIEVE => {
            let Some((key, _)) = parse_key(rest) else {
                return vec![STATUS_BAD_REQUEST];
            };
            match store.lock().get(&key).cloned() {
                Some(data) => {
                    let mut out = Vec::with_capacity(1 + data.len());
                    out.push(STATUS_OK);
                    out.extend_from_slice(&data);
                    out
                }
                None => vec![STATUS_MISSING],
            }
        }
        OP_DELETE => {
            let Some((key, _)) = parse_key(rest) else {
                return vec![STATUS_BAD_REQUEST];
            };
            match store.lock().remove(&key) {
                Some(_) => vec![STATUS_OK],
                None => vec![STATUS_MISSING],
            }
        }
        OP_LIST => {
            let keys: Vec<String> = {
                let g = store.lock();
                let mut v: Vec<String> = g.keys().cloned().collect();
                v.sort();
                v
            };
            let mut out = vec![STATUS_OK];
            out.extend_from_slice(keys.join("\n").as_bytes());
            out
        }
        _ => vec![STATUS_BAD_REQUEST],
    }
}

/// Client side of a depot connection.
pub struct IbpClient {
    sock: AdocSocket<Box<dyn Read + Send>, Box<dyn Write + Send>>,
}

impl IbpClient {
    /// Wraps the client side of a connection with default AdOC settings.
    pub fn connect(
        reader: impl Read + Send + 'static,
        writer: impl Write + Send + 'static,
    ) -> IbpClient {
        Self::connect_cfg(reader, writer, AdocConfig::default())
    }

    /// Wraps with an explicit AdOC configuration.
    pub fn connect_cfg(
        reader: impl Read + Send + 'static,
        writer: impl Write + Send + 'static,
        cfg: AdocConfig,
    ) -> IbpClient {
        IbpClient {
            sock: AdocSocket::with_config(
                Box::new(reader) as Box<dyn Read + Send>,
                Box::new(writer) as Box<dyn Write + Send>,
                cfg,
            )
            .expect("IbpClient requires a valid AdocConfig"),
        }
    }

    fn rpc(&mut self, cmd: Vec<u8>) -> io::Result<Vec<u8>> {
        let mut framed = Vec::with_capacity(8 + cmd.len());
        framed.extend_from_slice(&(cmd.len() as u64).to_le_bytes());
        framed.extend_from_slice(&cmd);
        self.sock.write(&framed)?;
        // Response: symmetric u64-length-prefixed framing.
        let mut len_buf = [0u8; 8];
        self.sock.read_exact(&mut len_buf)?;
        let len = u64::from_le_bytes(len_buf) as usize;
        let mut reply = vec![0u8; len];
        self.sock.read_exact(&mut reply)?;
        Ok(reply)
    }

    fn keyed(op: u8, key: &str) -> Vec<u8> {
        let mut cmd = Vec::with_capacity(3 + key.len());
        cmd.push(op);
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key.as_bytes());
        cmd
    }

    /// Stores `data` under `key` (overwrites).
    pub fn store(&mut self, key: &str, data: &[u8]) -> io::Result<()> {
        let mut cmd = Self::keyed(OP_STORE, key);
        cmd.extend_from_slice(data);
        match self.rpc(cmd)?.first() {
            Some(&STATUS_OK) => Ok(()),
            other => Err(io::Error::other(format!("store failed: {other:?}"))),
        }
    }

    /// Retrieves the extent stored under `key`.
    pub fn retrieve(&mut self, key: &str) -> io::Result<Vec<u8>> {
        let reply = self.rpc(Self::keyed(OP_RETRIEVE, key))?;
        match reply.split_first() {
            Some((&STATUS_OK, data)) => Ok(data.to_vec()),
            Some((&STATUS_MISSING, _)) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no extent '{key}'"),
            )),
            other => Err(io::Error::other(format!("retrieve failed: {other:?}"))),
        }
    }

    /// Deletes the extent under `key`.
    pub fn delete(&mut self, key: &str) -> io::Result<()> {
        match self.rpc(Self::keyed(OP_DELETE, key))?.first() {
            Some(&STATUS_OK) => Ok(()),
            Some(&STATUS_MISSING) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no extent '{key}'"),
            )),
            other => Err(io::Error::other(format!("delete failed: {other:?}"))),
        }
    }

    /// Lists stored keys.
    pub fn list(&mut self) -> io::Result<Vec<String>> {
        let reply = self.rpc(vec![OP_LIST])?;
        match reply.split_first() {
            Some((&STATUS_OK, data)) => {
                let text = String::from_utf8_lossy(data);
                Ok(text
                    .split('\n')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect())
            }
            other => Err(io::Error::other(format!("list failed: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adoc_sim::pipe::duplex_pipe;

    fn client_for(depot: &Depot) -> IbpClient {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        depot.serve(Box::new(br), Box::new(bw));
        IbpClient::connect(ar, aw)
    }

    #[test]
    fn store_retrieve_delete_list() {
        let depot = Depot::start(AdocConfig::default());
        let mut c = client_for(&depot);
        c.store("alpha", b"one").unwrap();
        c.store("beta", b"two").unwrap();
        assert_eq!(c.retrieve("alpha").unwrap(), b"one");
        assert_eq!(
            c.list().unwrap(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        c.delete("alpha").unwrap();
        assert!(c.retrieve("alpha").is_err());
        assert_eq!(depot.extent_count(), 1);
    }

    #[test]
    fn large_extents_roundtrip() {
        let depot = Depot::start(AdocConfig::default());
        let mut c = client_for(&depot);
        let big: Vec<u8> = b"extent data block ".repeat(100_000); // 1.8 MB
        c.store("big", &big).unwrap();
        assert_eq!(c.retrieve("big").unwrap(), big);
        assert_eq!(depot.stored_bytes(), big.len() as u64);
    }

    #[test]
    fn overwrite_replaces() {
        let depot = Depot::start(AdocConfig::default());
        let mut c = client_for(&depot);
        c.store("k", b"v1").unwrap();
        c.store("k", b"v2").unwrap();
        assert_eq!(c.retrieve("k").unwrap(), b"v2");
        assert_eq!(depot.extent_count(), 1);
    }

    #[test]
    fn missing_keys_are_not_found() {
        let depot = Depot::start(AdocConfig::default());
        let mut c = client_for(&depot);
        assert_eq!(
            c.retrieve("ghost").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            c.delete("ghost").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn many_threads_many_connections() {
        // The paper's thread-safety scenario: multiple data handlers
        // working a depot simultaneously, each over its own AdOC
        // connection.
        let depot = Arc::new(Depot::start(AdocConfig::default()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let depot = depot.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = client_for(&depot);
                for i in 0..10 {
                    let key = format!("t{t}-e{i}");
                    let data = vec![(t * 16 + i) as u8; 10_000 + i * 997];
                    c.store(&key, &data).unwrap();
                    assert_eq!(c.retrieve(&key).unwrap(), data, "{key}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(depot.extent_count(), 80);
    }
}
