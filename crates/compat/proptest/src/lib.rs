//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim
//! re-creates the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, integer-range /
//! tuple / [`Just`] / [`collection::vec`] strategies, [`any`],
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the seed-determined
//!   inputs; rerunning reproduces it exactly (the per-test RNG is
//!   seeded from the test's name), but the inputs are not minimised.
//! * **`prop_assume!` skips rather than retries**, so a test observes
//!   at most `cases` samples instead of exactly `cases` accepted ones.
//! * Case count honours `PROPTEST_CASES` (env) as an override so CI
//!   smoke jobs can cheapen the suite without touching code.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleStandard, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving every generated value (deterministic per test).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one property test.
///
/// Seeded by FNV-1a of the test's name so each test draws an
/// independent but fully reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property (overridable via the
    /// `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig::with_cases(64)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy producing values from the type's full "standard" domain.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// `any::<T>()` — every representable value of `T`, uniformly.
pub fn any<T: SampleStandard>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: SampleStandard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one arm (helper for the `prop_oneof!` macro).
    pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(elem, len)` — a vector of `elem`-generated values.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($arm)),+])
    };
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Skips the current case when its precondition does not hold.
///
/// Unlike real proptest this does not redraw a replacement case, so a
/// property observes at most `cases` samples.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` seed-deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                // One case runs inside a closure so `prop_assume!` can
                // skip the rest of the body with a plain `return`.
                let mut __one_case = || {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                __one_case();
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn mixed() -> impl Strategy<Value = Vec<u8>> {
        prop_oneof![
            crate::collection::vec(any::<u8>(), 0..64),
            (any::<u8>(), 0..32usize).prop_map(|(b, n)| vec![b; n]),
            crate::collection::vec(prop_oneof![Just(0u8), any::<u8>()], 0..64),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 3u8..=9, y in 10usize..20, (a, b) in (0u32..5, 0u32..=4)) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((10..20).contains(&y));
            prop_assert!(a < 5 && b <= 4);
        }

        #[test]
        fn vec_sizes_in_bounds(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in mixed()) {
            prop_assert!(v.len() < 64 + 1);
        }

        #[test]
        fn assume_skips(v in 0u8..10) {
            prop_assume!(v >= 5);
            prop_assert!(v >= 5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let s = crate::collection::vec(any::<u8>(), 8..=8);
        let a = s.generate(&mut crate::test_rng("t"));
        let b = s.generate(&mut crate::test_rng("t"));
        assert_eq!(a, b);
    }
}
