//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the subset of the criterion API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! throughput / sample-size / measurement-time / sampling-mode knobs,
//! `bench_function` / `bench_with_input`, and `Bencher::iter` — with a
//! simple mean-of-samples measurement loop instead of criterion's
//! statistical machinery.
//!
//! Command-line flags understood (criterion-compatible where it
//! matters for CI):
//!
//! * `--test` — run every benchmark body exactly once and report
//!   nothing but pass/fail; this is what the CI bench-smoke job uses.
//! * `--quick` — cap measurement at one sample after warm-up.
//! * a bare positional argument — substring filter on benchmark ids.
//! * `--bench` (always appended by `cargo bench`) and unknown flags
//!   are ignored.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One measured benchmark, accumulated for the JSON report.
#[derive(Clone, Debug)]
pub struct JsonRecord {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean wall time per iteration, in nanoseconds.
    pub mean_ns: u128,
    /// Number of measured iterations behind the mean.
    pub samples: u32,
    /// Bytes processed per iteration, when declared via [`Throughput`].
    pub throughput_bytes: Option<u64>,
}

impl JsonRecord {
    /// MiB/s implied by `throughput_bytes` and `mean_ns`, if both known.
    pub fn mib_per_s(&self) -> Option<f64> {
        let b = self.throughput_bytes?;
        if self.mean_ns == 0 {
            return None;
        }
        Some(b as f64 / (self.mean_ns as f64 / 1e9) / (1024.0 * 1024.0))
    }
}

/// Results gathered across every group in this process, in run order.
static JSON_RECORDS: Mutex<Vec<JsonRecord>> = Mutex::new(Vec::new());

fn push_json_record(rec: JsonRecord) {
    JSON_RECORDS.lock().expect("bench report lock").push(rec);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the accumulated results as JSON to the path named by the
/// `ADOC_BENCH_JSON` environment variable, if set. Called automatically
/// at the end of [`criterion_main!`]; a no-op otherwise.
///
/// The schema is intentionally flat so baselines diff cleanly:
///
/// ```json
/// { "schema": "adoc-bench-v1",
///   "results": [ { "id": "...", "mean_ns": 1, "samples": 1,
///                  "throughput_bytes": 1, "mib_per_s": 1.0 } ] }
/// ```
pub fn flush_json_report() {
    let Ok(path) = std::env::var("ADOC_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let records = JSON_RECORDS.lock().expect("bench report lock");
    let mut body = String::from("{\n  \"schema\": \"adoc-bench-v1\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let tp = match r.throughput_bytes {
            Some(b) => format!(", \"throughput_bytes\": {b}"),
            None => String::new(),
        };
        let rate = match r.mib_per_s() {
            Some(m) => format!(", \"mib_per_s\": {m:.2}"),
            None => String::new(),
        };
        body.push_str(&format!(
            "    {{ \"id\": \"{}\", \"mean_ns\": {}, \"samples\": {}{tp}{rate} }}{sep}\n",
            json_escape(&r.id),
            r.mean_ns,
            r.samples,
        ));
    }
    body.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("ADOC_BENCH_JSON: cannot write {path}: {e}");
    }
}

/// How many bytes/elements one iteration processes, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Sampling strategy knob (accepted for API compatibility; the shim's
/// measurement loop behaves the same under every mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion's default auto-selection.
    Auto,
    /// Equal iterations per sample.
    Flat,
    /// Linearly growing iterations per sample.
    Linear,
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Things usable as a benchmark id: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Measurement timer handed to each benchmark closure.
pub struct Bencher<'a> {
    plan: &'a Plan,
    reported: bool,
    id: String,
    throughput: Option<Throughput>,
}

impl Bencher<'_> {
    /// Times repeated calls of `routine` and prints a one-line report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.reported = true;
        if self.plan.test_once {
            let t = Instant::now();
            black_box(routine());
            push_json_record(JsonRecord {
                id: self.id.clone(),
                mean_ns: t.elapsed().as_nanos(),
                samples: 1,
                throughput_bytes: match self.throughput {
                    Some(Throughput::Bytes(b)) => Some(b),
                    _ => None,
                },
            });
            println!("test {} ... ok", self.id);
            return;
        }
        // Warm-up call: page in code/data and give a duration estimate.
        let warm = Instant::now();
        black_box(routine());
        let estimate = warm.elapsed();

        let samples = if self.plan.quick {
            1
        } else {
            self.plan.sample_size.max(1)
        };
        let budget = self.plan.measurement_time;
        let mut total = Duration::ZERO;
        let mut n: u32 = 0;
        let started = Instant::now();
        while n < samples as u32 {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            n += 1;
            // A slow benchmark stops at the time budget instead of the
            // sample target (mirrors criterion's warning-and-truncate).
            if started.elapsed() >= budget && n > 0 {
                break;
            }
        }
        let mean = total / n.max(1);
        push_json_record(JsonRecord {
            id: self.id.clone(),
            mean_ns: mean.as_nanos(),
            samples: n,
            throughput_bytes: match self.throughput {
                Some(Throughput::Bytes(b)) => Some(b),
                _ => None,
            },
        });
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(b) => format!(
                " thrpt: {:>10.2} MiB/s",
                b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            ),
            Throughput::Elements(e) => {
                format!(
                    " thrpt: {:>10.2} Kelem/s",
                    e as f64 / mean.as_secs_f64() / 1000.0
                )
            }
        });
        println!(
            "{:<48} time: [{} (est {}) x {}]{}",
            self.id,
            fmt_duration(mean),
            fmt_duration(estimate),
            n,
            rate.unwrap_or_default()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[derive(Clone, Debug)]
struct Plan {
    sample_size: usize,
    measurement_time: Duration,
    test_once: bool,
    quick: bool,
}

/// The benchmark manager: entry point created by `criterion_group!`.
pub struct Criterion {
    plan: Plan,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            plan: Plan {
                sample_size: 10,
                measurement_time: Duration::from_secs(3),
                test_once: false,
                quick: false,
            },
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` configured from the process's CLI args
    /// (`--test`, `--quick`, a substring filter; other flags ignored).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.plan.test_once = true,
                "--quick" => c.plan.quick = true,
                // Appended by some cargo invocations; takes no value.
                "--bench" => {}
                a if a.starts_with('-') => {
                    // Real-criterion options we don't model. Only flags
                    // known to take a value swallow the next token;
                    // boolean flags (e.g. `--noplot`, `--verbose`) must
                    // not eat a following filter argument.
                    const VALUE_FLAGS: &[&str] = &[
                        "--sample-size",
                        "--measurement-time",
                        "--warm-up-time",
                        "--nresamples",
                        "--noise-threshold",
                        "--confidence-level",
                        "--significance-level",
                        "--save-baseline",
                        "--baseline",
                        "--baseline-lenient",
                        "--load-baseline",
                        "--output-format",
                        "--color",
                        "--profile-time",
                    ];
                    if VALUE_FLAGS.contains(&a) {
                        args.next();
                    }
                }
                a => c.filter = Some(a.to_owned()),
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            plan: self.plan.clone(),
            filter: self.filter.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_benchmark_id();
        if self
            .filter
            .as_ref()
            .is_none_or(|pat| id.contains(pat.as_str()))
        {
            run_one(&self.plan, id, None, &mut f);
        }
        self
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    plan: &Plan,
    id: String,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        plan,
        reported: false,
        id,
        throughput,
    };
    f(&mut b);
    if !b.reported && plan.test_once {
        println!("test {} ... ok (no iter)", b.id);
    }
}

/// A group of benchmarks sharing configuration and an id prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    plan: Plan,
    filter: Option<String>,
    throughput: Option<Throughput>,
    // Lifetime kept so the API matches criterion's borrow of Criterion.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many measured samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.plan.sample_size = n;
        self
    }

    /// Sets the soft time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.plan.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim measures identically
    /// under every mode.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self
            .filter
            .as_ref()
            .is_none_or(|pat| full.contains(pat.as_str()))
        {
            run_one(&self.plan, full, self.throughput, &mut f);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the `main` for a criterion bench executable.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        c.plan.test_once = true;
        let mut hits = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(1024));
            g.sample_size(3);
            g.measurement_time(Duration::from_millis(10));
            g.sampling_mode(SamplingMode::Flat);
            g.bench_with_input(BenchmarkId::new("f", 1), &7u32, |b, &x| {
                b.iter(|| {
                    hits += 1;
                    x * 2
                })
            });
            g.finish();
        }
        assert_eq!(hits, 1, "--test mode runs the body exactly once");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default();
        c.plan.test_once = true;
        c.filter = Some("nomatch".into());
        let mut hits = 0;
        c.bench_function("other", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lzf", "hb").to_string(), "lzf/hb");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
