//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the pieces this workspace actually uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool, fill}` over integer/float ranges,
//! and the `SeedableRng` trait. The generator is SplitMix64 — fully
//! deterministic for a given seed, which is all the workload generators
//! in `adoc-data` require (they promise determinism, not any specific
//! stream, and calibrate compression ratios empirically).
//!
//! Not a cryptographic RNG; do not use outside test/bench data
//! generation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = rng.next_u64() as $wide % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                // span == 0 means the range covers the whole domain.
                let v = if span == 0 { rng.next_u64() as $wide } else { rng.next_u64() as $wide % span };
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Byte containers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random bytes from `rng`.
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`SampleStandard`] type.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xorshift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1..=9u8);
            assert!((1..=9).contains(&v));
            let w = rng.gen_range(-40..=60i8);
            assert!((-40..=60).contains(&w));
            let f = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&f));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_covers_all_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in 0..32 {
            let mut v = vec![0u8; n];
            rng.fill(&mut v[..]);
        }
        let mut arr = [0u8; 4];
        rng.fill(&mut arr);
    }
}
