//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! re-creates the subset of the `parking_lot` API this workspace uses
//! (`Mutex`, `MutexGuard`, `Condvar`) on top of `std::sync`. Semantics
//! match where it matters:
//!
//! * `Mutex::lock` returns the guard directly (no `Result`); poisoning
//!   is ignored, as `parking_lot` has no poisoning.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//!
//! Swap the `[patch]`-free path dependency for the real crate once the
//! build environment can reach a registry; no call sites need to change.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutex whose `lock` never fails (poisoning is swallowed).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily
/// surrender the underlying `std` guard and reinstall the re-acquired
/// one — `parking_lot`'s `wait(&mut guard)` signature on top of `std`'s
/// consume-and-return one.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard surrendered during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard surrendered during wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar. The mutex is
    /// released while waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard surrendered during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Waits until notified or `deadline` passes, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard surrendered during wait");
        let now = Instant::now();
        let dur = deadline.saturating_duration_since(now);
        let (g, res) = match self.inner.wait_timeout(g, dur) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Waits until notified or `timeout` elapses, whichever comes first.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard surrendered during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
