//! Shaped duplex links: bandwidth (possibly time-varying), propagation
//! latency, jitter, bounded sender burst and receiver window.
//!
//! The model reproduces the two properties AdOC's heuristics depend on:
//!
//! 1. **writes block at line rate** once the send-buffer burst credit is
//!    exhausted — this is what the 256 KB probe (paper §5) measures;
//! 2. **bytes become readable only after serialization + propagation** —
//!    so application-level bandwidth and zero-byte ping-pong latency come
//!    out as the paper's Table 2 profiles dictate.

use crate::trace::BandwidthTrace;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Below this remaining wait we spin instead of sleeping: OS timers are too
/// coarse for the Gbit profile's tens-of-microseconds latencies.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// Sleeps until `deadline` with sub-OS-timer precision.
pub fn precise_sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > SPIN_THRESHOLD {
            std::thread::sleep(left - SPIN_THRESHOLD);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkCfg {
    /// Link capacity over time.
    pub trace: BandwidthTrace,
    /// One-way propagation delay.
    pub latency: Duration,
    /// Uniform random extra delay in `[0, jitter)` per segment.
    pub jitter: Duration,
    /// Send-buffer burst credit in bytes: writes complete instantly until
    /// this many bytes are in flight, then block at line rate (socket
    /// send-buffer analog).
    pub sndbuf: usize,
    /// Maximum bytes queued awaiting the reader (receive-window analog).
    pub rcv_window: usize,
    /// Segment granularity for pacing and delivery.
    pub mtu: usize,
    /// Seed for the jitter generator.
    pub seed: u64,
}

impl LinkCfg {
    /// A constant-rate link with the given capacity and one-way latency.
    ///
    /// The segment size (MTU) scales with capacity — roughly one
    /// millisecond of wire time per segment, floored at 16 KB — so fast
    /// links don't drown the host in per-segment wakeups (important on
    /// small machines, where scheduler latency would otherwise cap the
    /// simulated rate well below nominal).
    pub fn new(bits_per_sec: f64, latency: Duration) -> Self {
        let mtu = ((bits_per_sec / 8.0 / 1000.0) as usize).clamp(16 * 1024, 256 * 1024);
        LinkCfg {
            trace: BandwidthTrace::constant(bits_per_sec),
            latency,
            jitter: Duration::ZERO,
            sndbuf: (64 * 1024).max(mtu),
            rcv_window: 4 << 20,
            mtu,
            seed: 0x5EED_CAFE,
        }
    }

    /// Replaces the bandwidth trace (congestion scenarios).
    pub fn with_trace(mut self, trace: BandwidthTrace) -> Self {
        self.trace = trace;
        self
    }

    /// Adds uniform jitter in `[0, jitter)`.
    pub fn with_jitter(mut self, jitter: Duration, seed: u64) -> Self {
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// Overrides the send-buffer burst credit.
    pub fn with_sndbuf(mut self, bytes: usize) -> Self {
        self.sndbuf = bytes;
        self
    }
}

struct Segment {
    deliver_at: Instant,
    data: Vec<u8>,
    offset: usize,
}

struct ChanInner {
    queue: VecDeque<Segment>,
    queued_bytes: usize,
    /// Virtual wire clock: when the last injected byte finishes
    /// serialization.
    wire_clock: Instant,
    /// Monotone delivery floor (jitter must not reorder in-order delivery).
    last_deliver: Instant,
    write_closed: bool,
    read_closed: bool,
    rng: u64,
    /// Total payload bytes accepted (observability).
    tx_bytes: u64,
}

struct Chan {
    inner: Mutex<ChanInner>,
    not_empty: Condvar,
    not_full: Condvar,
    cfg: LinkCfg,
    epoch: Instant,
}

impl Chan {
    fn new(cfg: LinkCfg) -> Arc<Self> {
        assert!(
            cfg.mtu > 0 && cfg.rcv_window >= cfg.mtu,
            "rcv_window must hold at least one MTU"
        );
        let now = Instant::now();
        Arc::new(Chan {
            inner: Mutex::new(ChanInner {
                queue: VecDeque::new(),
                queued_bytes: 0,
                wire_clock: now,
                last_deliver: now,
                write_closed: false,
                read_closed: false,
                rng: cfg.seed | 1,
                tx_bytes: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cfg,
            epoch: now,
        })
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Write end of one link direction.
pub struct LinkWriter {
    chan: Arc<Chan>,
}

/// Read end of one link direction.
pub struct LinkReader {
    chan: Arc<Chan>,
}

fn one_direction(cfg: LinkCfg) -> (LinkWriter, LinkReader) {
    let chan = Chan::new(cfg);
    (LinkWriter { chan: chan.clone() }, LinkReader { chan })
}

impl Write for LinkWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mtu = self.chan.cfg.mtu;
        let mut written = 0usize;
        for chunk in data.chunks(mtu) {
            self.write_chunk(chunk)?;
            written += chunk.len();
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl LinkWriter {
    fn write_chunk(&self, chunk: &[u8]) -> io::Result<()> {
        let chan = &*self.chan;
        let mut g = chan.inner.lock();
        // Receiver-window backpressure.
        loop {
            if g.read_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "link reader closed",
                ));
            }
            if g.queued_bytes + chunk.len() <= chan.cfg.rcv_window {
                break;
            }
            chan.not_full.wait(&mut g);
        }

        let now = Instant::now();
        let start = g.wire_clock.max(now);
        let t_local = start.duration_since(chan.epoch).as_secs_f64();
        let ser = chan.cfg.trace.serialize_secs(t_local, chunk.len());
        g.wire_clock = start + Duration::from_secs_f64(ser);

        let mut deliver_at = g.wire_clock + chan.cfg.latency;
        if chan.cfg.jitter > Duration::ZERO {
            let j = xorshift(&mut g.rng) % (chan.cfg.jitter.as_nanos().max(1) as u64);
            deliver_at += Duration::from_nanos(j);
        }
        // In-order delivery: never before an earlier segment.
        deliver_at = deliver_at.max(g.last_deliver);
        g.last_deliver = deliver_at;

        g.queue.push_back(Segment {
            deliver_at,
            data: chunk.to_vec(),
            offset: 0,
        });
        g.queued_bytes += chunk.len();
        g.tx_bytes += chunk.len() as u64;

        // Burst credit: block (outside the lock) until at most `sndbuf`
        // bytes are still being serialized.
        let credit = chan.cfg.trace.serialize_secs(t_local, chan.cfg.sndbuf);
        let unblock_at = g
            .wire_clock
            .checked_sub(Duration::from_secs_f64(credit.min(3600.0)));
        drop(g);
        chan.not_empty.notify_one();
        if let Some(deadline) = unblock_at {
            if deadline > Instant::now() {
                precise_sleep_until(deadline);
            }
        }
        Ok(())
    }

    /// Half-closes the direction; the reader sees EOF after draining.
    pub fn close(&self) {
        let mut g = self.chan.inner.lock();
        g.write_closed = true;
        drop(g);
        self.chan.not_empty.notify_all();
    }

    /// Total payload bytes accepted by this direction so far.
    pub fn tx_bytes(&self) -> u64 {
        self.chan.inner.lock().tx_bytes
    }
}

impl Drop for LinkWriter {
    fn drop(&mut self) {
        self.close();
    }
}

impl Read for LinkReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let chan = &*self.chan;
        let mut g = chan.inner.lock();
        loop {
            let now = Instant::now();
            // Copy every segment that has already "arrived".
            let mut n = 0usize;
            while n < out.len() {
                let Some(front) = g.queue.front_mut() else {
                    break;
                };
                if front.deliver_at > now {
                    break;
                }
                let avail = front.data.len() - front.offset;
                let take = avail.min(out.len() - n);
                out[n..n + take].copy_from_slice(&front.data[front.offset..front.offset + take]);
                front.offset += take;
                n += take;
                let consumed = front.offset == front.data.len();
                if consumed {
                    g.queue.pop_front();
                }
                g.queued_bytes -= take;
            }
            if n > 0 {
                drop(g);
                chan.not_full.notify_one();
                return Ok(n);
            }

            match g.queue.front() {
                Some(front) => {
                    // Data exists but hasn't propagated yet.
                    let deadline = front.deliver_at;
                    if deadline.saturating_duration_since(now) <= SPIN_THRESHOLD {
                        drop(g);
                        precise_sleep_until(deadline);
                        g = chan.inner.lock();
                    } else {
                        let _ = chan.not_empty.wait_until(&mut g, deadline);
                    }
                }
                None => {
                    if g.write_closed {
                        return Ok(0); // EOF
                    }
                    chan.not_empty.wait(&mut g);
                }
            }
        }
    }
}

impl LinkReader {
    /// Abandons the read side; peer writes fail with `BrokenPipe`.
    pub fn close(&self) {
        let mut g = self.chan.inner.lock();
        g.read_closed = true;
        drop(g);
        self.chan.not_full.notify_all();
    }
}

impl Drop for LinkReader {
    fn drop(&mut self) {
        self.close();
    }
}

/// One endpoint of a shaped duplex link.
pub struct SimSocket {
    rx: LinkReader,
    tx: LinkWriter,
}

impl SimSocket {
    /// Splits into independently-owned halves for reader/writer threads.
    pub fn split(self) -> (LinkReader, LinkWriter) {
        (self.rx, self.tx)
    }

    /// Half-closes the write direction.
    pub fn shutdown_write(&self) {
        self.tx.close();
    }

    /// Total payload bytes this endpoint has sent.
    pub fn tx_bytes(&self) -> u64 {
        self.tx.tx_bytes()
    }
}

impl Read for SimSocket {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.rx.read(out)
    }
}

impl Write for SimSocket {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.tx.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.tx.flush()
    }
}

/// Creates a symmetric duplex link: both directions use `cfg`.
pub fn duplex(cfg: LinkCfg) -> (SimSocket, SimSocket) {
    duplex_asymmetric(cfg.clone(), cfg)
}

/// Creates a duplex link with distinct per-direction configurations
/// (`a_to_b` shapes what A sends, `b_to_a` what B sends).
pub fn duplex_asymmetric(a_to_b: LinkCfg, b_to_a: LinkCfg) -> (SimSocket, SimSocket) {
    let (w_ab, r_ab) = one_direction(a_to_b);
    let (w_ba, r_ba) = one_direction(b_to_a);
    (
        SimSocket { rx: r_ba, tx: w_ab },
        SimSocket { rx: r_ab, tx: w_ba },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::mbit;
    use std::thread;

    fn fast_cfg() -> LinkCfg {
        LinkCfg::new(mbit(10_000.0), Duration::ZERO)
    }

    #[test]
    fn data_integrity_across_link() {
        let (mut a, mut b) = duplex(fast_cfg());
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 253) as u8).collect();
        let expect = data.clone();
        let t = thread::spawn(move || {
            a.write_all(&data).unwrap();
            a.shutdown_write();
            a // keep endpoint alive until the reader is done
        });
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn bandwidth_is_enforced() {
        // 500 KB at 8 Mbit/s (1 MB/s) must take ≈0.5 s beyond the 64 KB
        // burst credit: ≥ 0.35 s, ≤ 0.8 s.
        let cfg = LinkCfg::new(8e6, Duration::ZERO);
        let (mut a, mut b) = duplex(cfg);
        let start = Instant::now();
        let t = thread::spawn(move || {
            a.write_all(&vec![0u8; 500_000]).unwrap();
            a.shutdown_write();
            a
        });
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        let elapsed = start.elapsed();
        t.join().unwrap();
        assert_eq!(got.len(), 500_000);
        assert!(
            elapsed >= Duration::from_millis(350),
            "too fast: {elapsed:?}"
        );
        assert!(
            elapsed <= Duration::from_millis(900),
            "too slow: {elapsed:?}"
        );
    }

    #[test]
    fn write_call_blocks_at_line_rate_after_burst() {
        // The property the AdOC probe measures: writing 256 KB on a slow
        // link takes ≈ (256 KB - sndbuf)/rate.
        let cfg = LinkCfg::new(8e6, Duration::ZERO); // 1 MB/s
        let (mut a, _b) = duplex(cfg);
        let start = Instant::now();
        a.write_all(&vec![0u8; 256 * 1024]).unwrap();
        let elapsed = start.elapsed();
        // (256-64) KiB at 1 MB/s ≈ 0.197 s.
        assert!(
            elapsed >= Duration::from_millis(120),
            "probe saw no pacing: {elapsed:?}"
        );
        assert!(
            elapsed <= Duration::from_millis(400),
            "pacing too slow: {elapsed:?}"
        );
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = LinkCfg::new(mbit(1000.0), Duration::from_millis(40));
        let (mut a, mut b) = duplex(cfg);
        let start = Instant::now();
        a.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(39),
            "arrived early: {elapsed:?}"
        );
        assert!(
            elapsed <= Duration::from_millis(120),
            "arrived late: {elapsed:?}"
        );
    }

    #[test]
    fn ping_pong_rtt_is_twice_latency() {
        let cfg = LinkCfg::new(mbit(1000.0), Duration::from_millis(5));
        let (mut a, mut b) = duplex(cfg);
        let t = thread::spawn(move || {
            let mut buf = [0u8; 1];
            b.read_exact(&mut buf).unwrap();
            b.write_all(&buf).unwrap();
            b
        });
        let start = Instant::now();
        a.write_all(b"p").unwrap();
        let mut buf = [0u8; 1];
        a.read_exact(&mut buf).unwrap();
        let rtt = start.elapsed();
        t.join().unwrap();
        assert!(rtt >= Duration::from_millis(10), "rtt {rtt:?}");
        // Generous ceiling: under a full parallel test run on a single-core
        // runner the thread can lose tens of ms to the scheduler on top of
        // the simulated 2x5ms latency.
        assert!(rtt <= Duration::from_millis(150), "rtt {rtt:?}");
    }

    #[test]
    fn broken_pipe_when_reader_drops() {
        let cfg = LinkCfg::new(mbit(1.0), Duration::ZERO).with_sndbuf(1024);
        let (mut a, b) = duplex(cfg);
        drop(b);
        // Large write must eventually fail (first chunks may be accepted).
        let res = a.write_all(&vec![0u8; 1 << 20]);
        assert!(res.is_err());
    }

    #[test]
    fn eof_propagates_after_drain() {
        let (mut a, mut b) = duplex(fast_cfg());
        a.write_all(b"tail").unwrap();
        a.shutdown_write();
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"tail");
        // a must stay alive until here: dropping it earlier would also
        // close the b→a direction, which we don't use.
        drop(a);
    }

    #[test]
    fn congestion_trace_slows_mid_transfer() {
        // 1 MB/s for 0.2 s, then 10 MB/s: 400 KB total should take about
        // 0.2 + (400KB - 200KB - burst)/10MB/s… bound loosely: the whole
        // transfer must take at least 0.15 s (slow phase) and well under
        // the 0.4 s an all-slow link would need.
        let trace = BandwidthTrace::piecewise(vec![(0.2, 8e6), (1000.0, 80e6)]);
        let cfg = LinkCfg::new(8e6, Duration::ZERO)
            .with_trace(trace)
            .with_sndbuf(16 * 1024);
        let (mut a, mut b) = duplex(cfg);
        let start = Instant::now();
        let t = thread::spawn(move || {
            a.write_all(&vec![0u8; 400_000]).unwrap();
            a.shutdown_write();
            a
        });
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        let elapsed = start.elapsed();
        t.join().unwrap();
        assert_eq!(got.len(), 400_000);
        assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
        assert!(elapsed <= Duration::from_millis(350), "{elapsed:?}");
    }

    #[test]
    fn jitter_never_reorders() {
        let cfg = LinkCfg::new(mbit(100.0), Duration::from_micros(500))
            .with_jitter(Duration::from_millis(2), 42);
        let (mut a, mut b) = duplex(cfg);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
        let expect = data.clone();
        let t = thread::spawn(move || {
            a.write_all(&data).unwrap();
            a.shutdown_write();
            a
        });
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }
}
