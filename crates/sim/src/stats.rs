//! Measurement helpers for the experiment harness: repeated timings,
//! best-of/average summaries (the paper plots both, Figs. 4 vs 5), and
//! unit conversions.

use std::time::{Duration, Instant};

/// Times `f` once, returning (elapsed, result).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// A set of repeated timing samples.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    secs: Vec<f64>,
}

impl Samples {
    /// Collects `n` samples of `f`.
    pub fn collect(n: usize, mut f: impl FnMut()) -> Self {
        let mut s = Samples::default();
        for _ in 0..n {
            let (d, ()) = time_once(&mut f);
            s.push(d);
        }
        s
    }

    /// Adds one sample.
    pub fn push(&mut self, d: Duration) {
        self.secs.push(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.secs.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.secs.is_empty()
    }

    /// Fastest sample in seconds (the paper's "best timings", Fig. 5).
    pub fn best(&self) -> f64 {
        self.secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean in seconds (the paper's "average timings", Fig. 4).
    pub fn mean(&self) -> f64 {
        if self.secs.is_empty() {
            return f64::NAN;
        }
        self.secs.iter().sum::<f64>() / self.secs.len() as f64
    }

    /// Sample standard deviation in seconds.
    pub fn stddev(&self) -> f64 {
        let n = self.secs.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.secs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// Application-level bandwidth in Mbit/s for `bytes` moved in `secs`.
pub fn mbits_per_sec(bytes: usize, secs: f64) -> f64 {
    (bytes as f64 * 8.0) / secs / 1e6
}

/// Formats a byte count the way the paper's x-axes do.
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_summaries() {
        let mut s = Samples::default();
        for ms in [10u64, 20, 30] {
            s.push(Duration::from_millis(ms));
        }
        assert_eq!(s.len(), 3);
        assert!((s.best() - 0.010).abs() < 1e-9);
        assert!((s.mean() - 0.020).abs() < 1e-9);
        assert!((s.stddev() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_conversion() {
        // 1 MB in 0.08 s = 100 Mbit/s.
        let v = mbits_per_sec(1_000_000, 0.08);
        assert!((v - 100.0).abs() < 1e-9);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(10), "10B");
        assert_eq!(fmt_size(2048), "2KB");
        assert_eq!(fmt_size(32 << 20), "32MB");
    }

    #[test]
    fn empty_samples_do_not_panic() {
        let s = Samples::default();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert_eq!(s.stddev(), 0.0);
        assert!(s.best().is_infinite());
    }
}
