//! # adoc-sim — network & environment simulation substrate
//!
//! The AdOC paper evaluates on four physical networks (100 Mbit LAN,
//! Renater WAN, transatlantic Internet, Gbit LAN). This crate stands in
//! for them with in-process links that reproduce the properties the
//! library's adaptation actually observes:
//!
//! * [`pipe`] — unshaped bounded byte pipes with POSIX semantics;
//! * [`link`] — token-bucket-shaped duplex links: bandwidth, one-way
//!   latency, jitter, bounded send burst (what the 256 KB probe measures)
//!   and receive window;
//! * [`trace`] — piecewise-constant bandwidth traces for congestion
//!   scenarios;
//! * [`netprofiles`] — the paper's four networks as ready-made configs;
//! * [`stats`] — timing/summary helpers for the experiment harness.
//!
//! ```
//! use adoc_sim::{link, netprofiles::NetProfile};
//! use std::io::{Read, Write};
//!
//! let (mut a, mut b) = link::duplex(NetProfile::Lan100.link_cfg());
//! let sender = std::thread::spawn(move || {
//!     a.write_all(b"over the simulated LAN").unwrap();
//!     a.shutdown_write();
//!     a // keep the endpoint alive until the reader finishes
//! });
//! let mut got = String::new();
//! b.read_to_string(&mut got).unwrap();
//! let _a = sender.join().unwrap();
//! assert_eq!(got, "over the simulated LAN");
//! ```

#![warn(missing_docs)]
pub mod link;
pub mod netprofiles;
pub mod pipe;
pub mod stats;
pub mod trace;

pub use link::{duplex, duplex_asymmetric, LinkCfg, SimSocket};
pub use netprofiles::NetProfile;
pub use trace::{mbit, BandwidthTrace};
