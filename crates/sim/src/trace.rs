//! Time-varying link capacity: piecewise-constant bandwidth traces.
//!
//! Grids share networks with other users (paper §2); a trace lets the
//! harness replay congestion events and watch the compression level adapt.

/// Piecewise-constant bandwidth as a function of link-local time.
///
/// After the last segment the trace either holds its final rate or repeats
/// from the start.
#[derive(Debug, Clone)]
pub struct BandwidthTrace {
    /// `(duration_secs, bits_per_second)` segments.
    segments: Vec<(f64, f64)>,
    repeat: bool,
    total: f64,
}

impl BandwidthTrace {
    /// A constant-rate "trace".
    pub fn constant(bits_per_sec: f64) -> Self {
        assert!(bits_per_sec > 0.0, "bandwidth must be positive");
        BandwidthTrace {
            segments: vec![(f64::INFINITY, bits_per_sec)],
            repeat: false,
            total: f64::INFINITY,
        }
    }

    /// A trace from explicit `(duration_secs, bits_per_sec)` segments that
    /// holds the last rate forever.
    pub fn piecewise(segments: Vec<(f64, f64)>) -> Self {
        Self::build(segments, false)
    }

    /// A trace that repeats its segment list cyclically.
    pub fn cyclic(segments: Vec<(f64, f64)>) -> Self {
        Self::build(segments, true)
    }

    fn build(segments: Vec<(f64, f64)>, repeat: bool) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        for &(d, r) in &segments {
            assert!(d > 0.0, "segment duration must be positive");
            assert!(r > 0.0, "segment rate must be positive");
        }
        let total = segments.iter().map(|s| s.0).sum();
        BandwidthTrace {
            segments,
            repeat,
            total,
        }
    }

    /// Bandwidth (bits/s) at link-local time `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        let mut t = self.local_time(t);
        for &(d, r) in &self.segments {
            if t < d {
                return r;
            }
            t -= d;
        }
        self.segments.last().expect("non-empty").1
    }

    fn local_time(&self, t: f64) -> f64 {
        if self.repeat && self.total.is_finite() && t >= self.total {
            t % self.total
        } else {
            t
        }
    }

    /// Seconds needed to serialize `bytes` starting at link-local time
    /// `start` seconds, integrating across segment boundaries.
    pub fn serialize_secs(&self, start: f64, bytes: usize) -> f64 {
        let mut remaining_bits = bytes as f64 * 8.0;
        let mut t = start;
        let mut total = 0.0;
        // Walk segments; bounded iterations guard against pathological
        // zero-progress loops from float underflow.
        for _ in 0..1_000_000 {
            if remaining_bits <= 0.0 {
                break;
            }
            let rate = self.rate_at(t);
            let seg_left = self.time_left_in_segment(t);
            let can_send = rate * seg_left;
            if can_send >= remaining_bits || seg_left.is_infinite() {
                total += remaining_bits / rate;
                remaining_bits = 0.0;
            } else {
                total += seg_left;
                t += seg_left;
                remaining_bits -= can_send;
            }
        }
        total
    }

    fn time_left_in_segment(&self, t: f64) -> f64 {
        let mut local = self.local_time(t);
        for &(d, _) in &self.segments {
            if local < d {
                return d - local;
            }
            local -= d;
        }
        f64::INFINITY // holding the last rate
    }
}

/// Converts a megabit-per-second figure into bits/s (the paper quotes
/// networks as "100 Mbit", "Gbit", …).
pub fn mbit(m: f64) -> f64 {
    m * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_serialization() {
        let t = BandwidthTrace::constant(mbit(100.0));
        // 1 MB at 100 Mbit/s = 0.08 s.
        let secs = t.serialize_secs(0.0, 1_000_000);
        assert!((secs - 0.08).abs() < 1e-9, "{secs}");
        assert_eq!(t.rate_at(12345.0), mbit(100.0));
    }

    #[test]
    fn piecewise_rates() {
        let t = BandwidthTrace::piecewise(vec![(1.0, mbit(10.0)), (2.0, mbit(100.0))]);
        assert_eq!(t.rate_at(0.5), mbit(10.0));
        assert_eq!(t.rate_at(1.5), mbit(100.0));
        assert_eq!(t.rate_at(99.0), mbit(100.0)); // holds last
    }

    #[test]
    fn serialization_across_boundary() {
        // 1 s at 8 Mbit/s (1 MB/s), then 8 Mbit → 80 Mbit/s (10 MB/s).
        let t = BandwidthTrace::piecewise(vec![(1.0, 8e6), (1.0, 80e6)]);
        // 2 MB starting at t=0: 1 MB in the first second, 1 MB at 10 MB/s
        // = 0.1 s → 1.1 s total.
        let secs = t.serialize_secs(0.0, 2_000_000);
        assert!((secs - 1.1).abs() < 1e-9, "{secs}");
    }

    #[test]
    fn cyclic_trace_wraps() {
        let t = BandwidthTrace::cyclic(vec![(1.0, 8e6), (1.0, 80e6)]);
        assert_eq!(t.rate_at(0.5), 8e6);
        assert_eq!(t.rate_at(1.5), 80e6);
        assert_eq!(t.rate_at(2.5), 8e6); // wrapped
        assert_eq!(t.rate_at(3.5), 80e6);
    }

    #[test]
    fn serialization_starting_mid_trace() {
        let t = BandwidthTrace::piecewise(vec![(1.0, 8e6), (1.0, 80e6)]);
        // Starting at t=0.9: 0.1 s left at 1 MB/s = 100 KB, then fast.
        let secs = t.serialize_secs(0.9, 200_000);
        let expect = 0.1 + 100_000.0 / 10_000_000.0;
        assert!((secs - expect).abs() < 1e-9, "{secs} vs {expect}");
    }

    #[test]
    fn zero_bytes_is_free() {
        let t = BandwidthTrace::constant(mbit(1.0));
        assert_eq!(t.serialize_secs(5.0, 0), 0.0);
    }
}
