//! Bounded in-memory byte pipe with POSIX-like semantics.
//!
//! This is the unshaped building block: [`link`](crate::link) adds
//! bandwidth and latency on top. Semantics mirror a UNIX pipe / loopback
//! socket:
//!
//! * `read` blocks until at least one byte is available, returns `Ok(0)`
//!   only at EOF (writer closed and buffer drained);
//! * `write` blocks while the buffer is full, fails with `BrokenPipe` once
//!   the reader is gone;
//! * dropping an endpoint closes its side.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;

struct PipeState {
    buf: VecDeque<u8>,
    capacity: usize,
    write_closed: bool,
    read_closed: bool,
}

struct PipeShared {
    state: Mutex<PipeState>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a pipe with the given buffer capacity in bytes.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    assert!(capacity > 0, "pipe capacity must be positive");
    let shared = Arc::new(PipeShared {
        state: Mutex::new(PipeState {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            write_closed: false,
            read_closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        PipeWriter {
            shared: shared.clone(),
        },
        PipeReader { shared },
    )
}

/// Write end of a [`pipe`].
pub struct PipeWriter {
    shared: Arc<PipeShared>,
}

/// Read end of a [`pipe`].
pub struct PipeReader {
    shared: Arc<PipeShared>,
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut st = self.shared.state.lock();
        loop {
            if st.read_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe reader closed",
                ));
            }
            let space = st.capacity - st.buf.len();
            if space > 0 {
                let n = space.min(data.len());
                st.buf.extend(&data[..n]);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(n);
            }
            self.shared.not_full.wait(&mut st);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl PipeWriter {
    /// Signals EOF to the reader without dropping the handle.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        st.write_closed = true;
        drop(st);
        self.shared.not_empty.notify_all();
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.close();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.shared.state.lock();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("checked non-empty");
                }
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(n);
            }
            if st.write_closed {
                return Ok(0); // EOF
            }
            self.shared.not_empty.wait(&mut st);
        }
    }
}

impl PipeReader {
    /// Abandons the read side; subsequent peer writes fail with
    /// `BrokenPipe`.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        st.read_closed = true;
        drop(st);
        self.shared.not_full.notify_all();
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.close();
    }
}

/// A pair of connected bidirectional in-memory streams (like
/// `socketpair(2)`), built from two pipes.
pub fn duplex_pipe(capacity: usize) -> (PipeDuplex, PipeDuplex) {
    let (w_ab, r_ab) = pipe(capacity);
    let (w_ba, r_ba) = pipe(capacity);
    (
        PipeDuplex { r: r_ba, w: w_ab },
        PipeDuplex { r: r_ab, w: w_ba },
    )
}

/// One endpoint of [`duplex_pipe`].
pub struct PipeDuplex {
    r: PipeReader,
    w: PipeWriter,
}

impl PipeDuplex {
    /// Splits into independently-owned halves (for reader/writer threads).
    pub fn split(self) -> (PipeReader, PipeWriter) {
        (self.r, self.w)
    }

    /// Closes the write direction (half-close), leaving reads usable.
    pub fn shutdown_write(&self) {
        self.w.close();
    }
}

impl Read for PipeDuplex {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.r.read(out)
    }
}

impl Write for PipeDuplex {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.w.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::thread;

    #[test]
    fn basic_transfer() {
        let (mut w, mut r) = pipe(16);
        w.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn blocking_backpressure() {
        let (mut w, mut r) = pipe(8);
        let t = thread::spawn(move || {
            // 64 bytes through an 8-byte buffer requires reader progress.
            w.write_all(&[7u8; 64]).unwrap();
        });
        let mut total = 0;
        let mut buf = [0u8; 16];
        while total < 64 {
            let n = r.read(&mut buf).unwrap();
            assert!(n > 0);
            assert!(buf[..n].iter().all(|&b| b == 7));
            total += n;
        }
        t.join().unwrap();
    }

    #[test]
    fn eof_after_writer_drop() {
        let (w, mut r) = pipe(8);
        {
            let mut w = w;
            w.write_all(b"xy").unwrap();
        } // dropped → EOF after drain
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"xy");
    }

    #[test]
    fn broken_pipe_after_reader_drop() {
        let (mut w, r) = pipe(4);
        drop(r);
        // The buffer may accept up to capacity? No: reader is gone, error
        // immediately.
        let err = w.write(b"data!").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn writer_blocked_on_full_buffer_unblocks_on_reader_close() {
        let (mut w, r) = pipe(4);
        w.write_all(b"full").unwrap();
        let t = thread::spawn(move || w.write(b"more"));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(r);
        let res = t.join().unwrap();
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn duplex_both_directions() {
        let (mut a, mut b) = duplex_pipe(64);
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn large_transfer_integrity_across_threads() {
        let (mut w, mut r) = pipe(1024);
        let data: Vec<u8> = (0..1_000_003u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let t = thread::spawn(move || w.write_all(&data).unwrap());
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn zero_length_ops() {
        let (mut w, mut r) = pipe(4);
        assert_eq!(w.write(b"").unwrap(), 0);
        assert_eq!(r.read(&mut []).unwrap(), 0);
    }
}
