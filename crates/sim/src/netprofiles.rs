//! The four networks of the paper's evaluation (§6), as link profiles.
//!
//! Bandwidths are the asymptotic POSIX read/write rates visible in
//! Figures 3–7; round-trip latencies are Table 2's POSIX column.

use crate::link::LinkCfg;
use crate::trace::mbit;
use std::time::Duration;

/// Identifier for a paper network profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetProfile {
    /// 100 Mbit Fast Ethernet LAN (Fig. 3): RTT 0.18 ms.
    Lan100,
    /// Renater academic WAN, Nancy–Lyon (Figs. 4–5): ~12 Mbit, RTT 9.2 ms.
    Renater,
    /// Transatlantic Internet, France–Tennessee (Fig. 6): ~4 Mbit,
    /// RTT 80 ms.
    Internet,
    /// Gigabit Ethernet LAN (Fig. 7): RTT 30 µs.
    Gbit,
}

impl NetProfile {
    /// All four profiles in paper order.
    pub const ALL: [NetProfile; 4] = [
        NetProfile::Lan100,
        NetProfile::Renater,
        NetProfile::Internet,
        NetProfile::Gbit,
    ];

    /// Human-readable name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            NetProfile::Lan100 => "100 Mbit LAN",
            NetProfile::Renater => "Renater WAN",
            NetProfile::Internet => "Internet (TN-FR)",
            NetProfile::Gbit => "Gbit LAN",
        }
    }

    /// Nominal capacity in bits/s.
    pub fn bandwidth_bps(self) -> f64 {
        match self {
            NetProfile::Lan100 => mbit(100.0),
            NetProfile::Renater => mbit(12.0),
            NetProfile::Internet => mbit(4.0),
            NetProfile::Gbit => mbit(1000.0),
        }
    }

    /// One-way propagation delay (half of Table 2's POSIX ping-pong).
    pub fn one_way_latency(self) -> Duration {
        match self {
            NetProfile::Lan100 => Duration::from_micros(90),
            NetProfile::Renater => Duration::from_micros(4_600),
            NetProfile::Internet => Duration::from_millis(40),
            NetProfile::Gbit => Duration::from_micros(15),
        }
    }

    /// Link configuration for one direction of this network.
    pub fn link_cfg(self) -> LinkCfg {
        LinkCfg::new(self.bandwidth_bps(), self.one_way_latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::duplex;
    use std::io::{Read, Write};
    use std::time::Instant;

    #[test]
    fn profiles_have_expected_ordering() {
        assert!(NetProfile::Gbit.bandwidth_bps() > NetProfile::Lan100.bandwidth_bps());
        assert!(NetProfile::Lan100.bandwidth_bps() > NetProfile::Renater.bandwidth_bps());
        assert!(NetProfile::Renater.bandwidth_bps() > NetProfile::Internet.bandwidth_bps());
        assert!(NetProfile::Internet.one_way_latency() > NetProfile::Renater.one_way_latency());
    }

    #[test]
    fn renater_ping_pong_matches_table2() {
        // Table 2: Renater POSIX zero-byte ping-pong = 9.2 ms.
        let (mut a, mut b) = duplex(NetProfile::Renater.link_cfg());
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            b.read_exact(&mut buf).unwrap();
            b.write_all(&buf).unwrap();
            b
        });
        let start = Instant::now();
        a.write_all(b"0").unwrap();
        let mut buf = [0u8; 1];
        a.read_exact(&mut buf).unwrap();
        let rtt = start.elapsed();
        t.join().unwrap();
        let ms = rtt.as_secs_f64() * 1e3;
        assert!((8.0..14.0).contains(&ms), "RTT {ms:.2} ms, expected ≈9.2");
    }
}
