//! The emission FIFO queue (paper §3.1): the shared buffer between the
//! compression thread (producer) and the emission thread (consumer), and —
//! crucially — the *sensor* of the adaptation loop: its length and growth
//! drive the compression level (§3.3).
//!
//! [`BoundedQueue`] is the generic bounded blocking channel; the striped
//! sender also uses it to hand raw frames to per-stream pipelines.
//! Shutdown is two-sided and panic-safe:
//!
//! * the **producer** calls [`BoundedQueue::close`] (or holds a
//!   [`CloseOnDrop`] guard): consumers drain what remains, then see
//!   `None`; further pushes fail with [`PushError::Closed`];
//! * the **consumer** calls [`BoundedQueue::poison`] (or holds a
//!   [`PoisonOnDrop`] guard) on failure: queued items are dropped and a
//!   producer blocked in `push` on a full queue wakes immediately with
//!   [`PushError::Closed`] instead of deadlocking on a peer that will
//!   never pop again.
//!
//! Both `close` and `poison` wake *all* waiters on *both* condvars; both
//! are idempotent, so the drop guards can fire after an explicit call.

use crate::pool::PooledBuf;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// One queue entry: up to `packet_size` wire-ready bytes, borrowed as an
/// `(offset, len)` view into a shared pooled frame buffer.
///
/// Several packets of one frame share the same [`PooledBuf`]; when the
/// emission thread drops the last of them (after its socket write), the
/// frame buffer returns to the pool. No per-packet copy, no per-packet
/// allocation.
#[derive(Debug)]
pub struct Packet {
    /// The whole frame (header + payload) this packet views into.
    frame: Arc<PooledBuf>,
    /// Start of this packet's bytes within `frame`.
    offset: usize,
    /// Number of wire bytes in this packet.
    len: usize,
    /// The AdOC level this packet's buffer was compressed at.
    pub level: u8,
    /// Share of the buffer's *raw* size this packet represents (for
    /// visible-bandwidth accounting).
    pub raw_share: u32,
    /// When this packet entered the emission queue, if the sender is
    /// feeding the delay-signal layer ([`crate::signals`]): the local
    /// estimator's departure timestamp.
    pub queued_at: Option<std::time::Instant>,
}

impl Packet {
    /// A packet viewing `frame[offset..offset + len]`.
    ///
    /// Panics if the range is out of bounds.
    pub fn view(
        frame: Arc<PooledBuf>,
        offset: usize,
        len: usize,
        level: u8,
        raw_share: u32,
    ) -> Packet {
        assert!(offset + len <= frame.len(), "packet view out of bounds");
        Packet {
            frame,
            offset,
            len,
            level,
            raw_share,
            queued_at: None,
        }
    }

    /// A packet owning `bytes` outright (detached from any pool) — used
    /// by tests and micro-benchmarks; the transfer paths use [`Packet::view`].
    pub fn from_vec(bytes: Vec<u8>, level: u8, raw_share: u32) -> Packet {
        let len = bytes.len();
        Packet::view(
            Arc::new(PooledBuf::detached(bytes)),
            0,
            len,
            level,
            raw_share,
        )
    }

    /// The wire bytes of this packet.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.frame[self.offset..self.offset + self.len]
    }

    /// Number of wire bytes in this packet.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when this packet carries no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Set by the consumer on I/O failure so the producer stops promptly.
    poisoned: bool,
}

/// Bounded MPSC-ish blocking FIFO (one producer, one consumer per queue
/// in AdOC; a striped sender runs one queue per stream).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// The packet FIFO between one compression thread and one emission
/// thread.
pub type PacketQueue = BoundedQueue<Packet>;

/// Why a blocking push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The consumer failed or the queue was closed; stop producing.
    Closed,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded at `cap` items.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
                poisoned: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Blocking push; fails once the queue is closed or the consumer has
    /// gone away (poisoned) — including while blocked waiting for space.
    pub fn push(&self, p: T) -> Result<(), PushError> {
        let mut g = self.inner.lock();
        loop {
            if g.poisoned || g.closed {
                return Err(PushError::Closed);
            }
            if g.items.len() < self.cap {
                g.items.push_back(p);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut g);
        }
    }

    /// Blocking pop; `None` once the queue is closed and drained, or
    /// poisoned.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(p) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(p);
            }
            if g.closed || g.poisoned {
                return None;
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Current number of queued items — the adaptation signal.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the consumer reported failure via [`Self::poison`].
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Producer signals end of stream; the consumer drains what remains.
    /// Wakes every waiter on both sides (a producer blocked in [`Self::push`]
    /// on a full queue returns [`PushError::Closed`]). Idempotent.
    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Consumer signals failure; pending and future pushes fail fast and
    /// queued items are dropped. Idempotent.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        g.items.clear();
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Guard that [`Self::close`]s this queue when dropped — hold it in
    /// the producer thread so *every* exit (early return, `?`, panic)
    /// releases a consumer blocked in `pop`.
    pub fn close_on_drop(&self) -> CloseOnDrop<'_, T> {
        CloseOnDrop { q: self }
    }

    /// Guard that [`Self::poison`]s this queue when dropped — hold it in
    /// the consumer thread so *every* exit (early return, `?`, panic)
    /// releases a producer blocked in `push` on a full queue.
    pub fn poison_on_drop(&self) -> PoisonOnDrop<'_, T> {
        PoisonOnDrop { q: self }
    }
}

/// See [`BoundedQueue::close_on_drop`].
#[must_use = "the guard closes the queue when dropped"]
pub struct CloseOnDrop<'a, T> {
    q: &'a BoundedQueue<T>,
}

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.q.close();
    }
}

/// See [`BoundedQueue::poison_on_drop`].
#[must_use = "the guard poisons the queue when dropped"]
pub struct PoisonOnDrop<'a, T> {
    q: &'a BoundedQueue<T>,
}

impl<T> Drop for PoisonOnDrop<'_, T> {
    fn drop(&mut self) {
        self.q.poison();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn pkt(tag: u8) -> Packet {
        Packet::from_vec(vec![tag; 4], 0, 4)
    }

    #[test]
    fn fifo_order() {
        let q = PacketQueue::new(8);
        for i in 0..5 {
            q.push(pkt(i)).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().bytes()[0], i);
        }
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn bounded_blocking_push() {
        let q = Arc::new(PacketQueue::new(2));
        q.push(pkt(0)).unwrap();
        q.push(pkt(1)).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push(pkt(2)));
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 2, "producer must be blocked at capacity");
        assert_eq!(q.pop().unwrap().bytes()[0], 0);
        t.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap().bytes()[0], 1);
        assert_eq!(q.pop().unwrap().bytes()[0], 2);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(PacketQueue::new(4));
        let q2 = q.clone();
        let t = thread::spawn(move || q2.pop().map(|p| p.bytes()[0]));
        thread::sleep(std::time::Duration::from_millis(20));
        q.push(pkt(9)).unwrap();
        assert_eq!(t.join().unwrap(), Some(9));
    }

    #[test]
    fn close_drains_then_none() {
        let q = PacketQueue::new(4);
        q.push(pkt(1)).unwrap();
        q.close();
        assert!(q.push(pkt(2)).is_err());
        assert_eq!(q.pop().unwrap().bytes()[0], 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn close_wakes_producer_blocked_on_full_queue() {
        // The shutdown-path regression: a producer stuck in `push`
        // because the queue is full must wake with an error when the
        // queue is closed, not sleep forever on `not_full`.
        let q = Arc::new(PacketQueue::new(1));
        q.push(pkt(0)).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push(pkt(1)));
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), Err(PushError::Closed));
        // The item queued before close still drains.
        assert_eq!(q.pop().unwrap().bytes()[0], 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn poison_unblocks_producer() {
        let q = Arc::new(PacketQueue::new(1));
        q.push(pkt(0)).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push(pkt(1)));
        thread::sleep(std::time::Duration::from_millis(20));
        q.poison();
        assert_eq!(t.join().unwrap(), Err(PushError::Closed));
        assert!(q.pop().is_none(), "poisoned queue drops queued packets");
        assert!(q.is_poisoned());
    }

    #[test]
    fn guards_fire_on_panic() {
        // A consumer that panics mid-message must still poison the queue
        // (unblocking the producer); same for a panicking producer and
        // close. This is what keeps a dying emission thread from
        // stranding the compression thread forever.
        let q = Arc::new(PacketQueue::new(1));
        let qc = q.clone();
        let consumer = thread::spawn(move || {
            let _guard = qc.poison_on_drop();
            let _ = qc.pop();
            panic!("simulated consumer death");
        });
        q.push(pkt(0)).unwrap();
        // Producer keeps pushing until the guard-driven poison errors it
        // out; without the guard this loop would block forever.
        loop {
            if q.push(pkt(1)).is_err() {
                break;
            }
        }
        assert!(consumer.join().is_err(), "consumer must have panicked");
        assert!(q.is_poisoned());

        let q = Arc::new(PacketQueue::new(1));
        let qp = q.clone();
        let producer = thread::spawn(move || {
            let _guard = qp.close_on_drop();
            qp.push(pkt(7)).unwrap();
            panic!("simulated producer death");
        });
        assert_eq!(q.pop().unwrap().bytes()[0], 7);
        assert!(q.pop().is_none(), "close guard must end the stream");
        assert!(producer.join().is_err(), "producer must have panicked");
    }

    #[test]
    fn generic_queue_carries_arbitrary_items() {
        let q: BoundedQueue<(u64, Vec<u8>)> = BoundedQueue::new(2);
        q.push((1, vec![1])).unwrap();
        q.push((2, vec![2, 2])).unwrap();
        assert_eq!(q.pop().unwrap().0, 1);
        q.close();
        assert_eq!(q.pop().unwrap().0, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn producer_consumer_stress() {
        let q = Arc::new(PacketQueue::new(16));
        let qp = q.clone();
        let producer = thread::spawn(move || {
            for i in 0..10_000u32 {
                qp.push(Packet::from_vec(i.to_le_bytes().to_vec(), 0, 4))
                    .unwrap();
            }
            qp.close();
        });
        let mut expect = 0u32;
        while let Some(p) = q.pop() {
            let v = u32::from_le_bytes(p.bytes()[..4].try_into().unwrap());
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, 10_000);
        producer.join().unwrap();
    }
}
