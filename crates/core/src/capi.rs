//! The paper-shaped API (§4.1): seven free functions operating on integer
//! descriptors, mirroring the C library's signatures —
//! `adoc_write(int d, …)`, `adoc_read(int d, …)`, `adoc_close(int d)` …
//!
//! Like the C implementation, the library keeps internal buffers for
//! partial reads in a single static table that "is always accessed
//! between locks" (§4.2), making the API thread-safe: different threads
//! can drive different descriptors concurrently.

use crate::config::AdocConfig;
use crate::socket::{AdocSocket, AdocStreamGroup, SendReport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::{Arc, OnceLock};

/// Object-safe view of an [`AdocSocket`] so the registry can hold any
/// stream type.
trait AdocStreamObj: Send {
    fn write_levels(&mut self, data: &[u8], min: u8, max: u8) -> io::Result<SendReport>;
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize>;
    fn send_file_levels(&mut self, f: &mut File, min: u8, max: u8) -> io::Result<SendReport>;
    fn receive_file(&mut self, f: &mut dyn WriteSend) -> io::Result<u64>;
    fn close(&mut self) -> io::Result<()>;
    fn min_level(&self) -> u8;
    fn max_level(&self) -> u8;
}

/// Helper trait: `Write + Send` as a single object bound.
pub trait WriteSend: Write + Send {}
impl<T: Write + Send> WriteSend for T {}

impl<R: Read + Send, W: Write + Send> AdocStreamObj for AdocSocket<R, W> {
    fn write_levels(&mut self, data: &[u8], min: u8, max: u8) -> io::Result<SendReport> {
        AdocSocket::write_levels(self, data, min, max)
    }

    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        AdocSocket::read(self, out)
    }

    fn send_file_levels(&mut self, f: &mut File, min: u8, max: u8) -> io::Result<SendReport> {
        AdocSocket::send_file_levels(self, f, min, max)
    }

    fn receive_file(&mut self, f: &mut dyn WriteSend) -> io::Result<u64> {
        AdocSocket::receive_file(self, &mut WriteShim(f))
    }

    fn close(&mut self) -> io::Result<()> {
        self.close_mut()
    }

    fn min_level(&self) -> u8 {
        self.config().min_level
    }

    fn max_level(&self) -> u8 {
        self.config().max_level
    }
}

impl<R: Read + Send, W: Write + Send> AdocStreamObj for AdocStreamGroup<R, W> {
    fn write_levels(&mut self, data: &[u8], min: u8, max: u8) -> io::Result<SendReport> {
        AdocStreamGroup::write_levels(self, data, min, max)
    }

    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        AdocStreamGroup::read(self, out)
    }

    fn send_file_levels(&mut self, f: &mut File, min: u8, max: u8) -> io::Result<SendReport> {
        AdocStreamGroup::send_file_levels(self, f, min, max)
    }

    fn receive_file(&mut self, f: &mut dyn WriteSend) -> io::Result<u64> {
        AdocStreamGroup::receive_file(self, &mut WriteShim(f))
    }

    fn close(&mut self) -> io::Result<()> {
        self.close_mut()
    }

    fn min_level(&self) -> u8 {
        self.config().min_level
    }

    fn max_level(&self) -> u8 {
        self.config().max_level
    }
}

/// Adapter giving a `&mut dyn WriteSend` the `Write + Send` bounds the
/// generic receive path wants.
struct WriteShim<'a>(&'a mut dyn WriteSend);

impl Write for WriteShim<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

type Registry = Mutex<HashMap<i32, Arc<Mutex<Box<dyn AdocStreamObj>>>>>;

/// The C library's "static variable", `Mutex`-guarded exactly as §4.2
/// describes.
fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

static NEXT_FD: AtomicI32 = AtomicI32::new(3); // 0/1/2 are taken, as ever

fn lookup(d: i32) -> io::Result<Arc<Mutex<Box<dyn AdocStreamObj>>>> {
    registry().lock().get(&d).cloned().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad AdOC descriptor {d}"),
        )
    })
}

/// Registers a reader/writer pair and returns its descriptor (the Rust
/// stand-in for handing AdOC an existing socket fd).
pub fn adoc_register<R, W>(reader: R, writer: W) -> i32
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    adoc_register_cfg(reader, writer, AdocConfig::default())
        .expect("the default AdocConfig is always valid")
}

/// [`adoc_register`] with an explicit configuration. Fails with a typed
/// [`crate::AdocError::InvalidConfig`] when the configuration is
/// inconsistent.
pub fn adoc_register_cfg<R, W>(reader: R, writer: W, cfg: AdocConfig) -> io::Result<i32>
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let sock = AdocSocket::with_config(reader, writer, cfg)?;
    let d = NEXT_FD.fetch_add(1, Ordering::Relaxed);
    registry()
        .lock()
        .insert(d, Arc::new(Mutex::new(Box::new(sock))));
    Ok(d)
}

/// Registers a striped stream group as one descriptor: the paper's API
/// with multi-stream transport underneath. For `pairs.len() >= 2` the
/// construction performs the group handshake (both endpoints must build
/// their group concurrently).
pub fn adoc_register_group<R, W>(pairs: Vec<(R, W)>, cfg: AdocConfig) -> io::Result<i32>
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let group = AdocStreamGroup::from_pairs(pairs, cfg)?;
    let d = NEXT_FD.fetch_add(1, Ordering::Relaxed);
    registry()
        .lock()
        .insert(d, Arc::new(Mutex::new(Box::new(group))));
    Ok(d)
}

/// `ssize_t adoc_write(int d, void *buf, size_t nbytes, ssize_t *slen)`:
/// sends `buf` as one message; on success returns `nbytes` and stores the
/// wire byte count in `slen`.
pub fn adoc_write(d: i32, buf: &[u8], slen: Option<&mut i64>) -> io::Result<usize> {
    let (min, max) = {
        let s = lookup(d)?;
        let g = s.lock();
        (g.min_level(), g.max_level())
    };
    adoc_write_levels(d, buf, slen, min, max)
}

/// `adoc_write_levels`: forces (`min ≥ 1`) or disables (`max = 0`)
/// compression for this call.
pub fn adoc_write_levels(
    d: i32,
    buf: &[u8],
    slen: Option<&mut i64>,
    min: u8,
    max: u8,
) -> io::Result<usize> {
    let s = lookup(d)?;
    let mut g = s.lock();
    let report = g.write_levels(buf, min, max)?;
    if let Some(out) = slen {
        *out = report.wire as i64;
    }
    Ok(buf.len())
}

/// `ssize_t adoc_read(int d, void *buf, size_t nbytes)`: POSIX-read
/// semantics; returns the number of bytes stored (0 = end of stream).
pub fn adoc_read(d: i32, buf: &mut [u8]) -> io::Result<usize> {
    let s = lookup(d)?;
    let mut g = s.lock();
    g.read(buf)
}

/// `adoc_send_file`: sends the whole file; returns its size and stores
/// the wire byte count in `slen`.
pub fn adoc_send_file(d: i32, file: &mut File, slen: Option<&mut i64>) -> io::Result<u64> {
    let (min, max) = {
        let s = lookup(d)?;
        let g = s.lock();
        (g.min_level(), g.max_level())
    };
    adoc_send_file_levels(d, file, slen, min, max)
}

/// `adoc_send_file_levels`: level-bounded file send.
pub fn adoc_send_file_levels(
    d: i32,
    file: &mut File,
    slen: Option<&mut i64>,
    min: u8,
    max: u8,
) -> io::Result<u64> {
    let s = lookup(d)?;
    let mut g = s.lock();
    let report = g.send_file_levels(file, min, max)?;
    if let Some(out) = slen {
        *out = report.wire as i64;
    }
    Ok(report.raw)
}

/// `adoc_receive_file`: receives one message into `file`; returns the
/// number of bytes stored.
pub fn adoc_receive_file(d: i32, file: &mut File) -> io::Result<u64> {
    let s = lookup(d)?;
    let mut g = s.lock();
    g.receive_file(file)
}

/// `adoc_close`: frees the descriptor's internal buffers and drops the
/// underlying streams.
pub fn adoc_close(d: i32) -> io::Result<()> {
    let entry = registry().lock().remove(&d).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad AdOC descriptor {d}"),
        )
    })?;
    let result = entry.lock().close();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use adoc_sim::pipe::duplex_pipe;
    use std::thread;

    fn fd_pair() -> (i32, i32) {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        (adoc_register(ar, aw), adoc_register(br, bw))
    }

    #[test]
    fn write_read_through_descriptors() {
        let (tx, rx) = fd_pair();
        let mut slen = 0i64;
        let n = adoc_write(tx, b"descriptor api", Some(&mut slen)).unwrap();
        assert_eq!(n, 14);
        assert!(slen >= 14);
        let mut buf = [0u8; 32];
        let got = adoc_read(rx, &mut buf).unwrap();
        assert_eq!(&buf[..got], b"descriptor api");
        adoc_close(tx).unwrap();
        adoc_close(rx).unwrap();
    }

    #[test]
    fn bad_descriptor_errors() {
        assert!(adoc_write(-1, b"x", None).is_err());
        assert!(adoc_read(-1, &mut [0u8; 1]).is_err());
        assert!(adoc_close(-1).is_err());
    }

    #[test]
    fn double_close_errors() {
        let (tx, rx) = fd_pair();
        adoc_close(tx).unwrap();
        assert!(adoc_close(tx).is_err());
        adoc_close(rx).unwrap();
    }

    #[test]
    fn concurrent_descriptors_from_many_threads() {
        // §4.2's thread-safety claim: different threads, different
        // descriptors, simultaneously.
        let pairs: Vec<(i32, i32)> = (0..8).map(|_| fd_pair()).collect();
        let mut handles = Vec::new();
        for (i, (tx, rx)) in pairs.into_iter().enumerate() {
            handles.push(thread::spawn(move || {
                let msg = format!("thread {i} payload ").repeat(500);
                let t = thread::spawn(move || {
                    adoc_write(tx, msg.as_bytes(), None).unwrap();
                    adoc_close(tx).unwrap();
                    msg
                });
                let mut buf = vec![0u8; 20_000];
                let mut total = 0;
                loop {
                    let n = adoc_read(rx, &mut buf[total..]).unwrap();
                    if n == 0 {
                        break;
                    }
                    total += n;
                }
                let msg = t.join().unwrap();
                assert_eq!(&buf[..total], msg.as_bytes());
                adoc_close(rx).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn group_descriptors_stripe_transparently() {
        // The paper's descriptor API over a 2-stream group: both
        // handshakes run concurrently, then plain adoc_write/adoc_read.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for _ in 0..2 {
            let (a, b) = duplex_pipe(1 << 20);
            left.push(a.split());
            right.push(b.split());
        }
        let cfg = AdocConfig::default().with_levels(1, 10);
        let cfg2 = cfg.clone();
        let (tx, rx) = thread::scope(|s| {
            let l = s.spawn(move || adoc_register_group(left, cfg2).unwrap());
            let r = adoc_register_group(right, cfg).unwrap();
            (l.join().unwrap(), r)
        });
        let data = b"striped descriptor payload ".repeat(40_000); // ~1 MB
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut slen = 0i64;
            adoc_write(tx, &data2, Some(&mut slen)).unwrap();
            assert!(slen > 0);
            adoc_close(tx).unwrap();
        });
        let mut buf = vec![0u8; data.len()];
        let mut total = 0;
        while total < data.len() {
            let n = adoc_read(rx, &mut buf[total..]).unwrap();
            assert!(n > 0);
            total += n;
        }
        t.join().unwrap();
        assert_eq!(buf, data);
        adoc_close(rx).unwrap();
    }

    #[test]
    fn write_levels_through_descriptor() {
        let (tx, rx) = fd_pair();
        let data = b"force me ".repeat(100_000); // 900 KB
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut slen = 0i64;
            adoc_write_levels(tx, &data2, Some(&mut slen), 1, 10).unwrap();
            assert!(
                (slen as usize) < data2.len(),
                "forced compression must shrink"
            );
            adoc_close(tx).unwrap();
        });
        let mut buf = vec![0u8; data.len()];
        let mut total = 0;
        while total < data.len() {
            let n = adoc_read(rx, &mut buf[total..]).unwrap();
            assert!(n > 0);
            total += n;
        }
        t.join().unwrap();
        assert_eq!(buf, data);
        adoc_close(rx).unwrap();
    }
}
