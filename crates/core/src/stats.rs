//! Per-connection observability: what the adaptation actually did.
//!
//! The examples and the experiment harness read these counters to plot
//! level timelines and to verify probe / guard behaviour; none of it is
//! on the wire.

use std::time::Instant;

/// Maximum retained timeline entries (a 32 MB transfer produces ~160
/// buffers; the cap only matters for very long-lived connections).
const TIMELINE_CAP: usize = 100_000;

/// Cumulative statistics for one AdOC connection.
#[derive(Debug, Clone)]
pub struct TransferStats {
    /// Messages sent (one per `adoc_write`/`adoc_send_file`).
    pub messages: u64,
    /// Application payload bytes sent.
    pub raw_bytes: u64,
    /// Bytes actually put on the socket (headers included).
    pub wire_bytes: u64,
    /// Messages that took the small/disabled direct path.
    pub direct_messages: u64,
    /// Probes performed (adaptive messages without forced compression).
    pub probes: u64,
    /// Probes that measured a fast network and disabled compression.
    pub fast_path_hits: u64,
    /// Compression buffers encoded at each AdOC level (0..=10).
    pub buffers_at_level: [u64; 11],
    /// Divergence-guard reverts (§5).
    pub divergence_reverts: u64,
    /// Incompressible-data guard trips (§5).
    pub ratio_trips: u64,
    /// `(seconds_since_connection, level)` per compression buffer.
    pub level_timeline: Vec<(f64, u8)>,
    epoch: Instant,
}

impl Default for TransferStats {
    fn default() -> Self {
        TransferStats {
            messages: 0,
            raw_bytes: 0,
            wire_bytes: 0,
            direct_messages: 0,
            probes: 0,
            fast_path_hits: 0,
            buffers_at_level: [0; 11],
            divergence_reverts: 0,
            ratio_trips: 0,
            level_timeline: Vec::new(),
            epoch: Instant::now(),
        }
    }
}

impl TransferStats {
    /// Creates zeroed stats with the epoch set to now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds since this connection's stats began.
    pub fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records one buffer compressed at `level`.
    pub fn record_buffer(&mut self, level: u8) {
        self.record_buffer_at(Instant::now(), level);
    }

    /// Records one buffer compressed at `level` at a given instant (the
    /// sender reports timestamps captured inside the compression thread).
    pub fn record_buffer_at(&mut self, t: Instant, level: u8) {
        self.buffers_at_level[level as usize] += 1;
        if self.level_timeline.len() < TIMELINE_CAP {
            let secs = t.saturating_duration_since(self.epoch).as_secs_f64();
            self.level_timeline.push((secs, level));
        }
    }

    /// Overall wire/raw ratio so far (> 1 means compression won).
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.wire_bytes as f64
    }

    /// The highest level any buffer used.
    pub fn max_level_used(&self) -> u8 {
        (0..11u8)
            .rev()
            .find(|&l| self.buffers_at_level[l as usize] > 0)
            .unwrap_or(0)
    }

    /// Total compression buffers across all levels.
    pub fn total_buffers(&self) -> u64 {
        self.buffers_at_level.iter().sum()
    }
}

impl std::fmt::Display for TransferStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "messages: {} ({} direct), raw {} B, wire {} B (ratio {:.2})",
            self.messages,
            self.direct_messages,
            self.raw_bytes,
            self.wire_bytes,
            self.compression_ratio()
        )?;
        writeln!(
            f,
            "probes: {} ({} fast-path), reverts: {}, ratio-guard trips: {}",
            self.probes, self.fast_path_hits, self.divergence_reverts, self.ratio_trips
        )?;
        write!(f, "buffers per level:")?;
        for (lvl, &n) in self.buffers_at_level.iter().enumerate() {
            if n > 0 {
                write!(f, " L{lvl}:{n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_levels() {
        let mut s = TransferStats::new();
        s.raw_bytes = 1000;
        s.wire_bytes = 250;
        assert!((s.compression_ratio() - 4.0).abs() < 1e-12);
        s.record_buffer(3);
        s.record_buffer(3);
        s.record_buffer(7);
        assert_eq!(s.max_level_used(), 7);
        assert_eq!(s.total_buffers(), 3);
        assert_eq!(s.buffers_at_level[3], 2);
        assert_eq!(s.level_timeline.len(), 3);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = TransferStats::new();
        assert_eq!(s.compression_ratio(), 1.0);
        assert_eq!(s.max_level_used(), 0);
        let _ = format!("{s}");
    }

    #[test]
    fn timeline_is_monotone_in_time() {
        let mut s = TransferStats::new();
        for i in 0..50 {
            s.record_buffer((i % 11) as u8);
        }
        assert!(s.level_timeline.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

impl TransferStats {
    /// Exports the level timeline as CSV (`seconds,level` rows) for
    /// replotting — the adaptive_trace example's machine-readable twin.
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("seconds,level\n");
        for &(secs, level) in &self.level_timeline {
            out.push_str(&format!("{secs:.6},{level}\n"));
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn timeline_csv_format() {
        let mut s = TransferStats::new();
        s.record_buffer(3);
        s.record_buffer(5);
        let csv = s.timeline_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seconds,level");
        assert!(lines[1].ends_with(",3"));
        assert!(lines[2].ends_with(",5"));
    }
}
