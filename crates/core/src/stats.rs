//! Per-connection observability: what the adaptation actually did.
//!
//! The examples and the experiment harness read these counters to plot
//! level timelines and to verify probe / guard behaviour; none of it is
//! on the wire.

use crate::adapt::LevelReason;
use std::time::Instant;

/// Maximum retained timeline entries (a 32 MB transfer produces ~160
/// buffers; the cap only matters for very long-lived connections).
const TIMELINE_CAP: usize = 100_000;

/// One compression buffer on the connection's level timeline: when it
/// was encoded, at what level, and which verdict put the controller
/// there ([`LevelReason`]) — the provenance the server's `LevelChange`
/// events surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEvent {
    /// Seconds since the connection's stats epoch.
    pub secs: f64,
    /// AdOC level the buffer was encoded at.
    pub level: u8,
    /// Why the controller chose (or kept) this level.
    pub reason: LevelReason,
}

/// What one stream of a striped message carried (reported per message in
/// [`crate::sender::SendOutcome::per_stream`], accumulated per connection
/// in [`TransferStats::per_stream`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSendStats {
    /// Stream index within the group (0 = primary).
    pub stream: u8,
    /// Bytes this stream put on its socket (frame headers included;
    /// message headers and probes are counted message-wide, not here).
    pub wire_bytes: u64,
    /// Raw (pre-compression) bytes this stream carried — observed by its
    /// bandwidth monitor on adaptive pipelines, counted directly on the
    /// fast path (which has no monitor).
    pub raw_bytes: u64,
    /// Data frames this stream carried.
    pub frames: u64,
}

/// Cumulative statistics for one AdOC connection.
#[derive(Debug, Clone)]
pub struct TransferStats {
    /// Messages sent (one per `adoc_write`/`adoc_send_file`).
    pub messages: u64,
    /// Application payload bytes sent.
    pub raw_bytes: u64,
    /// Bytes actually put on the socket (headers included).
    pub wire_bytes: u64,
    /// Messages that took the small/disabled direct path.
    pub direct_messages: u64,
    /// Probes performed (adaptive messages without forced compression).
    pub probes: u64,
    /// Probes that measured a fast network and disabled compression.
    pub fast_path_hits: u64,
    /// Compression buffers encoded at each AdOC level (0..=10).
    pub buffers_at_level: [u64; 11],
    /// Divergence-guard reverts (§5).
    pub divergence_reverts: u64,
    /// Incompressible-data guard trips (§5).
    pub ratio_trips: u64,
    /// One [`LevelEvent`] per compression buffer, in order.
    pub level_timeline: Vec<LevelEvent>,
    /// Cumulative per-stream totals for striped transfers (indexed by
    /// stream id; empty on single-stream connections).
    pub per_stream: Vec<StreamSendStats>,
    /// Last observed visible bandwidth per compression level in raw
    /// bits/s (0.0 = that level has never been measured on this
    /// connection). Snapshotted from the per-message
    /// [`crate::bw::BandwidthMonitor`]s — the per-level view a server's
    /// metrics endpoint exports.
    pub level_bps: [f64; 11],
    epoch: Instant,
}

impl Default for TransferStats {
    fn default() -> Self {
        TransferStats {
            messages: 0,
            raw_bytes: 0,
            wire_bytes: 0,
            direct_messages: 0,
            probes: 0,
            fast_path_hits: 0,
            buffers_at_level: [0; 11],
            divergence_reverts: 0,
            ratio_trips: 0,
            level_timeline: Vec::new(),
            per_stream: Vec::new(),
            level_bps: [0.0; 11],
            epoch: Instant::now(),
        }
    }
}

impl TransferStats {
    /// Creates zeroed stats with the epoch set to now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds since this connection's stats began.
    pub fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records one buffer compressed at `level`.
    pub fn record_buffer(&mut self, level: u8) {
        self.record_buffer_at(Instant::now(), level);
    }

    /// Records one buffer compressed at `level` at a given instant (the
    /// sender reports timestamps captured inside the compression thread).
    pub fn record_buffer_at(&mut self, t: Instant, level: u8) {
        self.record_buffer_reason(t, level, LevelReason::default());
    }

    /// [`Self::record_buffer_at`] with the controller's verdict attached.
    pub fn record_buffer_reason(&mut self, t: Instant, level: u8, reason: LevelReason) {
        self.buffers_at_level[level as usize] += 1;
        if self.level_timeline.len() < TIMELINE_CAP {
            let secs = t.saturating_duration_since(self.epoch).as_secs_f64();
            self.level_timeline.push(LevelEvent {
                secs,
                level,
                reason,
            });
        }
    }

    /// Overall wire/raw ratio so far (> 1 means compression won).
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.wire_bytes as f64
    }

    /// The highest level any buffer used.
    pub fn max_level_used(&self) -> u8 {
        (0..11u8)
            .rev()
            .find(|&l| self.buffers_at_level[l as usize] > 0)
            .unwrap_or(0)
    }

    /// Total compression buffers across all levels.
    pub fn total_buffers(&self) -> u64 {
        self.buffers_at_level.iter().sum()
    }

    /// Overwrites the per-level bandwidth snapshot with any level a
    /// message actually observed (levels the message never used keep
    /// their previous estimate).
    pub fn merge_level_bps(&mut self, per_message: &[f64; 11]) {
        for (slot, &bps) in self.level_bps.iter_mut().zip(per_message) {
            if bps > 0.0 {
                *slot = bps;
            }
        }
    }

    /// Folds one message's per-stream accounting into the connection
    /// totals (no-op for single-stream messages).
    pub fn merge_per_stream(&mut self, per_message: &[StreamSendStats]) {
        for s in per_message {
            let idx = s.stream as usize;
            if self.per_stream.len() <= idx {
                self.per_stream.resize(
                    idx + 1,
                    StreamSendStats {
                        stream: 0,
                        ..StreamSendStats::default()
                    },
                );
                for (i, slot) in self.per_stream.iter_mut().enumerate() {
                    slot.stream = i as u8;
                }
            }
            let t = &mut self.per_stream[idx];
            t.wire_bytes += s.wire_bytes;
            t.raw_bytes += s.raw_bytes;
            t.frames += s.frames;
        }
    }
}

impl std::fmt::Display for TransferStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "messages: {} ({} direct), raw {} B, wire {} B (ratio {:.2})",
            self.messages,
            self.direct_messages,
            self.raw_bytes,
            self.wire_bytes,
            self.compression_ratio()
        )?;
        writeln!(
            f,
            "probes: {} ({} fast-path), reverts: {}, ratio-guard trips: {}",
            self.probes, self.fast_path_hits, self.divergence_reverts, self.ratio_trips
        )?;
        write!(f, "buffers per level:")?;
        for (lvl, &n) in self.buffers_at_level.iter().enumerate() {
            if n > 0 {
                write!(f, " L{lvl}:{n}")?;
            }
        }
        if !self.per_stream.is_empty() {
            writeln!(f)?;
            write!(f, "streams:")?;
            for s in &self.per_stream {
                write!(
                    f,
                    " [{}: {} frames, {} raw B, {} wire B]",
                    s.stream, s.frames, s.raw_bytes, s.wire_bytes
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_levels() {
        let mut s = TransferStats::new();
        s.raw_bytes = 1000;
        s.wire_bytes = 250;
        assert!((s.compression_ratio() - 4.0).abs() < 1e-12);
        s.record_buffer(3);
        s.record_buffer(3);
        s.record_buffer(7);
        assert_eq!(s.max_level_used(), 7);
        assert_eq!(s.total_buffers(), 3);
        assert_eq!(s.buffers_at_level[3], 2);
        assert_eq!(s.level_timeline.len(), 3);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = TransferStats::new();
        assert_eq!(s.compression_ratio(), 1.0);
        assert_eq!(s.max_level_used(), 0);
        let _ = format!("{s}");
    }

    #[test]
    fn per_stream_totals_accumulate_and_backfill() {
        let mut s = TransferStats::new();
        // First message used streams 0 and 2 (sparse indices backfill).
        s.merge_per_stream(&[
            StreamSendStats {
                stream: 0,
                wire_bytes: 100,
                raw_bytes: 150,
                frames: 2,
            },
            StreamSendStats {
                stream: 2,
                wire_bytes: 50,
                raw_bytes: 60,
                frames: 1,
            },
        ]);
        s.merge_per_stream(&[StreamSendStats {
            stream: 2,
            wire_bytes: 10,
            raw_bytes: 20,
            frames: 1,
        }]);
        assert_eq!(s.per_stream.len(), 3);
        assert_eq!(s.per_stream[0].wire_bytes, 100);
        assert_eq!(
            s.per_stream[1],
            StreamSendStats {
                stream: 1,
                ..StreamSendStats::default()
            }
        );
        assert_eq!(s.per_stream[2].wire_bytes, 60);
        assert_eq!(s.per_stream[2].frames, 2);
        assert!(format!("{s}").contains("streams:"));
    }

    #[test]
    fn level_bps_snapshot_keeps_stale_levels() {
        let mut s = TransferStats::new();
        let mut msg1 = [0.0f64; 11];
        msg1[3] = 80e6;
        msg1[5] = 40e6;
        s.merge_level_bps(&msg1);
        let mut msg2 = [0.0f64; 11];
        msg2[5] = 55e6; // level 5 re-measured, level 3 untouched
        s.merge_level_bps(&msg2);
        assert_eq!(s.level_bps[3], 80e6);
        assert_eq!(s.level_bps[5], 55e6);
        assert_eq!(s.level_bps[0], 0.0);
    }

    #[test]
    fn timeline_is_monotone_in_time() {
        let mut s = TransferStats::new();
        for i in 0..50 {
            s.record_buffer((i % 11) as u8);
        }
        assert!(s.level_timeline.windows(2).all(|w| w[0].secs <= w[1].secs));
    }
}

impl TransferStats {
    /// Exports the level timeline as CSV (`seconds,level` rows) for
    /// replotting — the adaptive_trace example's machine-readable twin.
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("seconds,level,reason\n");
        for e in &self.level_timeline {
            out.push_str(&format!(
                "{:.6},{},{}\n",
                e.secs,
                e.level,
                e.reason.as_str()
            ));
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn timeline_csv_format() {
        let mut s = TransferStats::new();
        s.record_buffer(3);
        s.record_buffer_reason(Instant::now(), 5, LevelReason::DelayGradient);
        let csv = s.timeline_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seconds,level,reason");
        assert!(lines[1].ends_with(",3,queue_pressure"));
        assert!(lines[2].ends_with(",5,delay_gradient"));
    }
}
