//! The emission side of AdOC (paper Fig. 1): a compression thread feeding
//! the FIFO queue, an emission thread draining it onto the socket, plus
//! the §5 heuristics — direct path, 256 KB probe, fast-network bypass,
//! divergence and ratio guards.

use crate::adapt::LevelController;
use crate::bw::BandwidthMonitor;
use crate::config::AdocConfig;
use crate::pool::BufferPool;
use crate::queue::{Packet, PacketQueue};
use crate::stats::TransferStats;
use crate::wire::{self, FrameHeader, MsgKind};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// What one message send did (merged into [`TransferStats`]).
#[derive(Debug, Clone, Default)]
pub struct SendOutcome {
    /// Bytes put on the socket, headers included.
    pub wire_bytes: u64,
    /// Measured probe speed, if a probe ran.
    pub probe_bps: Option<f64>,
    /// True if the probe classified the link as too fast to compress.
    pub fast_path: bool,
    /// True if the message used the direct (no-thread) path.
    pub direct: bool,
    /// Buffers encoded per level during this message.
    pub buffers_at_level: [u64; 11],
    /// `(when, level)` per compression buffer, in order.
    pub level_events: Vec<(Instant, u8)>,
    /// Divergence-guard reverts during this message.
    pub divergence_reverts: u64,
    /// Ratio-guard trips during this message.
    pub ratio_trips: u64,
    /// Raw bytes whose emission the [`BandwidthMonitor`] observed. For a
    /// forced-compression message (no probe, no fast path) this equals
    /// the message's raw length exactly — the invariant the divergence
    /// guard depends on.
    pub bw_raw_bytes: u64,
}

impl SendOutcome {
    /// Folds this outcome into cumulative connection stats.
    pub fn merge_into(&self, stats: &mut TransferStats, raw_len: u64) {
        stats.messages += 1;
        stats.raw_bytes += raw_len;
        stats.wire_bytes += self.wire_bytes;
        if self.direct {
            stats.direct_messages += 1;
        }
        if self.probe_bps.is_some() {
            stats.probes += 1;
        }
        if self.fast_path {
            stats.fast_path_hits += 1;
        }
        for &(t, level) in &self.level_events {
            stats.record_buffer_at(t, level);
        }
        debug_assert_eq!(
            self.buffers_at_level.iter().sum::<u64>(),
            self.level_events.len() as u64,
            "level counters and events must agree"
        );
        stats.divergence_reverts += self.divergence_reverts;
        stats.ratio_trips += self.ratio_trips;
    }
}

/// Sends one message of exactly `raw_len` bytes drawn from `source`.
///
/// Blocking: returns once every byte has been handed to `writer`.
pub fn send_message<W, S>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    let direct = cfg.compression_disabled()
        || (!cfg.compression_forced() && raw_len < cfg.probe_threshold as u64);
    if direct {
        return send_direct(writer, source, raw_len, cfg);
    }
    send_adaptive(writer, source, raw_len, cfg)
}

/// §5 "Small messages": header + raw bytes, no threads, latency identical
/// to plain write.
fn send_direct<W: Write, S: Read>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome> {
    writer.write_all(&wire::encode_msg_header(MsgKind::Direct, raw_len))?;
    let copied = copy_exact(source, writer, raw_len, cfg.buffer_size, &cfg.pool)?;
    debug_assert_eq!(copied, raw_len);
    writer.flush()?;
    Ok(SendOutcome {
        wire_bytes: wire::MSG_HEADER_LEN as u64 + raw_len,
        direct: true,
        ..SendOutcome::default()
    })
}

fn send_adaptive<W, S>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    let mut out = SendOutcome::default();
    writer.write_all(&wire::encode_msg_header(MsgKind::Adaptive, raw_len))?;
    out.wire_bytes += wire::MSG_HEADER_LEN as u64;

    // Probe (§5 "Fast Networks") — skipped when compression is forced.
    let probe_len = if cfg.compression_forced() {
        0u64
    } else {
        (cfg.probe_size as u64).min(raw_len)
    };
    wire::write_u32(writer, probe_len as u32)?;
    out.wire_bytes += 4;
    if probe_len > 0 {
        let t0 = Instant::now();
        copy_exact(source, writer, probe_len, cfg.packet_size, &cfg.pool)?;
        writer.flush()?;
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let bps = probe_len as f64 * 8.0 / secs;
        out.probe_bps = Some(bps);
        out.wire_bytes += probe_len;

        if bps > cfg.fast_bps {
            // Too fast to compress: ship the rest as raw frames. Each
            // frame is assembled (header in place, payload read straight
            // in behind it) in a pooled buffer and put on the wire with a
            // single write; the buffer returns to the pool at the end of
            // the iteration, so a multi-buffer send touches the allocator
            // at most once.
            out.fast_path = true;
            let mut remaining = raw_len - probe_len;
            let mut frame = cfg.pool.get(wire::FRAME_HEADER_LEN + cfg.buffer_size);
            while remaining > 0 {
                let want = (cfg.buffer_size as u64).min(remaining) as usize;
                // Same-size resize is a no-op, so the zero-fill happens
                // once per message, not once per frame.
                frame.resize(wire::FRAME_HEADER_LEN + want, 0);
                source.read_exact(&mut frame[wire::FRAME_HEADER_LEN..])?;
                let fh = FrameHeader {
                    level: 0,
                    raw_len: want as u32,
                    payload_len: want as u32,
                };
                frame[..wire::FRAME_HEADER_LEN].copy_from_slice(&fh.encode());
                writer.write_all(&frame)?;
                out.wire_bytes += frame.len() as u64;
                out.buffers_at_level[0] += 1;
                out.level_events.push((Instant::now(), 0));
                remaining -= want as u64;
            }
            writer.flush()?;
            return Ok(out);
        }
    }

    // Full adaptive machinery: compression thread + emission thread
    // around the FIFO queue (Fig. 1).
    let queue = PacketQueue::new(cfg.queue_cap);
    let bw = BandwidthMonitor::new();
    let remaining = raw_len - probe_len;

    let (comp_res, emit_res) = std::thread::scope(|s| {
        let comp = s.spawn(|| compression_thread(source, remaining, &queue, &bw, cfg));
        let emit = s.spawn(|| emission_thread(writer, &queue, &bw));
        (comp.join(), emit.join())
    });
    let comp = comp_res.expect("compression thread panicked");
    let emit = emit_res.expect("emission thread panicked");

    // An emission failure poisons the queue, which surfaces in the
    // compression thread as Closed; prefer the emission (I/O) error.
    let wire = emit?;
    let comp = comp?;
    out.wire_bytes += wire;
    out.bw_raw_bytes = bw.total_raw_bytes();
    out.buffers_at_level
        .iter_mut()
        .zip(comp.buffers_at_level)
        .for_each(|(d, s)| *d += s);
    out.level_events.extend(comp.level_events);
    out.divergence_reverts = comp.divergence_reverts;
    out.ratio_trips = comp.ratio_trips;
    writer.flush()?;
    Ok(out)
}

/// Per-message results the compression thread reports back.
struct CompOutcome {
    buffers_at_level: [u64; 11],
    level_events: Vec<(Instant, u8)>,
    divergence_reverts: u64,
    ratio_trips: u64,
}

fn compression_thread<S: Read>(
    source: &mut S,
    mut remaining: u64,
    queue: &PacketQueue,
    bw: &BandwidthMonitor,
    cfg: &AdocConfig,
) -> io::Result<CompOutcome> {
    let mut ctrl = LevelController::new(cfg);
    let mut codec = adoc_codec::Codec::new();
    let mut buffers_at_level = [0u64; 11];
    let mut level_events: Vec<(Instant, u8)> = Vec::new();

    while remaining > 0 {
        let want = (cfg.buffer_size as u64).min(remaining) as usize;
        // The raw bytes are read straight into frame position — header
        // space first, payload appended behind it via `Take`, which
        // fills the reserved spare capacity without a zeroing pass — so
        // a level-0 buffer is already a complete frame with no copy.
        let mut raw = cfg.pool.get(wire::FRAME_HEADER_LEN + want);
        raw.resize(wire::FRAME_HEADER_LEN, 0);
        match source.by_ref().take(want as u64).read_to_end(&mut raw) {
            Ok(n) if n == want => {}
            Ok(_) => {
                queue.close();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "source ended before the promised message length",
                ));
            }
            Err(e) => {
                queue.close();
                return Err(e);
            }
        }

        // §3.2: the level is updated before each new buffer.
        let mut level = ctrl.next_level(queue.len(), bw, cfg);

        // §5 "Compressed and random data", early abort: while the stream
        // looks incompressible, test a small prefix before paying for a
        // full-buffer compression.
        if level > 0 && ctrl.is_suspicious() {
            let check = (4 * cfg.packet_size).min(want);
            let t0 = Instant::now();
            let mut probe = cfg.pool.get(check + 64);
            codec.compress_at(
                level,
                &raw[wire::FRAME_HEADER_LEN..wire::FRAME_HEADER_LEN + check],
                &mut probe,
            );
            cfg.throttle.charge(t0.elapsed());
            let check_ratio = check as f64 / probe.len() as f64;
            ctrl.report_ratio(check_ratio, cfg);
            if cfg.ratio_guard > 0.0 && check_ratio < cfg.ratio_guard {
                level = 0; // still incompressible: ship the buffer raw
            }
        }

        // `frame` ends up holding header + payload; at level 0 that is
        // the raw buffer itself (zero copies), otherwise a second pooled
        // buffer the codec encoded into (the only data movement is the
        // compression itself).
        let mut frame = raw;
        if level > 0 {
            let t0 = Instant::now();
            let mut enc = cfg.pool.get(wire::FRAME_HEADER_LEN + want / 2 + 64);
            enc.resize(wire::FRAME_HEADER_LEN, 0);
            codec.compress_at(level, &frame[wire::FRAME_HEADER_LEN..], &mut enc);
            cfg.throttle.charge(t0.elapsed());

            let ratio = want as f64 / (enc.len() - wire::FRAME_HEADER_LEN) as f64;
            ctrl.report_ratio(ratio, cfg);
            if cfg.ratio_guard > 0.0 && ratio < cfg.ratio_guard {
                // Abandon the compressed form; the raw frame goes out and
                // `enc` returns to the pool.
                level = 0;
            } else {
                frame = enc; // the raw buffer returns to the pool
            }
        }
        buffers_at_level[level as usize] += 1;
        level_events.push((Instant::now(), level));

        let fh = FrameHeader {
            level,
            raw_len: want as u32,
            payload_len: (frame.len() - wire::FRAME_HEADER_LEN) as u32,
        };
        frame[..wire::FRAME_HEADER_LEN].copy_from_slice(&fh.encode());

        // Split the frame into shared `(offset, len)` packet views — no
        // per-packet copy; the buffer returns to the pool when the
        // emission thread drops the last view.
        let total = frame.len();
        let frame = Arc::new(frame);
        let mut pushed = 0u32;
        let mut offset = 0usize;
        while offset < total {
            let end = (offset + cfg.packet_size).min(total);
            let share = raw_share(want, offset, end, total);
            let pkt = Packet::view(Arc::clone(&frame), offset, end - offset, level, share);
            if queue.push(pkt).is_err() {
                // Consumer failed; its error is authoritative.
                return Ok(CompOutcome {
                    buffers_at_level,
                    level_events,
                    divergence_reverts: ctrl.divergence_reverts,
                    ratio_trips: ctrl.ratio_trips,
                });
            }
            pushed += 1;
            offset = end;
        }
        ctrl.packets_pushed(pushed);
        remaining -= want as u64;
    }
    queue.close();
    Ok(CompOutcome {
        buffers_at_level,
        level_events,
        divergence_reverts: ctrl.divergence_reverts,
        ratio_trips: ctrl.ratio_trips,
    })
}

/// Raw-size share of the packet covering `offset..end` of a `total`-byte
/// frame that carries `want` raw bytes.
///
/// Cumulative proportional rounding: each packet gets the difference of
/// two running floor divisions, so per-frame shares always sum to exactly
/// `want` — the last packet absorbs the remainder that plain
/// `want * len / total` truncation used to drop, which systematically
/// understated the visible bandwidth the divergence guard compares.
fn raw_share(want: usize, offset: usize, end: usize, total: usize) -> u32 {
    let w = want as u64;
    let t = total as u64;
    (w * end as u64 / t - w * offset as u64 / t) as u32
}

fn emission_thread<W: Write>(
    writer: &mut W,
    queue: &PacketQueue,
    bw: &BandwidthMonitor,
) -> io::Result<u64> {
    let mut wire_bytes = 0u64;
    while let Some(pkt) = queue.pop() {
        let t0 = Instant::now();
        if let Err(e) = writer.write_all(pkt.bytes()) {
            queue.poison();
            return Err(e);
        }
        bw.record(pkt.level, u64::from(pkt.raw_share), t0.elapsed());
        wire_bytes += pkt.len() as u64;
    }
    Ok(wire_bytes)
}

/// Copies exactly `len` bytes from `source` to `writer` in bounded chunks
/// drawn from the pool.
fn copy_exact<S: Read, W: Write>(
    source: &mut S,
    writer: &mut W,
    len: u64,
    chunk: usize,
    pool: &BufferPool,
) -> io::Result<u64> {
    let size = chunk.min(len.try_into().unwrap_or(usize::MAX)).max(1);
    let mut buf = pool.get(size);
    buf.resize(size, 0);
    let mut left = len;
    while left > 0 {
        let want = (buf.len() as u64).min(left) as usize;
        source.read_exact(&mut buf[..want])?;
        writer.write_all(&buf[..want])?;
        left -= want as u64;
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_msg_header;
    use std::io::Cursor;

    fn send_to_vec(data: &[u8], cfg: &AdocConfig) -> (Vec<u8>, SendOutcome) {
        let mut wire = Vec::new();
        let mut src = data;
        let out = send_message(&mut wire, &mut src, data.len() as u64, cfg).unwrap();
        (wire, out)
    }

    #[test]
    fn small_message_takes_direct_path() {
        let cfg = AdocConfig::default();
        let data = vec![1u8; 100_000]; // < 512 KB
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(out.direct);
        assert!(out.probe_bps.is_none());
        assert_eq!(wire.len(), wire::MSG_HEADER_LEN + data.len());
        let mut c = Cursor::new(wire);
        let (kind, len) = read_msg_header(&mut c).unwrap().unwrap();
        assert_eq!(kind, MsgKind::Direct);
        assert_eq!(len, data.len() as u64);
    }

    #[test]
    fn large_message_probes_and_fast_path_on_instant_sink() {
        // A Vec sink is infinitely fast: the probe must measure a huge
        // speed and disable compression (the paper's Gbit behaviour).
        let cfg = AdocConfig::default();
        let data = vec![7u8; 1 << 20];
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(!out.direct);
        assert!(out.probe_bps.expect("probe ran") > cfg.fast_bps);
        assert!(out.fast_path);
        // Wire = header + probe_len field + probe + raw frames: no
        // compression means wire ≥ raw.
        assert!(wire.len() as u64 >= data.len() as u64);
    }

    #[test]
    fn forced_compression_skips_probe_and_compresses() {
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = b"compress me please ".repeat(60_000); // ~1.1 MB
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(out.probe_bps.is_none());
        assert!(!out.fast_path);
        assert!(
            wire.len() < data.len(),
            "forced compression must shrink text"
        );
        let compressed_buffers: u64 = out.buffers_at_level[1..].iter().sum();
        assert!(compressed_buffers > 0);
    }

    #[test]
    fn forced_compression_of_zero_bytes_works() {
        // Table 2's "AdOC with forced compression" row does 0-byte
        // ping-pongs through the full machinery.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let (wire, out) = send_to_vec(b"", &cfg);
        assert!(!out.direct);
        assert_eq!(out.wire_bytes, wire.len() as u64);
        let mut c = Cursor::new(wire);
        let (kind, len) = read_msg_header(&mut c).unwrap().unwrap();
        assert_eq!(kind, MsgKind::Adaptive);
        assert_eq!(len, 0);
    }

    #[test]
    fn disabled_compression_is_direct_even_when_large() {
        let cfg = AdocConfig::default().with_levels(0, 0);
        let data = vec![3u8; 2 << 20];
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(out.direct);
        assert_eq!(wire.len(), wire::MSG_HEADER_LEN + data.len());
    }

    #[test]
    fn short_source_is_an_error() {
        let cfg = AdocConfig::default();
        let mut wire = Vec::new();
        let mut src: &[u8] = b"only ten b";
        let err = send_message(&mut wire, &mut src, 100, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn emission_failure_surfaces_as_error() {
        struct FailAfter {
            n: usize,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.n < buf.len() {
                    return Err(io::Error::new(io::ErrorKind::ConnectionReset, "peer gone"));
                }
                self.n -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let cfg = AdocConfig::default().with_levels(1, 10); // skip probe

        // Incompressible payload so the wire size exceeds the allowance.
        let data: Vec<u8> = {
            let mut x = 1u64;
            (0..4 << 20)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 40) as u8
                })
                .collect()
        };
        let mut sink = FailAfter { n: 300_000 };
        let mut src = &data[..];
        let err = send_message(&mut sink, &mut src, data.len() as u64, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn raw_shares_sum_exactly_to_frame_raw_size() {
        // The old `want * chunk / total` truncation dropped up to one
        // byte per packet; cumulative rounding must never lose any.
        for (want, total, packet) in [
            (204_800usize, 204_809usize, 8_192usize), // raw frame, header remainder
            (204_800, 31_337, 8_192),                 // compressed frame
            (204_800, 204_809, 8_191),                // packet not dividing total
            (1, 10, 8_192),                           // tiny frame, single packet
            (65_536, 9 + 65_536, 7),                  // pathological small packets
            (3, 12, 5),
        ] {
            let mut sum = 0u64;
            let mut offset = 0usize;
            while offset < total {
                let end = (offset + packet).min(total);
                sum += u64::from(raw_share(want, offset, end, total));
                offset = end;
            }
            assert_eq!(
                sum, want as u64,
                "shares must sum to want for ({want}, {total}, {packet})"
            );
        }
    }

    #[test]
    fn bandwidth_monitor_total_matches_stats_raw_bytes() {
        // Forced compression: no probe, no fast path — every raw byte of
        // the message flows through the queue, so the monitor's total
        // must reconcile exactly with TransferStats.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = adoc_data_stub(1_500_000);
        let (_wire, out) = send_to_vec(&data, &cfg);
        let mut stats = TransferStats::new();
        out.merge_into(&mut stats, data.len() as u64);
        assert_eq!(out.bw_raw_bytes, data.len() as u64);
        assert_eq!(out.bw_raw_bytes, stats.raw_bytes);
    }

    #[test]
    fn steady_state_send_hits_the_pool() {
        // First message warms the pool; the second must perform zero
        // allocations (every checkout is a hit) and no buffer may remain
        // outstanding once both sends complete.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = adoc_data_stub(2 << 20);
        let (_w, _o) = send_to_vec(&data, &cfg);
        let after_first = cfg.pool.stats();
        assert_eq!(after_first.outstanding, 0, "buffers leaked from send");
        let (_w, _o) = send_to_vec(&data, &cfg);
        let after_second = cfg.pool.stats();
        // Zero new allocations in the common schedule; tolerate at most
        // two if the second send happens to keep more frames in flight
        // at once than the first ever did (the bound is the concurrent
        // buffer population, never the packet or frame count).
        assert!(
            after_second.misses <= after_first.misses + 2,
            "steady-state send allocated: {} -> {} misses",
            after_first.misses,
            after_second.misses
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(after_second.outstanding, 0);
    }

    #[test]
    fn fast_path_reuses_one_pooled_buffer() {
        // Vec sink → probe classifies the link fast → raw frames. The
        // frame buffer must cycle through the pool, not the allocator.
        let cfg = AdocConfig::default();
        let data = vec![7u8; 4 << 20]; // ~19 fast-path frames
        let (_wire, out) = send_to_vec(&data, &cfg);
        assert!(out.fast_path);
        let s = cfg.pool.stats();
        assert_eq!(s.outstanding, 0);
        assert!(
            s.misses <= 2,
            "fast path allocated {} buffers for {} frames",
            s.misses,
            out.buffers_at_level[0]
        );
        assert!(out.buffers_at_level[0] >= 15);
    }

    #[test]
    fn wire_byte_accounting_is_exact() {
        for cfg in [
            AdocConfig::default(),
            AdocConfig::default().with_levels(1, 10),
            AdocConfig::default().with_levels(0, 0),
        ] {
            let data = adoc_data_stub(700_000);
            let (wire, out) = send_to_vec(&data, &cfg);
            assert_eq!(out.wire_bytes, wire.len() as u64, "cfg {cfg:?}");
        }
    }

    /// Mildly compressible deterministic payload without pulling in
    /// adoc-data (dev-dependency cycle avoidance in unit tests).
    fn adoc_data_stub(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 7u64;
        while v.len() < n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x.is_multiple_of(3) {
                v.extend_from_slice(b"repetitive segment ");
            } else {
                v.extend_from_slice(&x.to_le_bytes());
            }
        }
        v.truncate(n);
        v
    }
}
