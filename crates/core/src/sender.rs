//! The emission side of AdOC (paper Fig. 1): a compression thread feeding
//! the FIFO queue, an emission thread draining it onto the socket, plus
//! the §5 heuristics — direct path, 256 KB probe, fast-network bypass,
//! divergence and ratio guards.
//!
//! [`send_message`] drives the paper's single-stream pipeline (v1 wire
//! format). [`send_message_multi`] stripes one logical message over `N`
//! parallel streams: a dispatcher reads 200 KB buffers in order and
//! round-robins frame `s` onto stream `s % N`, where each stream runs its
//! **own** compression thread, emission queue, [`LevelController`] and
//! [`BandwidthMonitor`] — so both the compression CPU and the congestion
//! windows scale with the stream count. Frames carry v2 headers (stream
//! id + global sequence number) and every stream ends the message with a
//! FIN marker; the receiver reassembles by sequence number. All pipelines
//! draw their buffers from the one shared [`BufferPool`] in the config.

use crate::adapt::LevelController;
use crate::bw::BandwidthMonitor;
use crate::config::AdocConfig;
use crate::error::AdocError;
use crate::pool::PooledBuf;
use crate::queue::{BoundedQueue, Packet, PacketQueue};
use crate::signals::SignalHub;
use crate::stats::{StreamSendStats, TransferStats};
use crate::wire::{self, FrameHeader, FrameHeaderV2, MsgKind};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// Raw frames buffered between the striped dispatcher and each stream's
/// compression thread. Small: the dispatcher reads ahead just enough to
/// keep every compression thread busy.
const RAW_QUEUE_FRAMES: usize = 2;

/// What one message send did (merged into [`TransferStats`]).
#[derive(Debug, Clone, Default)]
pub struct SendOutcome {
    /// Bytes put on the socket, headers included.
    pub wire_bytes: u64,
    /// Measured probe speed, if a probe ran.
    pub probe_bps: Option<f64>,
    /// True if the probe classified the link as too fast to compress.
    pub fast_path: bool,
    /// True if the message used the direct (no-thread) path.
    pub direct: bool,
    /// Buffers encoded per level during this message.
    pub buffers_at_level: [u64; 11],
    /// `(when, level, reason)` per compression buffer, in order.
    pub level_events: Vec<(Instant, u8, crate::adapt::LevelReason)>,
    /// Divergence-guard reverts during this message.
    pub divergence_reverts: u64,
    /// Ratio-guard trips during this message.
    pub ratio_trips: u64,
    /// Raw bytes whose emission the [`BandwidthMonitor`]s observed
    /// (summed over streams). For a forced-compression message (no probe,
    /// no fast path) this equals the message's raw length exactly — the
    /// invariant the divergence guard depends on.
    pub bw_raw_bytes: u64,
    /// Per-stream accounting for striped sends; empty for single-stream
    /// messages (stream 0 then carries everything).
    pub per_stream: Vec<StreamSendStats>,
    /// Visible bandwidth per level at the end of this message, in raw
    /// bits/s (0.0 = level unobserved; striped sends report the sum over
    /// streams). Feeds [`TransferStats::level_bps`].
    pub level_bps: [f64; 11],
}

impl SendOutcome {
    /// Folds this outcome into cumulative connection stats.
    pub fn merge_into(&self, stats: &mut TransferStats, raw_len: u64) {
        stats.messages += 1;
        stats.raw_bytes += raw_len;
        stats.wire_bytes += self.wire_bytes;
        if self.direct {
            stats.direct_messages += 1;
        }
        if self.probe_bps.is_some() {
            stats.probes += 1;
        }
        if self.fast_path {
            stats.fast_path_hits += 1;
        }
        for &(t, level, reason) in &self.level_events {
            stats.record_buffer_reason(t, level, reason);
        }
        debug_assert_eq!(
            self.buffers_at_level.iter().sum::<u64>(),
            self.level_events.len() as u64,
            "level counters and events must agree"
        );
        stats.divergence_reverts += self.divergence_reverts;
        stats.ratio_trips += self.ratio_trips;
        stats.merge_per_stream(&self.per_stream);
        stats.merge_level_bps(&self.level_bps);
    }
}

/// Sends one message of exactly `raw_len` bytes drawn from `source`.
///
/// Blocking: returns once every byte has been handed to `writer`.
pub fn send_message<W, S>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    let direct = cfg.compression_disabled()
        || (!cfg.compression_forced() && raw_len < cfg.probe_threshold as u64);
    if direct {
        return send_direct(writer, source, raw_len, cfg);
    }
    send_adaptive(writer, source, raw_len, cfg)
}

/// Sends one message striped over a group of parallel streams
/// (`writers[0]` is the primary stream; see the module docs). With one
/// writer this is exactly [`send_message`] — byte-identical v1 wire
/// format.
pub fn send_message_multi<W, S>(
    writers: &mut [W],
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    assert!(
        !writers.is_empty(),
        "a stream group needs at least 1 stream"
    );
    assert!(writers.len() <= 255, "stream ids are u8");
    if writers.len() == 1 {
        return send_message(&mut writers[0], source, raw_len, cfg);
    }
    // Small and disabled-compression messages take the direct path on the
    // primary stream alone: striping tiny messages buys nothing.
    let direct = cfg.compression_disabled()
        || (!cfg.compression_forced() && raw_len < cfg.probe_threshold as u64);
    if direct {
        return send_direct(&mut writers[0], source, raw_len, cfg);
    }
    send_adaptive_striped(writers, source, raw_len, cfg)
}

/// §5 "Small messages": header + raw bytes, no threads, latency identical
/// to plain write.
fn send_direct<W: Write, S: Read>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome> {
    writer.write_all(&wire::encode_msg_header(MsgKind::Direct, raw_len))?;
    let copied = copy_exact(source, writer, raw_len, cfg.buffer_size, cfg)?;
    debug_assert_eq!(copied, raw_len);
    writer.flush()?;
    Ok(SendOutcome {
        wire_bytes: wire::MSG_HEADER_LEN as u64 + raw_len,
        direct: true,
        ..SendOutcome::default()
    })
}

/// Next frame's raw size, checked against the u32 wire limit (a silent
/// `as u32` truncation here used to corrupt ≥ 4 GiB buffers).
fn next_frame_size(buffer_size: usize, remaining: u64) -> io::Result<usize> {
    let want = (buffer_size as u64).min(remaining);
    if want > wire::MAX_FRAME_LEN {
        return Err(AdocError::FrameTooLarge { len: want }.into());
    }
    Ok(want as usize)
}

fn send_adaptive<W, S>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    let mut out = SendOutcome::default();
    writer.write_all(&wire::encode_msg_header(MsgKind::Adaptive, raw_len))?;
    out.wire_bytes += wire::MSG_HEADER_LEN as u64;

    // Probe (§5 "Fast Networks") — skipped when compression is forced.
    let probe_len = write_probe(writer, source, raw_len, cfg, &mut out)?;
    if out.fast_path {
        // Too fast to compress: ship the rest as raw v1 frames. Each
        // frame is assembled (header in place, payload read straight in
        // behind it) in a pooled buffer and put on the wire with a single
        // write; the buffer returns to the pool at the end of the
        // iteration, so a multi-buffer send touches the allocator at most
        // once.
        let mut remaining = raw_len - probe_len;
        let mut frame = cfg
            .pool
            .get(wire::FRAME_HEADER_LEN + cfg.buffer_size.min(wire::MAX_FRAME_LEN as usize));
        while remaining > 0 {
            let want = next_frame_size(cfg.buffer_size, remaining)?;
            // Same-size resize is a no-op, so the zero-fill happens
            // once per message, not once per frame.
            frame.resize(wire::FRAME_HEADER_LEN + want, 0);
            source.read_exact(&mut frame[wire::FRAME_HEADER_LEN..])?;
            let fh = FrameHeader {
                level: 0,
                raw_len: want as u32,
                payload_len: want as u32,
            };
            frame[..wire::FRAME_HEADER_LEN].copy_from_slice(&fh.encode());
            cfg.throttle.acquire_wire(frame.len());
            writer.write_all(&frame)?;
            out.wire_bytes += frame.len() as u64;
            out.buffers_at_level[0] += 1;
            out.level_events
                .push((Instant::now(), 0, crate::adapt::LevelReason::default()));
            remaining -= want as u64;
        }
        writer.flush()?;
        return Ok(out);
    }

    // Full adaptive machinery: compression thread + emission thread
    // around the FIFO queue (Fig. 1).
    let queue = PacketQueue::new(cfg.queue_cap);
    let bw = BandwidthMonitor::new();
    let remaining = raw_len - probe_len;

    let (comp_res, emit_res) = std::thread::scope(|s| {
        let comp = s.spawn(|| compression_thread(source, remaining, &queue, &bw, cfg));
        let emit =
            s.spawn(|| emission_thread(writer, &queue, &bw, &*cfg.throttle, cfg.signal_hub()));
        (comp.join(), emit.join())
    });
    // A panicking thread has already released its peer through the queue
    // guards; surface the panic as an error instead of aborting the
    // caller.
    let emit = emit_res.map_err(|_| io::Error::other("emission thread panicked"))?;
    let comp = comp_res.map_err(|_| io::Error::other("compression thread panicked"))?;

    // An emission failure poisons the queue, which surfaces in the
    // compression thread as Closed; prefer the emission (I/O) error.
    let wire = emit?;
    let comp = comp?;
    out.wire_bytes += wire;
    out.bw_raw_bytes = bw.total_raw_bytes();
    for level in 0..=10u8 {
        if let Some(bps) = bw.visible(level) {
            out.level_bps[level as usize] = bps;
        }
    }
    out.buffers_at_level
        .iter_mut()
        .zip(comp.buffers_at_level)
        .for_each(|(d, s)| *d += s);
    out.level_events.extend(comp.level_events);
    out.divergence_reverts = comp.divergence_reverts;
    out.ratio_trips = comp.ratio_trips;
    writer.flush()?;
    Ok(out)
}

/// Writes the probe prefix (primary stream), measuring link speed and
/// setting `out.fast_path` when the link outruns `cfg.fast_bps`. Returns
/// the probe length.
fn write_probe<W: Write, S: Read>(
    writer: &mut W,
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
    out: &mut SendOutcome,
) -> io::Result<u64> {
    let probe_len = if cfg.compression_forced() {
        0u64
    } else {
        (cfg.probe_size as u64).min(raw_len)
    };
    wire::write_u32(writer, probe_len as u32)?;
    out.wire_bytes += 4;
    if probe_len > 0 {
        let t0 = Instant::now();
        copy_exact(source, writer, probe_len, cfg.packet_size, cfg)?;
        writer.flush()?;
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let bps = probe_len as f64 * 8.0 / secs;
        out.probe_bps = Some(bps);
        out.wire_bytes += probe_len;
        out.fast_path = bps > cfg.fast_bps;
    }
    Ok(probe_len)
}

/// One raw compression buffer travelling from the striped dispatcher to a
/// stream's compression thread.
struct RawFrame {
    /// Global in-message frame sequence number.
    seq: u64,
    /// Raw payload bytes in `buf` (after the reserved header prefix).
    want: usize,
    /// Pooled buffer: [`v2_header_len`] reserved bytes, then payload.
    buf: PooledBuf,
}

/// Header bytes reserved in front of every striped data frame: the wide
/// (timestamped) v2 header when this connection feeds the delay-signal
/// layer, the classic 18-byte one otherwise. The dispatcher and each
/// stream's compression thread must agree, so both derive it from the
/// same config gate.
fn v2_header_len(cfg: &AdocConfig) -> usize {
    if cfg.signal_hub().is_some() {
        wire::FRAME_HEADER_V2_TS_LEN
    } else {
        wire::FRAME_HEADER_V2_LEN
    }
}

fn send_adaptive_striped<W, S>(
    writers: &mut [W],
    source: &mut S,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    let mut out = SendOutcome::default();
    writers[0].write_all(&wire::encode_msg_header(MsgKind::Adaptive, raw_len))?;
    out.wire_bytes += wire::MSG_HEADER_LEN as u64;
    let probe_len = write_probe(&mut writers[0], source, raw_len, cfg, &mut out)?;
    let remaining = raw_len - probe_len;
    if remaining == 0 {
        writers[0].flush()?;
        return Ok(out);
    }

    if out.fast_path {
        // Raw v2 frames on the primary stream (compression is not the
        // bottleneck, so striping buys nothing), FIN on every stream so
        // the receiver's per-stream readers unblock.
        let mut left = remaining;
        let mut seq = 0u64;
        let mut frame = cfg
            .pool
            .get(wire::FRAME_HEADER_V2_LEN + cfg.buffer_size.min(wire::MAX_FRAME_LEN as usize));
        while left > 0 {
            let want = next_frame_size(cfg.buffer_size, left)?;
            frame.resize(wire::FRAME_HEADER_V2_LEN + want, 0);
            source.read_exact(&mut frame[wire::FRAME_HEADER_V2_LEN..])?;
            // Fast-path frames skip the timestamp: the link already
            // outran compression, so there is no adaptation to feed.
            let fh = FrameHeaderV2::data(0, 0, seq, want as u32, want as u32);
            frame[..wire::FRAME_HEADER_V2_LEN].copy_from_slice(&fh.encode());
            cfg.throttle.acquire_wire(frame.len());
            writers[0].write_all(&frame)?;
            out.wire_bytes += frame.len() as u64;
            out.buffers_at_level[0] += 1;
            out.level_events
                .push((Instant::now(), 0, crate::adapt::LevelReason::default()));
            seq += 1;
            left -= want as u64;
        }
        let frames_on_primary = seq;
        let primary_frame_bytes = remaining + frames_on_primary * wire::FRAME_HEADER_V2_LEN as u64;
        for (i, w) in writers.iter_mut().enumerate() {
            let frames = if i == 0 { frames_on_primary } else { 0 };
            w.write_all(&FrameHeaderV2::fin(i as u8, frames).encode())?;
            w.flush()?;
            out.wire_bytes += wire::FRAME_HEADER_V2_LEN as u64;
            out.per_stream.push(StreamSendStats {
                stream: i as u8,
                wire_bytes: wire::FRAME_HEADER_V2_LEN as u64
                    + if i == 0 { primary_frame_bytes } else { 0 },
                raw_bytes: if i == 0 { remaining } else { 0 },
                frames,
            });
        }
        return Ok(out);
    }

    striped_pipelines(writers, source, remaining, 0, cfg, &mut out)?;
    Ok(out)
}

/// Resumes a striped message on a fresh stream group: ships the
/// not-yet-delivered tail of a message whose first `start_seq` frames
/// (and probe) the receiver already has. No message header and no probe
/// go on the wire — both sides agreed on the resume point during the
/// session handshake — and frames are numbered from `start_seq` so the
/// receiver's reorder window slots them behind the bytes it kept.
/// Always uses v2 framing, even over a single stream: the original
/// message was striped, so the continuation must be too.
pub fn send_message_multi_resumed<W, S>(
    writers: &mut [W],
    source: &mut S,
    remaining: u64,
    start_seq: u64,
    cfg: &AdocConfig,
) -> io::Result<SendOutcome>
where
    W: Write + Send,
    S: Read + Send,
{
    assert!(
        !writers.is_empty(),
        "a stream group needs at least 1 stream"
    );
    assert!(writers.len() <= 255, "stream ids are u8");
    let mut out = SendOutcome::default();
    if remaining == 0 {
        // Nothing left to ship, but every stream still owes its FIN so
        // the receiver's per-stream readers observe end-of-message.
        for (i, w) in writers.iter_mut().enumerate() {
            w.write_all(&FrameHeaderV2::fin(i as u8, 0).encode())?;
            w.flush()?;
            out.wire_bytes += wire::FRAME_HEADER_V2_LEN as u64;
        }
        return Ok(out);
    }
    striped_pipelines(writers, source, remaining, start_seq, cfg, &mut out)?;
    Ok(out)
}

/// The shared heart of a striped adaptive send: per-stream pipelines
/// around the shared pool — dispatcher (this thread) → raw queue →
/// compression thread → packet queue → emission thread → writer i.
/// Frames are numbered globally from `start_seq` (0 for a fresh message,
/// the negotiated resume point for a continued one).
fn striped_pipelines<W, S>(
    writers: &mut [W],
    source: &mut S,
    remaining: u64,
    start_seq: u64,
    cfg: &AdocConfig,
    out: &mut SendOutcome,
) -> io::Result<()>
where
    W: Write + Send,
    S: Read + Send,
{
    let n = writers.len();
    let raw_queues: Vec<BoundedQueue<RawFrame>> = (0..n)
        .map(|_| BoundedQueue::new(RAW_QUEUE_FRAMES))
        .collect();
    let pkt_queues: Vec<PacketQueue> = (0..n).map(|_| PacketQueue::new(cfg.queue_cap)).collect();
    let monitors: Vec<BandwidthMonitor> = (0..n).map(|_| BandwidthMonitor::new()).collect();

    let (disp_res, comp_res, emit_res) = std::thread::scope(|s| {
        let mut comp_handles = Vec::with_capacity(n);
        let mut emit_handles = Vec::with_capacity(n);
        for (i, w) in writers.iter_mut().enumerate() {
            let (rq, pq, bw) = (&raw_queues[i], &pkt_queues[i], &monitors[i]);
            comp_handles.push(s.spawn(move || stream_compression_thread(i as u8, rq, pq, bw, cfg)));
            emit_handles.push(
                s.spawn(move || emission_thread(w, pq, bw, &*cfg.throttle, cfg.signal_hub())),
            );
        }

        // Dispatcher: read buffers in order, stripe frame s onto stream
        // s % n. The guards close every raw queue on *any* exit — error,
        // panic or success — so no compression thread is ever stranded,
        // and a panicking source surfaces as io::Error like every other
        // pipeline stage.
        let _closers: Vec<_> = raw_queues.iter().map(|q| q.close_on_drop()).collect();
        let disp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> io::Result<()> {
            let mut left = remaining;
            let mut seq = start_seq;
            let hdr = v2_header_len(cfg);
            while left > 0 {
                let want = next_frame_size(cfg.buffer_size, left)?;
                let mut buf = cfg.pool.get(hdr + want);
                buf.resize(hdr, 0);
                match source.by_ref().take(want as u64).read_to_end(&mut buf) {
                    Ok(got) if got == want => {}
                    Ok(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "source ended before the promised message length",
                        ));
                    }
                    Err(e) => return Err(e),
                }
                let target = (seq % n as u64) as usize;
                if raw_queues[target]
                    .push(RawFrame { seq, want, buf })
                    .is_err()
                {
                    // That stream's pipeline failed; its error is
                    // authoritative.
                    return Ok(());
                }
                seq += 1;
                left -= want as u64;
            }
            Ok(())
        }))
        .unwrap_or_else(|_| Err(io::Error::other("dispatcher stage panicked")));
        drop(_closers);
        (
            disp,
            comp_handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<_>>(),
            emit_handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<_>>(),
        )
    });

    // Error priority mirrors the single-stream path: emission (socket)
    // errors first, then compression, then the dispatcher's read error.
    let mut stream_wire = vec![0u64; n];
    let mut first_err: Option<io::Error> = None;
    for (i, res) in emit_res.into_iter().enumerate() {
        match res.map_err(|_| io::Error::other("emission thread panicked")) {
            Ok(Ok(bytes)) => stream_wire[i] = bytes,
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let mut comps = Vec::with_capacity(n);
    for res in comp_res {
        match res.map_err(|_| io::Error::other("compression thread panicked")) {
            Ok(Ok(c)) => comps.push(c),
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    disp_res?;
    for w in writers.iter_mut() {
        w.flush()?;
    }

    out.bw_raw_bytes = BandwidthMonitor::aggregate_total_raw_bytes(&monitors);
    for level in 0..=10u8 {
        if let Some(bps) = BandwidthMonitor::aggregate_visible(&monitors, level) {
            out.level_bps[level as usize] = bps;
        }
    }
    for (i, comp) in comps.into_iter().enumerate() {
        out.wire_bytes += stream_wire[i];
        out.buffers_at_level
            .iter_mut()
            .zip(comp.buffers_at_level)
            .for_each(|(d, s)| *d += s);
        out.level_events.extend(comp.level_events);
        out.divergence_reverts += comp.divergence_reverts;
        out.ratio_trips += comp.ratio_trips;
        out.per_stream.push(StreamSendStats {
            stream: i as u8,
            wire_bytes: stream_wire[i],
            raw_bytes: monitors[i].total_raw_bytes(),
            frames: comp.frames,
        });
    }
    // Interleaved pipelines report out of order; the connection timeline
    // must stay chronological.
    out.level_events.sort_by_key(|&(t, _, _)| t);
    Ok(())
}

/// Per-message results a compression thread reports back.
struct CompOutcome {
    buffers_at_level: [u64; 11],
    level_events: Vec<(Instant, u8, crate::adapt::LevelReason)>,
    divergence_reverts: u64,
    ratio_trips: u64,
    /// Data frames fully handed to the emission queue.
    frames: u64,
}

impl CompOutcome {
    fn new() -> Self {
        CompOutcome {
            buffers_at_level: [0u64; 11],
            level_events: Vec::new(),
            divergence_reverts: 0,
            ratio_trips: 0,
            frames: 0,
        }
    }

    fn finish(mut self, ctrl: &LevelController) -> Self {
        self.divergence_reverts = ctrl.divergence_reverts;
        self.ratio_trips = ctrl.ratio_trips;
        self
    }
}

/// The §5 ratio-guard stage shared by both pipelines: picks the level for
/// a raw buffer (suspicious pre-check + full compression + ratio report)
/// and returns the wire-ready frame body with `header_len` reserved bytes
/// at the front, plus the level it ended up encoded at.
fn encode_frame_payload(
    raw: PooledBuf,
    want: usize,
    header_len: usize,
    mut level: u8,
    ctrl: &mut LevelController,
    codec: &mut adoc_codec::Codec,
    cfg: &AdocConfig,
) -> io::Result<(PooledBuf, u8)> {
    // §5 "Compressed and random data", early abort: while the stream
    // looks incompressible, test a small prefix before paying for a
    // full-buffer compression.
    if level > 0 && ctrl.is_suspicious() {
        let check = (4 * cfg.packet_size).min(want);
        let t0 = Instant::now();
        let mut probe = cfg.pool.get(check + 64);
        codec.compress_at(level, &raw[header_len..header_len + check], &mut probe);
        cfg.throttle.charge(t0.elapsed());
        let check_ratio = check as f64 / probe.len() as f64;
        ctrl.report_ratio(check_ratio, cfg);
        if cfg.ratio_guard > 0.0 && check_ratio < cfg.ratio_guard {
            level = 0; // still incompressible: ship the buffer raw
        }
    }

    // `frame` ends up holding header + payload; at level 0 that is the
    // raw buffer itself (zero copies), otherwise a second pooled buffer
    // the codec encoded into (the only data movement is the compression
    // itself).
    let mut frame = raw;
    if level > 0 {
        let t0 = Instant::now();
        let mut enc = cfg.pool.get(header_len + want / 2 + 64);
        enc.resize(header_len, 0);
        codec.compress_at(level, &frame[header_len..], &mut enc);
        cfg.throttle.charge(t0.elapsed());

        let ratio = want as f64 / (enc.len() - header_len) as f64;
        ctrl.report_ratio(ratio, cfg);
        if cfg.ratio_guard > 0.0 && ratio < cfg.ratio_guard {
            // Abandon the compressed form; the raw frame goes out and
            // `enc` returns to the pool.
            level = 0;
        } else {
            frame = enc; // the raw buffer returns to the pool
        }
    }
    let payload_len = (frame.len() - header_len) as u64;
    if payload_len > wire::MAX_FRAME_LEN {
        return Err(AdocError::FrameTooLarge { len: payload_len }.into());
    }
    Ok((frame, level))
}

/// Splits a wire-ready frame into shared `(offset, len)` packet views and
/// pushes them — no per-packet copy; the buffer returns to the pool when
/// the emission thread drops the last view. Returns the packets pushed,
/// or `Err(())` when the consumer went away.
fn push_frame_packets(
    queue: &PacketQueue,
    frame: PooledBuf,
    want: usize,
    level: u8,
    packet_size: usize,
) -> Result<u32, ()> {
    let total = frame.len();
    let frame = Arc::new(frame);
    let mut pushed = 0u32;
    let mut offset = 0usize;
    let queued_at = Instant::now();
    while offset < total {
        let end = (offset + packet_size).min(total);
        let share = raw_share(want, offset, end, total);
        let mut pkt = Packet::view(Arc::clone(&frame), offset, end - offset, level, share);
        pkt.queued_at = Some(queued_at);
        if queue.push(pkt).is_err() {
            return Err(());
        }
        pushed += 1;
        offset = end;
    }
    Ok(pushed)
}

fn compression_thread<S: Read>(
    source: &mut S,
    mut remaining: u64,
    queue: &PacketQueue,
    bw: &BandwidthMonitor,
    cfg: &AdocConfig,
) -> io::Result<CompOutcome> {
    // Every exit — success, error, panic — ends the stream for the
    // emission thread; without this a dying producer strands the consumer
    // in `pop` forever.
    let _close = queue.close_on_drop();
    let mut ctrl = LevelController::new(cfg);
    let mut codec = adoc_codec::Codec::new();
    let mut out = CompOutcome::new();

    while remaining > 0 {
        let want = next_frame_size(cfg.buffer_size, remaining)?;
        // The raw bytes are read straight into frame position — header
        // space first, payload appended behind it via `Take`, which
        // fills the reserved spare capacity without a zeroing pass — so
        // a level-0 buffer is already a complete frame with no copy.
        let mut raw = cfg.pool.get(wire::FRAME_HEADER_LEN + want);
        raw.resize(wire::FRAME_HEADER_LEN, 0);
        match source.by_ref().take(want as u64).read_to_end(&mut raw) {
            Ok(n) if n == want => {}
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "source ended before the promised message length",
                ));
            }
            Err(e) => return Err(e),
        }

        // §3.2: the level is updated before each new buffer — with the
        // freshest delay verdict alongside the queue length, when this
        // connection runs the signal layer.
        let delay = cfg.signal_hub().and_then(|h| h.snapshot());
        let level = ctrl.next_level_with(queue.len(), bw, delay, cfg);
        let (mut frame, level) = encode_frame_payload(
            raw,
            want,
            wire::FRAME_HEADER_LEN,
            level,
            &mut ctrl,
            &mut codec,
            cfg,
        )?;
        out.buffers_at_level[level as usize] += 1;
        out.level_events
            .push((Instant::now(), level, ctrl.last_reason()));

        let fh = FrameHeader {
            level,
            raw_len: want as u32,
            payload_len: (frame.len() - wire::FRAME_HEADER_LEN) as u32,
        };
        frame[..wire::FRAME_HEADER_LEN].copy_from_slice(&fh.encode());

        match push_frame_packets(queue, frame, want, level, cfg.packet_size) {
            Ok(pushed) => ctrl.packets_pushed(pushed),
            // Consumer failed; its error is authoritative.
            Err(()) => return Ok(out.finish(&ctrl)),
        }
        out.frames += 1;
        remaining -= want as u64;
    }
    Ok(out.finish(&ctrl))
}

/// One stream's compression thread in a striped send: same adaptation
/// loop as [`compression_thread`], but fed pre-read buffers by the
/// dispatcher and emitting v2 frame headers.
fn stream_compression_thread(
    stream_id: u8,
    raw_queue: &BoundedQueue<RawFrame>,
    queue: &PacketQueue,
    bw: &BandwidthMonitor,
    cfg: &AdocConfig,
) -> io::Result<CompOutcome> {
    // Panic-safe shutdown on both sides: a dying compression thread must
    // release the dispatcher (blocked pushing raw frames) *and* the
    // emission thread (blocked popping packets).
    let _poison_raw = raw_queue.poison_on_drop();
    let _close = queue.close_on_drop();
    let mut ctrl = LevelController::new(cfg);
    let mut codec = adoc_codec::Codec::new();
    let mut out = CompOutcome::new();
    let hub = cfg.signal_hub();
    let hdr = v2_header_len(cfg);

    while let Some(RawFrame { seq, want, buf }) = raw_queue.pop() {
        let delay = hub.and_then(|h| h.snapshot());
        let level = ctrl.next_level_with(queue.len(), bw, delay, cfg);
        let (mut frame, level) =
            encode_frame_payload(buf, want, hdr, level, &mut ctrl, &mut codec, cfg)?;
        out.buffers_at_level[level as usize] += 1;
        out.level_events
            .push((Instant::now(), level, ctrl.last_reason()));

        let mut fh = FrameHeaderV2::data(
            level,
            stream_id,
            seq,
            want as u32,
            (frame.len() - hdr) as u32,
        );
        // Departure stamp for the receiver's remote estimator: taken at
        // enqueue, so emission-queue wait shows up as delay — exactly the
        // backlog the gradient is meant to see.
        fh.ts_us = hub.map(|h| h.now_us());
        frame[..hdr].copy_from_slice(&fh.encode());

        match push_frame_packets(queue, frame, want, level, cfg.packet_size) {
            Ok(pushed) => ctrl.packets_pushed(pushed),
            Err(()) => return Ok(out.finish(&ctrl)),
        }
        out.frames += 1;
    }

    // End of message on this stream: the FIN marker records how many data
    // frames the receiver must have seen.
    let fin = FrameHeaderV2::fin(stream_id, out.frames);
    let mut fbuf = cfg.pool.get(wire::FRAME_HEADER_V2_LEN);
    fbuf.extend_from_slice(&fin.encode());
    let len = fbuf.len();
    let _ = queue.push(Packet::view(Arc::new(fbuf), 0, len, 0, 0));
    Ok(out.finish(&ctrl))
}

/// Raw-size share of the packet covering `offset..end` of a `total`-byte
/// frame that carries `want` raw bytes.
///
/// Cumulative proportional rounding: each packet gets the difference of
/// two running floor divisions, so per-frame shares always sum to exactly
/// `want` — the last packet absorbs the remainder that plain
/// `want * len / total` truncation used to drop, which systematically
/// understated the visible bandwidth the divergence guard compares.
fn raw_share(want: usize, offset: usize, end: usize, total: usize) -> u32 {
    let w = want as u64;
    let t = total as u64;
    (w * end as u64 / t - w * offset as u64 / t) as u32
}

fn emission_thread<W: Write>(
    writer: &mut W,
    queue: &PacketQueue,
    bw: &BandwidthMonitor,
    throttle: &dyn crate::throttle::Throttle,
    signals: Option<&SignalHub>,
) -> io::Result<u64> {
    // Any exit — socket error, panic — must unblock a producer waiting
    // for queue space; poisoning after a clean drain is a no-op for the
    // already-finished producer.
    let _poison = queue.poison_on_drop();
    let mut wire_bytes = 0u64;
    while let Some(pkt) = queue.pop() {
        // Admission is timed *inside* the bandwidth window on purpose: a
        // scheduler-paced connection must see its share as its visible
        // bandwidth, so the level adapts to the share like it would to a
        // congested link.
        let t0 = Instant::now();
        throttle.acquire_wire(pkt.len());
        writer.write_all(pkt.bytes())?;
        if pkt.raw_share > 0 {
            bw.record(pkt.level, u64::from(pkt.raw_share), t0.elapsed());
        }
        // Local estimator: enqueue → wire is the sender-side leg of the
        // delay a receiver would echo back, available even on v1 framing.
        if let (Some(hub), Some(q)) = (signals, pkt.queued_at) {
            hub.record_local(q, Instant::now(), pkt.len());
        }
        wire_bytes += pkt.len() as u64;
    }
    Ok(wire_bytes)
}

/// Copies exactly `len` bytes from `source` to `writer` in bounded chunks
/// drawn from the pool, acquiring wire budget per chunk.
fn copy_exact<S: Read, W: Write>(
    source: &mut S,
    writer: &mut W,
    len: u64,
    chunk: usize,
    cfg: &AdocConfig,
) -> io::Result<u64> {
    let size = chunk.min(len.try_into().unwrap_or(usize::MAX)).max(1);
    let mut buf = cfg.pool.get(size);
    buf.resize(size, 0);
    let mut left = len;
    while left > 0 {
        let want = (buf.len() as u64).min(left) as usize;
        source.read_exact(&mut buf[..want])?;
        cfg.throttle.acquire_wire(want);
        writer.write_all(&buf[..want])?;
        left -= want as u64;
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_msg_header;
    use std::io::Cursor;

    fn send_to_vec(data: &[u8], cfg: &AdocConfig) -> (Vec<u8>, SendOutcome) {
        let mut wire = Vec::new();
        let mut src = data;
        let out = send_message(&mut wire, &mut src, data.len() as u64, cfg).unwrap();
        (wire, out)
    }

    #[test]
    fn small_message_takes_direct_path() {
        let cfg = AdocConfig::default();
        let data = vec![1u8; 100_000]; // < 512 KB
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(out.direct);
        assert!(out.probe_bps.is_none());
        assert_eq!(wire.len(), wire::MSG_HEADER_LEN + data.len());
        let mut c = Cursor::new(wire);
        let (kind, len) = read_msg_header(&mut c).unwrap().unwrap();
        assert_eq!(kind, MsgKind::Direct);
        assert_eq!(len, data.len() as u64);
    }

    #[test]
    fn large_message_probes_and_fast_path_on_instant_sink() {
        // A Vec sink is infinitely fast: the probe must measure a huge
        // speed and disable compression (the paper's Gbit behaviour).
        let cfg = AdocConfig::default();
        let data = vec![7u8; 1 << 20];
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(!out.direct);
        assert!(out.probe_bps.expect("probe ran") > cfg.fast_bps);
        assert!(out.fast_path);
        // Wire = header + probe_len field + probe + raw frames: no
        // compression means wire ≥ raw.
        assert!(wire.len() as u64 >= data.len() as u64);
    }

    #[test]
    fn forced_compression_skips_probe_and_compresses() {
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = b"compress me please ".repeat(60_000); // ~1.1 MB
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(out.probe_bps.is_none());
        assert!(!out.fast_path);
        assert!(
            wire.len() < data.len(),
            "forced compression must shrink text"
        );
        let compressed_buffers: u64 = out.buffers_at_level[1..].iter().sum();
        assert!(compressed_buffers > 0);
    }

    #[test]
    fn forced_compression_of_zero_bytes_works() {
        // Table 2's "AdOC with forced compression" row does 0-byte
        // ping-pongs through the full machinery.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let (wire, out) = send_to_vec(b"", &cfg);
        assert!(!out.direct);
        assert_eq!(out.wire_bytes, wire.len() as u64);
        let mut c = Cursor::new(wire);
        let (kind, len) = read_msg_header(&mut c).unwrap().unwrap();
        assert_eq!(kind, MsgKind::Adaptive);
        assert_eq!(len, 0);
    }

    #[test]
    fn disabled_compression_is_direct_even_when_large() {
        let cfg = AdocConfig::default().with_levels(0, 0);
        let data = vec![3u8; 2 << 20];
        let (wire, out) = send_to_vec(&data, &cfg);
        assert!(out.direct);
        assert_eq!(wire.len(), wire::MSG_HEADER_LEN + data.len());
    }

    #[test]
    fn short_source_is_an_error() {
        let cfg = AdocConfig::default();
        let mut wire = Vec::new();
        let mut src: &[u8] = b"only ten b";
        let err = send_message(&mut wire, &mut src, 100, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frame_is_a_typed_error_not_a_truncation() {
        // A 5 GiB buffer_size would truncate `raw_len as u32` on the
        // wire; the sender must refuse with FrameTooLarge *before*
        // reading or allocating anything frame-sized.
        struct EndlessZeros;
        impl Read for EndlessZeros {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(0);
                Ok(buf.len())
            }
        }
        let mut cfg = AdocConfig::default().with_levels(1, 10); // no probe
        cfg.buffer_size = 5 << 30;
        cfg.packet_size = 8 << 10;
        let raw_len = 5u64 << 30;
        let mut wire = Vec::new();
        let err = send_message(&mut wire, &mut EndlessZeros, raw_len, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        match AdocError::from_io(&err) {
            Some(AdocError::FrameTooLarge { len }) => assert_eq!(*len, raw_len),
            other => panic!("expected FrameTooLarge, got {other:?} ({err})"),
        }
        // Nothing frame-sized was buffered before the refusal.
        assert!(wire.len() < 64, "wire got {} bytes", wire.len());
    }

    #[test]
    fn emission_failure_surfaces_as_error() {
        struct FailAfter {
            n: usize,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.n < buf.len() {
                    return Err(io::Error::new(io::ErrorKind::ConnectionReset, "peer gone"));
                }
                self.n -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let cfg = AdocConfig::default().with_levels(1, 10); // skip probe

        // Incompressible payload so the wire size exceeds the allowance.
        let data: Vec<u8> = {
            let mut x = 1u64;
            (0..4 << 20)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 40) as u8
                })
                .collect()
        };
        let mut sink = FailAfter { n: 300_000 };
        let mut src = &data[..];
        let err = send_message(&mut sink, &mut src, data.len() as u64, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn panicking_throttle_does_not_hang_the_send() {
        // Regression for the shutdown path: a panic inside the
        // compression thread used to leave the emission thread blocked in
        // `pop` forever (thread::scope then never unwinds). The queue
        // guards must close the stream and the send must return an error.
        struct PanicThrottle;
        impl crate::throttle::Throttle for PanicThrottle {
            fn charge(&self, _elapsed: std::time::Duration) {
                panic!("simulated codec-thread death");
            }
        }
        let cfg = AdocConfig::default()
            .with_levels(1, 10)
            .with_throttle(std::sync::Arc::new(PanicThrottle));
        let data = b"compressible text ".repeat(60_000);

        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let mut wire = Vec::new();
            let mut src = &data[..];
            let res = send_message(&mut wire, &mut src, data.len() as u64, &cfg);
            let _ = done_tx.send(res.is_err());
        });
        match done_rx.recv_timeout(std::time::Duration::from_secs(10)) {
            Ok(errored) => assert!(errored, "a panicked pipeline must report an error"),
            Err(_) => panic!("send_message deadlocked after a compression-thread panic"),
        }
    }

    #[test]
    fn raw_shares_sum_exactly_to_frame_raw_size() {
        // The old `want * chunk / total` truncation dropped up to one
        // byte per packet; cumulative rounding must never lose any.
        for (want, total, packet) in [
            (204_800usize, 204_809usize, 8_192usize), // raw frame, header remainder
            (204_800, 31_337, 8_192),                 // compressed frame
            (204_800, 204_809, 8_191),                // packet not dividing total
            (1, 10, 8_192),                           // tiny frame, single packet
            (65_536, 9 + 65_536, 7),                  // pathological small packets
            (3, 12, 5),
        ] {
            let mut sum = 0u64;
            let mut offset = 0usize;
            while offset < total {
                let end = (offset + packet).min(total);
                sum += u64::from(raw_share(want, offset, end, total));
                offset = end;
            }
            assert_eq!(
                sum, want as u64,
                "shares must sum to want for ({want}, {total}, {packet})"
            );
        }
    }

    #[test]
    fn bandwidth_monitor_total_matches_stats_raw_bytes() {
        // Forced compression: no probe, no fast path — every raw byte of
        // the message flows through the queue, so the monitor's total
        // must reconcile exactly with TransferStats.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = adoc_data_stub(1_500_000);
        let (_wire, out) = send_to_vec(&data, &cfg);
        let mut stats = TransferStats::new();
        out.merge_into(&mut stats, data.len() as u64);
        assert_eq!(out.bw_raw_bytes, data.len() as u64);
        assert_eq!(out.bw_raw_bytes, stats.raw_bytes);
    }

    #[test]
    fn striped_send_accounts_every_stream() {
        // 4 sinks, forced compression: every stream must carry frames,
        // the per-stream raw bytes must sum to the message, and frame
        // counts must match the round-robin striping.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = adoc_data_stub(2 << 20); // 11 buffers at 200 KB
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 4];
        let mut src = &data[..];
        let out = send_message_multi(&mut sinks, &mut src, data.len() as u64, &cfg).unwrap();
        assert_eq!(out.per_stream.len(), 4);
        let frames: u64 = out.per_stream.iter().map(|s| s.frames).sum();
        assert_eq!(frames, data.len().div_ceil(cfg.buffer_size) as u64);
        let raw: u64 = out.per_stream.iter().map(|s| s.raw_bytes).sum();
        assert_eq!(raw, data.len() as u64);
        assert_eq!(out.bw_raw_bytes, data.len() as u64);
        // Round-robin: stream frame counts differ by at most one.
        let min = out.per_stream.iter().map(|s| s.frames).min().unwrap();
        let max = out.per_stream.iter().map(|s| s.frames).max().unwrap();
        assert!(max - min <= 1, "striping must be balanced: {out:?}");
        let wire_sum: u64 = out.per_stream.iter().map(|s| s.wire_bytes).sum();
        // Header + probe-length field live on stream 0 but are counted
        // message-wide.
        assert_eq!(out.wire_bytes, wire_sum + wire::MSG_HEADER_LEN as u64 + 4);
        assert_eq!(cfg.pool.stats().outstanding, 0, "leaked pooled buffers");
    }

    #[test]
    fn striped_fast_path_populates_per_stream() {
        // Vec sinks → instant probe → fast path on the primary stream;
        // accounting must still cover every stream (FIN-only secondaries).
        let cfg = AdocConfig::default();
        let data = vec![7u8; 2 << 20];
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 3];
        let mut src = &data[..];
        let out = send_message_multi(&mut sinks, &mut src, data.len() as u64, &cfg).unwrap();
        assert!(out.fast_path);
        assert_eq!(out.per_stream.len(), 3);
        let probe = cfg.probe_size as u64;
        assert_eq!(out.per_stream[0].raw_bytes, data.len() as u64 - probe);
        assert_eq!(out.per_stream[1].frames, 0);
        assert_eq!(out.per_stream[2].frames, 0);
        let wire_sum: u64 = out.per_stream.iter().map(|s| s.wire_bytes).sum();
        assert_eq!(
            out.wire_bytes,
            wire_sum + wire::MSG_HEADER_LEN as u64 + 4 + probe,
            "per-stream wire bytes + message-wide header/probe must reconcile"
        );
        for (i, s) in out.per_stream.iter().enumerate() {
            assert_eq!(
                s.wire_bytes,
                sinks[i].len() as u64
                    - if i == 0 {
                        wire::MSG_HEADER_LEN as u64 + 4 + probe
                    } else {
                        0
                    }
            );
        }
    }

    #[test]
    fn striped_send_with_one_stream_is_v1_byte_identical() {
        // A pinned level (min == max) makes the adaptive frame stream
        // deterministic, so the two wire captures must match byte for
        // byte; the direct path is deterministic by construction.
        for data in [
            adoc_data_stub(10_000),  // direct
            adoc_data_stub(1 << 20), // adaptive
        ] {
            for cfg in [
                AdocConfig::default().with_levels(0, 0),
                AdocConfig::default().with_levels(4, 4),
            ] {
                let (v1, _) = send_to_vec(&data, &cfg);
                let mut group = vec![Vec::new()];
                let mut src = &data[..];
                send_message_multi(&mut group, &mut src, data.len() as u64, &cfg).unwrap();
                assert_eq!(group[0], v1, "streams == 1 must stay v1");
            }
        }
    }

    #[test]
    fn steady_state_send_hits_the_pool() {
        // First message warms the pool; the second must perform zero
        // allocations (every checkout is a hit) and no buffer may remain
        // outstanding once both sends complete.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = adoc_data_stub(2 << 20);
        let (_w, _o) = send_to_vec(&data, &cfg);
        let after_first = cfg.pool.stats();
        assert_eq!(after_first.outstanding, 0, "buffers leaked from send");
        let (_w, _o) = send_to_vec(&data, &cfg);
        let after_second = cfg.pool.stats();
        // Zero new allocations in the common schedule; tolerate at most
        // two if the second send happens to keep more frames in flight
        // at once than the first ever did (the bound is the concurrent
        // buffer population, never the packet or frame count).
        assert!(
            after_second.misses <= after_first.misses + 2,
            "steady-state send allocated: {} -> {} misses",
            after_first.misses,
            after_second.misses
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(after_second.outstanding, 0);
    }

    #[test]
    fn fast_path_reuses_one_pooled_buffer() {
        // Vec sink → probe classifies the link fast → raw frames. The
        // frame buffer must cycle through the pool, not the allocator.
        let cfg = AdocConfig::default();
        let data = vec![7u8; 4 << 20]; // ~19 fast-path frames
        let (_wire, out) = send_to_vec(&data, &cfg);
        assert!(out.fast_path);
        let s = cfg.pool.stats();
        assert_eq!(s.outstanding, 0);
        assert!(
            s.misses <= 2,
            "fast path allocated {} buffers for {} frames",
            s.misses,
            out.buffers_at_level[0]
        );
        assert!(out.buffers_at_level[0] >= 15);
    }

    #[test]
    fn every_payload_byte_passes_wire_admission() {
        // The fair-share scheduler's contract: everything except the
        // fixed message header (and the probe-length field) flows
        // through Throttle::acquire_wire. A recording throttle must see
        // exactly wire_bytes minus those fixed fields.
        use std::sync::atomic::{AtomicU64, Ordering};
        #[derive(Default)]
        struct Recorder(AtomicU64);
        impl crate::throttle::Throttle for Recorder {
            fn charge(&self, _e: std::time::Duration) {}
            fn acquire_wire(&self, bytes: usize) {
                self.0.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
        // Direct path: admission covers wire minus the 10-byte header.
        let rec = std::sync::Arc::new(Recorder::default());
        let cfg = AdocConfig::default().with_throttle(rec.clone());
        let data = adoc_data_stub(100_000);
        let (_wire, out) = send_to_vec(&data, &cfg);
        assert!(out.direct);
        assert_eq!(
            rec.0.load(Ordering::Relaxed),
            out.wire_bytes - wire::MSG_HEADER_LEN as u64
        );
        // Adaptive forced path: every emitted packet is admitted.
        let rec = std::sync::Arc::new(Recorder::default());
        let cfg = AdocConfig::default()
            .with_levels(1, 10)
            .with_throttle(rec.clone());
        let data = adoc_data_stub(1_200_000);
        let (_wire, out) = send_to_vec(&data, &cfg);
        assert!(!out.direct && !out.fast_path);
        assert_eq!(
            rec.0.load(Ordering::Relaxed),
            out.wire_bytes - wire::MSG_HEADER_LEN as u64 - 4
        );
    }

    #[test]
    fn adaptive_send_snapshots_per_level_bandwidth() {
        // A paced sink: an instant Vec sink can finish so fast (release
        // builds) that no level accumulates the monitor's minimum
        // observation time, making the snapshot legitimately empty.
        struct PacedSink(Vec<u8>);
        impl Write for PacedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                std::thread::sleep(std::time::Duration::from_micros(20));
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let cfg = AdocConfig::default().with_levels(1, 10);
        let data = adoc_data_stub(2 << 20);
        let mut sink = PacedSink(Vec::new());
        let mut src = &data[..];
        let out = send_message(&mut sink, &mut src, data.len() as u64, &cfg).unwrap();
        let observed: Vec<u8> = (0..11u8)
            .filter(|&l| out.level_bps[l as usize] > 0.0)
            .collect();
        assert!(
            !observed.is_empty(),
            "an adaptive message must observe at least one level's bandwidth"
        );
        for &l in &observed {
            assert!(
                out.buffers_at_level[l as usize] > 0 || out.level_bps[l as usize] > 0.0,
                "level {l} reported without traffic"
            );
        }
        let mut stats = TransferStats::new();
        out.merge_into(&mut stats, data.len() as u64);
        for l in 0..11 {
            assert_eq!(stats.level_bps[l], out.level_bps[l]);
        }
    }

    #[test]
    fn wire_byte_accounting_is_exact() {
        for cfg in [
            AdocConfig::default(),
            AdocConfig::default().with_levels(1, 10),
            AdocConfig::default().with_levels(0, 0),
        ] {
            let data = adoc_data_stub(700_000);
            let (wire, out) = send_to_vec(&data, &cfg);
            assert_eq!(out.wire_bytes, wire.len() as u64, "cfg {cfg:?}");
        }
    }

    #[test]
    fn striped_wire_byte_accounting_is_exact() {
        for streams in [2usize, 3, 4] {
            let cfg = AdocConfig::default().with_levels(1, 10);
            let data = adoc_data_stub(1_300_000);
            let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); streams];
            let mut src = &data[..];
            let out = send_message_multi(&mut sinks, &mut src, data.len() as u64, &cfg).unwrap();
            let on_wire: u64 = sinks.iter().map(|s| s.len() as u64).sum();
            assert_eq!(out.wire_bytes, on_wire, "streams = {streams}");
        }
    }

    /// Mildly compressible deterministic payload without pulling in
    /// adoc-data (dev-dependency cycle avoidance in unit tests).
    fn adoc_data_stub(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 7u64;
        while v.len() < n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x.is_multiple_of(3) {
                v.extend_from_slice(b"repetitive segment ");
            } else {
                v.extend_from_slice(&x.to_le_bytes());
            }
        }
        v.truncate(n);
        v
    }
}
