//! The reception side of AdOC (paper Fig. 1, "symmetric but does not
//! monitor the queue size"): a reception thread reading frames off the
//! socket into a FIFO, and a decompression thread draining it into the
//! application sink.

use crate::config::AdocConfig;
use crate::pool::BufferPool;
use crate::queue::{Packet, PacketQueue};
use crate::wire::{self, FrameHeader, MsgKind};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// Frames buffered between the reception and decompression threads. Kept
/// small so a slow decompressor backpressures the network promptly —
/// that is the signal the sender's divergence guard reacts to.
const RECV_QUEUE_FRAMES: usize = 16;

/// Receives one message, streaming its decoded bytes into `sink`.
///
/// Returns `Ok(None)` on clean end-of-stream, `Ok(Some(raw_len))` after a
/// full message.
pub fn receive_message<R, K>(
    reader: &mut R,
    sink: &mut K,
    cfg: &AdocConfig,
) -> io::Result<Option<u64>>
where
    R: Read + Send,
    K: Write + Send,
{
    let Some((kind, raw_len)) = wire::read_msg_header(reader)? else {
        return Ok(None);
    };
    if raw_len > cfg.max_message {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message of {raw_len} bytes exceeds configured maximum"),
        ));
    }

    match kind {
        MsgKind::Direct => {
            copy_exact(reader, sink, raw_len, cfg.buffer_size, &cfg.pool)?;
            Ok(Some(raw_len))
        }
        MsgKind::Adaptive => {
            receive_adaptive(reader, sink, raw_len, cfg)?;
            Ok(Some(raw_len))
        }
    }
}

fn receive_adaptive<R, K>(
    reader: &mut R,
    sink: &mut K,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<()>
where
    R: Read + Send,
    K: Write + Send,
{
    let probe_len = u64::from(wire::read_u32(reader)?);
    if probe_len > raw_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "probe longer than message",
        ));
    }
    copy_exact(reader, sink, probe_len, cfg.packet_size, &cfg.pool)?;

    let remaining = raw_len - probe_len;
    if remaining == 0 {
        return Ok(());
    }

    // Reception + decompression overlap (paper §3.1), mirrored from the
    // sender but with a fixed small queue.
    let queue = PacketQueue::new(RECV_QUEUE_FRAMES);
    let (recv_res, decomp_res) = std::thread::scope(|s| {
        let recv = s.spawn(|| reception_thread(reader, remaining, &queue, cfg));
        let decomp = s.spawn(|| decompression_thread(sink, remaining, &queue, cfg));
        (recv.join(), decomp.join())
    });
    let recv = recv_res.expect("reception thread panicked");
    let decomp = decomp_res.expect("decompression thread panicked");
    // Prefer the decoder's error (it poisons the queue, which the
    // reception thread sees as Closed).
    decomp?;
    recv?;
    Ok(())
}

fn reception_thread<R: Read>(
    reader: &mut R,
    total_raw: u64,
    queue: &PacketQueue,
    cfg: &AdocConfig,
) -> io::Result<()> {
    let mut collected = 0u64;
    while collected < total_raw {
        let fh = match FrameHeader::read(reader, adoc_codec::ADOC_MAX_LEVEL) {
            Ok(fh) => fh,
            Err(e) => {
                queue.close();
                return Err(e);
            }
        };
        if u64::from(fh.raw_len) + collected > total_raw {
            queue.close();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frames exceed message length",
            ));
        }
        // Sanity bound: a frame payload can exceed its raw size only by
        // small codec overhead; anything larger is corruption.
        if u64::from(fh.payload_len) > 2 * u64::from(fh.raw_len).max(cfg.buffer_size as u64) + 1024
        {
            queue.close();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame payload too large",
            ));
        }
        // Pooled payload buffer, filled through `Take` so the reserved
        // capacity is never zeroed first; it returns to the slab once
        // the decompression thread drops the packet.
        let mut payload = cfg.pool.get(fh.payload_len as usize);
        match reader
            .by_ref()
            .take(u64::from(fh.payload_len))
            .read_to_end(&mut payload)
        {
            Ok(n) if n == fh.payload_len as usize => {}
            Ok(_) => {
                queue.close();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "frame payload truncated",
                ));
            }
            Err(e) => {
                queue.close();
                return Err(e);
            }
        }
        collected += u64::from(fh.raw_len);
        let len = payload.len();
        let pkt = Packet::view(Arc::new(payload), 0, len, fh.level, fh.raw_len);
        if queue.push(pkt).is_err() {
            // Decoder failed; its error wins.
            return Ok(());
        }
    }
    queue.close();
    Ok(())
}

fn decompression_thread<K: Write>(
    sink: &mut K,
    total_raw: u64,
    queue: &PacketQueue,
    cfg: &AdocConfig,
) -> io::Result<()> {
    let mut produced = 0u64;
    // Decode scratch: pooled, reused across every frame of the message,
    // and decompress_at appends into it directly (no intermediate vector
    // inside the codec either).
    let mut scratch = cfg.pool.get(cfg.buffer_size);
    while let Some(pkt) = queue.pop() {
        let raw_len = pkt.raw_share as usize;
        scratch.clear();
        let t0 = Instant::now();
        if let Err(e) = adoc_codec::decompress_at(pkt.level, pkt.bytes(), raw_len, &mut scratch) {
            queue.poison();
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
        cfg.throttle.charge(t0.elapsed());
        if let Err(e) = sink.write_all(&scratch) {
            queue.poison();
            return Err(e);
        }
        produced += raw_len as u64;
    }
    if produced != total_raw {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("message truncated: {produced} of {total_raw} bytes"),
        ));
    }
    Ok(())
}

fn copy_exact<R: Read, W: Write>(
    reader: &mut R,
    sink: &mut W,
    len: u64,
    chunk: usize,
    pool: &BufferPool,
) -> io::Result<()> {
    if len == 0 {
        return Ok(());
    }
    let size = chunk.max(1).min(len.try_into().unwrap_or(usize::MAX));
    let mut buf = pool.get(size);
    buf.resize(size, 0);
    let mut left = len;
    while left > 0 {
        let want = (buf.len() as u64).min(left) as usize;
        reader.read_exact(&mut buf[..want])?;
        sink.write_all(&buf[..want])?;
        left -= want as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::send_message;
    use std::io::Cursor;

    fn roundtrip_with(cfg_tx: &AdocConfig, cfg_rx: &AdocConfig, data: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        let mut src = data;
        send_message(&mut wire, &mut src, data.len() as u64, cfg_tx).unwrap();
        let mut c = Cursor::new(wire);
        let mut out = Vec::new();
        let got = receive_message(&mut c, &mut out, cfg_rx).unwrap();
        assert_eq!(got, Some(data.len() as u64));
        out
    }

    fn compressible(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 99u64;
        while v.len() < n {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if !x.is_multiple_of(4) {
                v.extend_from_slice(b"some structured text content ");
            } else {
                v.extend_from_slice(&x.to_le_bytes());
            }
        }
        v.truncate(n);
        v
    }

    #[test]
    fn direct_roundtrip() {
        let cfg = AdocConfig::default();
        let data = compressible(10_000);
        assert_eq!(roundtrip_with(&cfg, &cfg, &data), data);
    }

    #[test]
    fn empty_message_roundtrip() {
        let cfg = AdocConfig::default();
        assert_eq!(roundtrip_with(&cfg, &cfg, b""), b"");
    }

    #[test]
    fn adaptive_fast_path_roundtrip() {
        // Vec sink probe → fast path → raw frames.
        let cfg = AdocConfig::default();
        let data = compressible(3 << 20);
        assert_eq!(roundtrip_with(&cfg, &cfg, &data), data);
    }

    #[test]
    fn forced_compression_roundtrip() {
        let tx = AdocConfig::default().with_levels(1, 10);
        let rx = AdocConfig::default();
        let data = compressible(2 << 20);
        assert_eq!(roundtrip_with(&tx, &rx, &data), data);
    }

    #[test]
    fn forced_single_level_roundtrips_each_level() {
        for level in 1..=10u8 {
            let tx = AdocConfig::default().with_levels(level, level);
            let rx = AdocConfig::default();
            let data = compressible(600_000);
            assert_eq!(roundtrip_with(&tx, &rx, &data), data, "level {level}");
        }
    }

    #[test]
    fn clean_eof_returns_none() {
        let cfg = AdocConfig::default();
        let mut c = Cursor::new(Vec::<u8>::new());
        let mut out = Vec::new();
        assert!(receive_message(&mut c, &mut out, &cfg).unwrap().is_none());
    }

    #[test]
    fn truncated_adaptive_stream_errors() {
        let tx = AdocConfig::default().with_levels(1, 10);
        let data = compressible(1 << 20);
        let mut wire = Vec::new();
        let mut src = &data[..];
        send_message(&mut wire, &mut src, data.len() as u64, &tx).unwrap();
        for frac in [wire.len() / 4, wire.len() / 2, wire.len() - 3] {
            let mut c = Cursor::new(wire[..frac].to_vec());
            let mut out = Vec::new();
            assert!(
                receive_message(&mut c, &mut out, &AdocConfig::default()).is_err(),
                "cut at {frac} did not error"
            );
        }
    }

    #[test]
    fn oversized_message_header_rejected() {
        let cfg = AdocConfig {
            max_message: 1000,
            ..AdocConfig::default()
        };
        let hdr = wire::encode_msg_header(MsgKind::Direct, 10_000);
        let mut c = Cursor::new(hdr.to_vec());
        let mut out = Vec::new();
        assert!(receive_message(&mut c, &mut out, &cfg).is_err());
    }

    #[test]
    fn corrupted_frame_payload_detected() {
        let tx = AdocConfig::default().with_levels(5, 5);
        let data = compressible(700_000);
        let mut wire = Vec::new();
        let mut src = &data[..];
        send_message(&mut wire, &mut src, data.len() as u64, &tx).unwrap();
        // Flip a byte inside the first frame payload (after headers).
        let idx = wire::MSG_HEADER_LEN + 4 + wire::FRAME_HEADER_LEN + 100;
        wire[idx] ^= 0xFF;
        let mut c = Cursor::new(wire);
        let mut out = Vec::new();
        let res = receive_message(&mut c, &mut out, &AdocConfig::default());
        assert!(
            res.is_err(),
            "corruption must be detected by decode or length checks"
        );
    }

    #[test]
    fn sink_failure_propagates() {
        struct TinySink(usize);
        impl Write for TinySink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let tx = AdocConfig::default().with_levels(1, 10);
        let data = compressible(2 << 20);
        let mut wire = Vec::new();
        let mut src = &data[..];
        send_message(&mut wire, &mut src, data.len() as u64, &tx).unwrap();
        let mut c = Cursor::new(wire);
        let mut sink = TinySink(100_000);
        let err = receive_message(&mut c, &mut sink, &AdocConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }
}
