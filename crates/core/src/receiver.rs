//! The reception side of AdOC (paper Fig. 1, "symmetric but does not
//! monitor the queue size"): a reception thread reading frames off the
//! socket into a FIFO, and a decompression thread draining it into the
//! application sink.
//!
//! [`receive_message`] mirrors the single-stream (v1) sender.
//! [`receive_message_multi`] mirrors a striped sender: one reception
//! thread per stream reads v2 frames into a shared, bounded
//! [`ReorderBuffer`], and a decompression thread drains frames in global
//! sequence order — so the application sees bytes **in order** no matter
//! how the streams interleaved. Payloads live in pooled buffers from the
//! shared [`BufferPool`]; the reorder window is capped at a few frames
//! per stream, so a stalled stream backpressures its peers instead of
//! buffering unboundedly.

use crate::config::AdocConfig;
use crate::pool::PooledBuf;
use crate::queue::{Packet, PacketQueue};
use crate::wire::{self, FrameHeader, FrameHeaderV2, MsgKind};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// Frames buffered between the reception and decompression threads. Kept
/// small so a slow decompressor backpressures the network promptly —
/// that is the signal the sender's divergence guard reacts to.
const RECV_QUEUE_FRAMES: usize = 16;

/// Reorder-window frames buffered per stream of a striped connection
/// (same backpressure rationale as [`RECV_QUEUE_FRAMES`], scaled by the
/// stream count).
const REORDER_FRAMES_PER_STREAM: usize = 2;

/// Receives one message, streaming its decoded bytes into `sink`.
///
/// Returns `Ok(None)` on clean end-of-stream, `Ok(Some(raw_len))` after a
/// full message.
pub fn receive_message<R, K>(
    reader: &mut R,
    sink: &mut K,
    cfg: &AdocConfig,
) -> io::Result<Option<u64>>
where
    R: Read + Send,
    K: Write + Send,
{
    let Some((kind, raw_len)) = wire::read_msg_header(reader)? else {
        return Ok(None);
    };
    if raw_len > cfg.max_message {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message of {raw_len} bytes exceeds configured maximum"),
        ));
    }

    match kind {
        MsgKind::Direct => {
            copy_exact(reader, sink, raw_len, cfg.buffer_size, cfg)?;
            Ok(Some(raw_len))
        }
        MsgKind::Adaptive => {
            receive_adaptive(reader, sink, raw_len, cfg)?;
            Ok(Some(raw_len))
        }
    }
}

/// Live progress of a striped receive, exposed so a session-serving
/// caller can park a partially-delivered message when the connection
/// dies and continue it on the next one. Only the striped adaptive path
/// reports progress: direct bodies and v1 (single-stream) framing have
/// no global sequence numbers, so an interrupted message there restarts
/// from its beginning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecvProgress {
    /// A trackable (striped adaptive) message is in flight. Cleared once
    /// the message completes — a partial exists only while this is set.
    pub active: bool,
    /// Raw length of the in-flight message.
    pub total_raw: u64,
    /// Raw bytes delivered contiguously to the sink so far (probe bytes
    /// plus in-order frames).
    pub delivered_raw: u64,
    /// The next global frame sequence number the reorder window expects.
    pub next_seq: u64,
}

impl RecvProgress {
    /// Clears all progress (called at each message boundary).
    pub fn reset(&mut self) {
        *self = RecvProgress::default();
    }
}

/// Receives one message from a striped stream group (`readers[0]` is the
/// primary stream). With one reader this is exactly [`receive_message`].
pub fn receive_message_multi<R, K>(
    readers: &mut [R],
    sink: &mut K,
    cfg: &AdocConfig,
) -> io::Result<Option<u64>>
where
    R: Read + Send,
    K: Write + Send,
{
    let mut progress = RecvProgress::default();
    receive_message_multi_tracked(readers, sink, cfg, &mut progress)
}

/// [`receive_message_multi`] that additionally reports delivery progress
/// through `progress` — on error, `progress` (plus the bytes already in
/// the sink) defines the resume point a session server parks.
pub fn receive_message_multi_tracked<R, K>(
    readers: &mut [R],
    sink: &mut K,
    cfg: &AdocConfig,
    progress: &mut RecvProgress,
) -> io::Result<Option<u64>>
where
    R: Read + Send,
    K: Write + Send,
{
    assert!(
        !readers.is_empty(),
        "a stream group needs at least 1 stream"
    );
    progress.reset();
    if readers.len() == 1 {
        return receive_message(&mut readers[0], sink, cfg);
    }
    let Some((kind, raw_len)) = wire::read_msg_header(&mut readers[0])? else {
        return Ok(None);
    };
    if raw_len > cfg.max_message {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message of {raw_len} bytes exceeds configured maximum"),
        ));
    }
    match kind {
        MsgKind::Direct => {
            copy_exact(&mut readers[0], sink, raw_len, cfg.buffer_size, cfg)?;
            Ok(Some(raw_len))
        }
        MsgKind::Adaptive => {
            progress.active = true;
            progress.total_raw = raw_len;
            receive_adaptive_striped(readers, sink, raw_len, cfg, progress)?;
            progress.active = false;
            Ok(Some(raw_len))
        }
    }
}

/// Continues a striped message interrupted mid-delivery: the peer ships
/// frames `next_seq..` of a `total_raw`-byte message whose first
/// `delivered_raw` bytes the caller already holds. No message header and
/// no probe are read; framing is always v2, even over a single stream
/// (mirroring [`crate::sender::send_message_multi_resumed`]). Frames
/// with sequence numbers below `next_seq` — replays — are rejected as
/// duplicates. Returns `total_raw` on completion.
pub fn receive_message_multi_resumed<R, K>(
    readers: &mut [R],
    sink: &mut K,
    total_raw: u64,
    delivered_raw: u64,
    next_seq: u64,
    cfg: &AdocConfig,
    progress: &mut RecvProgress,
) -> io::Result<u64>
where
    R: Read + Send,
    K: Write + Send,
{
    assert!(
        !readers.is_empty(),
        "a stream group needs at least 1 stream"
    );
    let remaining = total_raw.checked_sub(delivered_raw).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "resume point beyond message length",
        )
    })?;
    progress.active = true;
    progress.total_raw = total_raw;
    progress.delivered_raw = delivered_raw;
    progress.next_seq = next_seq;
    // Even with nothing left to deliver the peer sends its per-stream
    // FINs, which must be consumed here or they would corrupt the next
    // message's parse.
    striped_body(readers, sink, remaining, next_seq, cfg, progress)?;
    progress.active = false;
    Ok(total_raw)
}

fn receive_adaptive<R, K>(
    reader: &mut R,
    sink: &mut K,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<()>
where
    R: Read + Send,
    K: Write + Send,
{
    let probe_len = read_probe_prefix(reader, sink, raw_len, cfg)?;
    let remaining = raw_len - probe_len;
    if remaining == 0 {
        return Ok(());
    }

    // Reception + decompression overlap (paper §3.1), mirrored from the
    // sender but with a fixed small queue.
    let queue = PacketQueue::new(RECV_QUEUE_FRAMES);
    let (recv_res, decomp_res) = std::thread::scope(|s| {
        let recv = s.spawn(|| reception_thread(reader, remaining, &queue, cfg));
        let decomp = s.spawn(|| decompression_thread(sink, remaining, &queue, cfg));
        (recv.join(), decomp.join())
    });
    let recv = recv_res.map_err(|_| io::Error::other("reception thread panicked"))?;
    let decomp = decomp_res.map_err(|_| io::Error::other("decompression thread panicked"))?;
    // Prefer the decoder's error (it poisons the queue, which the
    // reception thread sees as Closed).
    decomp?;
    recv?;
    Ok(())
}

/// Reads and validates the probe-length prefix, copying the probe bytes
/// straight to the sink. Returns the probe length.
fn read_probe_prefix<R: Read, K: Write>(
    reader: &mut R,
    sink: &mut K,
    raw_len: u64,
    cfg: &AdocConfig,
) -> io::Result<u64> {
    let probe_len = u64::from(wire::read_u32(reader)?);
    if probe_len > raw_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "probe longer than message",
        ));
    }
    copy_exact(reader, sink, probe_len, cfg.packet_size, cfg)?;
    Ok(probe_len)
}

fn reception_thread<R: Read>(
    reader: &mut R,
    total_raw: u64,
    queue: &PacketQueue,
    cfg: &AdocConfig,
) -> io::Result<()> {
    // Panic-safe end-of-stream for the decompression thread: every exit
    // (error, panic, success) closes the queue.
    let _close = queue.close_on_drop();
    let mut collected = 0u64;
    while collected < total_raw {
        let fh = FrameHeader::read(reader, adoc_codec::ADOC_MAX_LEVEL)?;
        if u64::from(fh.raw_len) + collected > total_raw {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frames exceed message length",
            ));
        }
        check_payload_bound(fh.raw_len, fh.payload_len, cfg)?;
        // Pooled payload buffer, filled through `Take` so the reserved
        // capacity is never zeroed first; it returns to the slab once
        // the decompression thread drops the packet.
        let payload = read_payload(reader, fh.payload_len, cfg)?;
        collected += u64::from(fh.raw_len);
        let len = payload.len();
        let pkt = Packet::view(Arc::new(payload), 0, len, fh.level, fh.raw_len);
        if queue.push(pkt).is_err() {
            // Decoder failed; its error wins.
            return Ok(());
        }
    }
    Ok(())
}

/// Sanity bound shared by both wire versions: a frame payload can exceed
/// its raw size only by small codec overhead; anything larger is
/// corruption.
fn check_payload_bound(raw_len: u32, payload_len: u32, cfg: &AdocConfig) -> io::Result<()> {
    if u64::from(payload_len) > 2 * u64::from(raw_len).max(cfg.buffer_size as u64) + 1024 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload too large",
        ));
    }
    Ok(())
}

/// Reads exactly `payload_len` bytes into a pooled buffer, acquiring
/// wire budget first — inbound pacing: a throttled reader drains the
/// socket at its share, and TCP backpressure slows the greedy sender.
fn read_payload<R: Read>(
    reader: &mut R,
    payload_len: u32,
    cfg: &AdocConfig,
) -> io::Result<PooledBuf> {
    cfg.throttle.acquire_wire(payload_len as usize);
    let mut payload = cfg.pool.get(payload_len as usize);
    match reader
        .by_ref()
        .take(u64::from(payload_len))
        .read_to_end(&mut payload)
    {
        Ok(n) if n == payload_len as usize => Ok(payload),
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "frame payload truncated",
        )),
        Err(e) => Err(e),
    }
}

fn decompression_thread<K: Write>(
    sink: &mut K,
    total_raw: u64,
    queue: &PacketQueue,
    cfg: &AdocConfig,
) -> io::Result<()> {
    // Panic-safe: any exit unblocks a reception thread waiting for queue
    // space (poisoning after the producer finished is a no-op).
    let _poison = queue.poison_on_drop();
    let mut produced = 0u64;
    // Decode scratch: pooled, reused across every frame of the message,
    // and decompress_at appends into it directly (no intermediate vector
    // inside the codec either).
    let mut scratch = cfg.pool.get(cfg.buffer_size);
    while let Some(pkt) = queue.pop() {
        let raw_len = pkt.raw_share as usize;
        scratch.clear();
        let t0 = Instant::now();
        if let Err(e) = adoc_codec::decompress_at(pkt.level, pkt.bytes(), raw_len, &mut scratch) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
        cfg.throttle.charge(t0.elapsed());
        sink.write_all(&scratch)?;
        produced += raw_len as u64;
    }
    if produced != total_raw {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("message truncated: {produced} of {total_raw} bytes"),
        ));
    }
    Ok(())
}

/// Why a [`ReorderBuffer::push`] was refused.
enum ReorderPushError {
    /// Some side of the pipeline already died; stop quietly, the root
    /// cause is reported elsewhere.
    Stopped,
    /// Two frames claimed the same sequence number (wire corruption).
    Duplicate,
}

/// One v2 frame parked in the reorder window.
struct RecvFrame {
    level: u8,
    raw_len: u32,
    payload: PooledBuf,
}

struct ReorderInner {
    frames: HashMap<u64, RecvFrame>,
    /// Next sequence number the consumer will deliver.
    next: u64,
    /// Streams that have delivered their FIN for this message.
    streams_done: usize,
    total_streams: usize,
    /// Input side died (socket error / corrupt header on some stream).
    aborted: bool,
    /// Consumer side died (decode or sink failure).
    failed: bool,
}

/// The shared reassembly window of a striped receive: reception threads
/// [`push`](ReorderBuffer::push) frames keyed by global sequence number,
/// the decompression thread [`pop_next`](ReorderBuffer::pop_next)s them
/// in order. Bounded: a push beyond the window blocks — **except** for
/// the frame the consumer is waiting on (`seq == next`), which is always
/// admitted so a full window can never deadlock the pipeline.
struct ReorderBuffer {
    inner: Mutex<ReorderInner>,
    can_push: Condvar,
    can_pop: Condvar,
    cap: usize,
}

impl ReorderBuffer {
    /// `start_seq` is the first global sequence number the window
    /// expects — 0 for a fresh message, the parked `next_seq` when
    /// resuming one; anything below it is a replay and is rejected as a
    /// duplicate.
    fn new(total_streams: usize, start_seq: u64) -> ReorderBuffer {
        ReorderBuffer {
            inner: Mutex::new(ReorderInner {
                frames: HashMap::new(),
                next: start_seq,
                streams_done: 0,
                total_streams,
                aborted: false,
                failed: false,
            }),
            can_push: Condvar::new(),
            can_pop: Condvar::new(),
            cap: (REORDER_FRAMES_PER_STREAM * total_streams).max(4),
        }
    }

    /// Parks `frame` under `seq`. Blocks while the window is full (unless
    /// this is the very frame the consumer needs). Fails once either side
    /// of the pipeline has died, or on a duplicate sequence number —
    /// the two cases are distinct because a duplicate is *corruption the
    /// pusher must report*, while a stopped pipeline already has a more
    /// authoritative error elsewhere.
    fn push(&self, seq: u64, frame: RecvFrame) -> Result<(), ReorderPushError> {
        let mut g = self.inner.lock();
        loop {
            if g.failed || g.aborted {
                return Err(ReorderPushError::Stopped);
            }
            if seq < g.next || g.frames.contains_key(&seq) {
                return Err(ReorderPushError::Duplicate);
            }
            if seq == g.next || g.frames.len() < self.cap {
                g.frames.insert(seq, frame);
                drop(g);
                self.can_pop.notify_all();
                return Ok(());
            }
            self.can_push.wait(&mut g);
        }
    }

    /// Marks one stream's FIN as seen; once every stream is done the
    /// consumer can observe end-of-message.
    fn stream_done(&self) {
        let mut g = self.inner.lock();
        g.streams_done += 1;
        drop(g);
        self.can_pop.notify_all();
    }

    /// Next frame in sequence order; `None` once every stream finished
    /// (or the pipeline died) and the frame is not coming.
    fn pop_next(&self) -> Option<RecvFrame> {
        let mut g = self.inner.lock();
        loop {
            if g.failed || g.aborted {
                return None;
            }
            let next = g.next;
            if let Some(f) = g.frames.remove(&next) {
                g.next += 1;
                drop(g);
                self.can_push.notify_all();
                return Some(f);
            }
            if g.streams_done == g.total_streams {
                return None;
            }
            self.can_pop.wait(&mut g);
        }
    }

    /// Input side signals death: wakes everyone; the consumer sees an
    /// early end and reports the byte shortfall.
    fn abort(&self) {
        let mut g = self.inner.lock();
        g.aborted = true;
        g.frames.clear();
        drop(g);
        self.can_push.notify_all();
        self.can_pop.notify_all();
    }

    /// Consumer signals death: wakes reception threads blocked in `push`.
    fn fail(&self) {
        let mut g = self.inner.lock();
        g.failed = true;
        g.frames.clear();
        drop(g);
        self.can_push.notify_all();
        self.can_pop.notify_all();
    }
}

/// Fires [`ReorderBuffer::abort`] on drop unless disarmed — the
/// reception-thread counterpart of the queue guards: an error or panic
/// must never strand the decompression thread waiting on a frame that
/// will never come.
struct AbortOnDrop<'a> {
    rb: &'a ReorderBuffer,
    armed: bool,
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.rb.abort();
        }
    }
}

/// Fires [`ReorderBuffer::fail`] on drop — held by the decompression
/// thread; a no-op for reception threads that already finished.
struct FailOnDrop<'a> {
    rb: &'a ReorderBuffer,
}

impl Drop for FailOnDrop<'_> {
    fn drop(&mut self) {
        self.rb.fail();
    }
}

fn receive_adaptive_striped<R, K>(
    readers: &mut [R],
    sink: &mut K,
    raw_len: u64,
    cfg: &AdocConfig,
    progress: &mut RecvProgress,
) -> io::Result<()>
where
    R: Read + Send,
    K: Write + Send,
{
    let probe_len = read_probe_prefix(&mut readers[0], sink, raw_len, cfg)?;
    progress.delivered_raw = probe_len;
    let remaining = raw_len - probe_len;
    if remaining == 0 {
        return Ok(());
    }
    striped_body(readers, sink, remaining, 0, cfg, progress)
}

/// The frame stage of a striped receive: per-stream reception threads
/// feed a reorder window drained in global-sequence order on the calling
/// thread. Shared by the fresh path (after the probe, `start_seq` 0) and
/// the resume path (no probe, `start_seq` = the parked cursor).
fn striped_body<R, K>(
    readers: &mut [R],
    sink: &mut K,
    remaining: u64,
    start_seq: u64,
    cfg: &AdocConfig,
    progress: &mut RecvProgress,
) -> io::Result<()>
where
    R: Read + Send,
    K: Write + Send,
{
    let n = readers.len();
    let reorder = ReorderBuffer::new(n, start_seq);
    let (recv_res, decomp_res) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (i, r) in readers.iter_mut().enumerate() {
            let rb = &reorder;
            handles.push(s.spawn(move || stream_reception_thread(i as u8, r, rb, cfg)));
        }
        // The decompression stage runs on the calling thread; panics are
        // contained so a dying codec/throttle/sink surfaces as io::Error
        // here exactly as it does on the single-stream path (the fail
        // guard has already released the reception threads by the time
        // the unwind is caught).
        let decomp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            striped_decompression(sink, remaining, &reorder, cfg, progress)
        }))
        .unwrap_or_else(|_| Err(io::Error::other("decompression stage panicked")));
        (
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>(),
            decomp,
        )
    });

    // A reception (socket) error is the root cause when present — the
    // consumer's "truncated" error is its downstream symptom. Decode and
    // sink failures surface from the consumer, whose reception threads
    // then end quietly.
    let mut recv_err: Option<io::Error> = None;
    for res in recv_res {
        match res.map_err(|_| io::Error::other("reception thread panicked")) {
            Ok(Ok(())) => {}
            Ok(Err(e)) | Err(e) => recv_err = recv_err.or(Some(e)),
        }
    }
    if let Some(e) = recv_err {
        return Err(e);
    }
    decomp_res
}

fn stream_reception_thread<R: Read>(
    stream_id: u8,
    reader: &mut R,
    reorder: &ReorderBuffer,
    cfg: &AdocConfig,
) -> io::Result<()> {
    let mut guard = AbortOnDrop {
        rb: reorder,
        armed: true,
    };
    let mut frames_seen = 0u64;
    loop {
        let fh = FrameHeaderV2::read(reader, adoc_codec::ADOC_MAX_LEVEL)?;
        if fh.stream != stream_id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame for stream {} arrived on stream {stream_id}",
                    fh.stream
                ),
            ));
        }
        if fh.is_fin() {
            if fh.seq != frames_seen {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "stream {stream_id} FIN declares {} frames, saw {frames_seen}",
                        fh.seq
                    ),
                ));
            }
            reorder.stream_done();
            guard.armed = false;
            return Ok(());
        }
        check_payload_bound(fh.raw_len, fh.payload_len, cfg)?;
        let payload = read_payload(reader, fh.payload_len, cfg)?;
        // Timestamped frame → the remote leg of the delay-signal loop:
        // departure is the sender's stamp, arrival is now. Both
        // estimators only consume deltas, so the two clocks never need
        // to agree on an epoch.
        if let (Some(ts), Some(hub)) = (fh.ts_us, cfg.signal_hub()) {
            hub.record_remote(ts, hub.now_us(), fh.payload_len as usize);
        }
        frames_seen += 1;
        let frame = RecvFrame {
            level: fh.level,
            raw_len: fh.raw_len,
            payload,
        };
        match reorder.push(fh.seq, frame) {
            Ok(()) => {}
            Err(ReorderPushError::Stopped) => {
                // The consumer (or a sibling stream) failed; that error
                // wins.
                guard.armed = false;
                return Ok(());
            }
            Err(ReorderPushError::Duplicate) => {
                // Corruption detected here: report it (the drop guard
                // aborts the pipeline for everyone else).
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("duplicate frame sequence {} on stream {stream_id}", fh.seq),
                ));
            }
        }
    }
}

fn striped_decompression<K: Write>(
    sink: &mut K,
    total_raw: u64,
    reorder: &ReorderBuffer,
    cfg: &AdocConfig,
    progress: &mut RecvProgress,
) -> io::Result<()> {
    let _fail = FailOnDrop { rb: reorder };
    let mut produced = 0u64;
    let mut scratch = cfg.pool.get(cfg.buffer_size);
    while let Some(frame) = reorder.pop_next() {
        if u64::from(frame.raw_len) + produced > total_raw {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frames exceed message length",
            ));
        }
        scratch.clear();
        let t0 = Instant::now();
        if let Err(e) = adoc_codec::decompress_at(
            frame.level,
            &frame.payload,
            frame.raw_len as usize,
            &mut scratch,
        ) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
        cfg.throttle.charge(t0.elapsed());
        sink.write_all(&scratch)?;
        produced += u64::from(frame.raw_len);
        progress.delivered_raw += u64::from(frame.raw_len);
        progress.next_seq += 1;
    }
    if produced != total_raw {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("message truncated: {produced} of {total_raw} bytes"),
        ));
    }
    Ok(())
}

fn copy_exact<R: Read, W: Write>(
    reader: &mut R,
    sink: &mut W,
    len: u64,
    chunk: usize,
    cfg: &AdocConfig,
) -> io::Result<()> {
    if len == 0 {
        return Ok(());
    }
    let size = chunk.max(1).min(len.try_into().unwrap_or(usize::MAX));
    let mut buf = cfg.pool.get(size);
    buf.resize(size, 0);
    let mut left = len;
    while left > 0 {
        let want = (buf.len() as u64).min(left) as usize;
        cfg.throttle.acquire_wire(want);
        reader.read_exact(&mut buf[..want])?;
        sink.write_all(&buf[..want])?;
        left -= want as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::{send_message, send_message_multi, send_message_multi_resumed};
    use std::io::Cursor;

    fn roundtrip_with(cfg_tx: &AdocConfig, cfg_rx: &AdocConfig, data: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        let mut src = data;
        send_message(&mut wire, &mut src, data.len() as u64, cfg_tx).unwrap();
        let mut c = Cursor::new(wire);
        let mut out = Vec::new();
        let got = receive_message(&mut c, &mut out, cfg_rx).unwrap();
        assert_eq!(got, Some(data.len() as u64));
        out
    }

    /// Striped send into captured per-stream byte vectors, then striped
    /// receive from cursors over them.
    fn roundtrip_striped(
        streams: usize,
        cfg_tx: &AdocConfig,
        cfg_rx: &AdocConfig,
        data: &[u8],
    ) -> Vec<u8> {
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); streams];
        let mut src = data;
        send_message_multi(&mut sinks, &mut src, data.len() as u64, cfg_tx).unwrap();
        let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
        let mut out = Vec::new();
        let got = receive_message_multi(&mut cursors, &mut out, cfg_rx).unwrap();
        assert_eq!(got, Some(data.len() as u64));
        out
    }

    fn compressible(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 99u64;
        while v.len() < n {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if !x.is_multiple_of(4) {
                v.extend_from_slice(b"some structured text content ");
            } else {
                v.extend_from_slice(&x.to_le_bytes());
            }
        }
        v.truncate(n);
        v
    }

    #[test]
    fn direct_roundtrip() {
        let cfg = AdocConfig::default();
        let data = compressible(10_000);
        assert_eq!(roundtrip_with(&cfg, &cfg, &data), data);
    }

    #[test]
    fn empty_message_roundtrip() {
        let cfg = AdocConfig::default();
        assert_eq!(roundtrip_with(&cfg, &cfg, b""), b"");
    }

    #[test]
    fn adaptive_fast_path_roundtrip() {
        // Vec sink probe → fast path → raw frames.
        let cfg = AdocConfig::default();
        let data = compressible(3 << 20);
        assert_eq!(roundtrip_with(&cfg, &cfg, &data), data);
    }

    #[test]
    fn forced_compression_roundtrip() {
        let tx = AdocConfig::default().with_levels(1, 10);
        let rx = AdocConfig::default();
        let data = compressible(2 << 20);
        assert_eq!(roundtrip_with(&tx, &rx, &data), data);
    }

    #[test]
    fn forced_single_level_roundtrips_each_level() {
        for level in 1..=10u8 {
            let tx = AdocConfig::default().with_levels(level, level);
            let rx = AdocConfig::default();
            let data = compressible(600_000);
            assert_eq!(roundtrip_with(&tx, &rx, &data), data, "level {level}");
        }
    }

    #[test]
    fn striped_roundtrips_across_stream_counts() {
        for streams in [2usize, 3, 4] {
            let tx = AdocConfig::default().with_levels(1, 10);
            let rx = AdocConfig::default();
            let data = compressible(2 << 20);
            assert_eq!(
                roundtrip_striped(streams, &tx, &rx, &data),
                data,
                "streams = {streams}"
            );
            assert_eq!(tx.pool.stats().outstanding, 0);
            assert_eq!(rx.pool.stats().outstanding, 0);
        }
    }

    #[test]
    fn striped_roundtrip_feeds_the_remote_estimator() {
        // With hubs installed on both ends, striped frames carry the
        // 0x40-flagged timestamp and the receiver's hub must come back
        // with a Remote snapshot; the sender's hub sees local emission
        // samples regardless.
        use crate::signals::{SignalHub, SignalSource};
        let tx_hub = std::sync::Arc::new(SignalHub::new());
        let rx_hub = std::sync::Arc::new(SignalHub::new());
        let tx = AdocConfig::default()
            .with_levels(1, 10)
            .with_signals(tx_hub.clone());
        let rx = AdocConfig::default().with_signals(rx_hub.clone());
        let data = compressible(2 << 20);
        assert_eq!(roundtrip_striped(3, &tx, &rx, &data), data);
        let snap = rx_hub
            .snapshot()
            .expect("timestamped frames must feed the receiver's estimator");
        assert_eq!(snap.source, SignalSource::Remote);
        assert!(tx_hub.snapshot().is_some(), "sender-side local samples");
    }

    #[test]
    fn signal_hub_on_tx_only_still_roundtrips() {
        // A timestamp-stamping sender against a hub-less receiver: the
        // flag bit must parse cleanly and the bytes must survive.
        use crate::signals::SignalHub;
        let tx = AdocConfig::default()
            .with_levels(1, 10)
            .with_signals(std::sync::Arc::new(SignalHub::new()));
        let rx = AdocConfig::default();
        let data = compressible(1 << 20);
        assert_eq!(roundtrip_striped(2, &tx, &rx, &data), data);
    }

    #[test]
    fn striped_fast_path_roundtrip() {
        // Vec sinks measure an instant probe → raw v2 frames on the
        // primary stream + FINs everywhere.
        let cfg = AdocConfig::default();
        let data = compressible(3 << 20);
        assert_eq!(roundtrip_striped(4, &cfg, &cfg, &data), data);
    }

    #[test]
    fn striped_empty_and_probe_only_messages() {
        let forced = AdocConfig::default().with_levels(1, 10);
        assert_eq!(roundtrip_striped(2, &forced, &forced, b""), b"");
        // Message fully covered by the probe: adaptive framing with zero
        // frames — no FINs are exchanged and no threads spawn.
        let cfg = AdocConfig {
            probe_threshold: 1024,
            probe_size: 1024,
            ..AdocConfig::default()
        };
        let data = compressible(1024);
        assert_eq!(roundtrip_striped(3, &cfg, &cfg, &data), data);
    }

    #[test]
    fn striped_stream_truncation_errors_without_hanging() {
        let tx = AdocConfig::default().with_levels(2, 10);
        let data = compressible(2 << 20);
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 3];
        let mut src = &data[..];
        send_message_multi(&mut sinks, &mut src, data.len() as u64, &tx).unwrap();
        // Cut one secondary stream mid-frame.
        let cut = sinks[1].len() / 2;
        sinks[1].truncate(cut);
        let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
        let mut out = Vec::new();
        let err =
            receive_message_multi(&mut cursors, &mut out, &AdocConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn striped_duplicate_sequence_detected() {
        // Corrupt a secondary stream by rewriting its first frame's
        // sequence number to collide with a later frame of the same
        // stream: the reorder buffer must reject the duplicate instead
        // of silently dropping or reordering data. (A 700 KB message
        // keeps the frame count below the reorder window, so the
        // duplicate is actually pushed rather than the pipeline stalling
        // on the missing renamed sequence — a stall that, on a real
        // socket, is indistinguishable from a slow peer.)
        let tx = AdocConfig::default().with_levels(3, 3);
        let data = compressible(700_000); // 4 frames: stream 1 carries 1, 3
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 2];
        let mut src = &data[..];
        send_message_multi(&mut sinks, &mut src, data.len() as u64, &tx).unwrap();
        // Stream 1's first frame header starts at byte 0 of sinks[1];
        // its seq field sits at bytes 2..10. Rewrite seq 1 → 3 so two
        // frames claim seq 3.
        sinks[1][2..10].copy_from_slice(&3u64.to_le_bytes());
        let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
        let mut out = Vec::new();
        let res = receive_message_multi(&mut cursors, &mut out, &AdocConfig::default());
        assert!(res.is_err(), "duplicate sequence must be rejected");
    }

    #[test]
    fn resumed_tail_roundtrips_at_any_width() {
        // A message interrupted at 123 456 delivered bytes / 7 frames is
        // continued on groups of width 1, 2 and 4 — the resumed width
        // need not match the original, and chunk boundaries of the
        // continuation are independent of the first attempt's.
        let data = compressible(2 << 20);
        let delivered = 123_456u64;
        let next_seq = 7u64;
        for streams in [1usize, 2, 4] {
            let tx = AdocConfig::default().with_levels(1, 10);
            let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); streams];
            let mut src = &data[delivered as usize..];
            send_message_multi_resumed(
                &mut sinks,
                &mut src,
                data.len() as u64 - delivered,
                next_seq,
                &tx,
            )
            .unwrap();
            let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
            let mut out = data[..delivered as usize].to_vec();
            let mut progress = RecvProgress::default();
            let n = receive_message_multi_resumed(
                &mut cursors,
                &mut out,
                data.len() as u64,
                delivered,
                next_seq,
                &AdocConfig::default(),
                &mut progress,
            )
            .unwrap();
            assert_eq!(n, data.len() as u64, "streams = {streams}");
            assert_eq!(out, data, "streams = {streams}");
            assert!(!progress.active, "completed resume clears the partial");
            assert_eq!(progress.delivered_raw, data.len() as u64);
            assert_eq!(tx.pool.stats().outstanding, 0);
        }
    }

    #[test]
    fn resumed_with_nothing_left_exchanges_only_fins() {
        // The kill landed after the last data frame: the continuation is
        // pure FINs, which the receiver must still consume so the next
        // message parses cleanly.
        let tx = AdocConfig::default();
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 2];
        let mut src: &[u8] = b"";
        send_message_multi_resumed(&mut sinks, &mut src, 0, 5, &tx).unwrap();
        for s in &sinks {
            assert_eq!(s.len(), wire::FRAME_HEADER_V2_LEN, "FIN only");
        }
        let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
        let mut out = Vec::new();
        let mut progress = RecvProgress::default();
        let n = receive_message_multi_resumed(
            &mut cursors,
            &mut out,
            100,
            100,
            5,
            &AdocConfig::default(),
            &mut progress,
        )
        .unwrap();
        assert_eq!(n, 100);
        assert!(out.is_empty());
    }

    #[test]
    fn replayed_sequences_on_resume_are_rejected() {
        // A peer that replays the message from seq 0 although the
        // receiver already delivered 4 frames: every replayed frame sits
        // below the reorder window's start and must be refused as a
        // duplicate rather than re-delivered.
        let data = compressible(1 << 20);
        let tx = AdocConfig::default().with_levels(1, 10);
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 2];
        let mut src = &data[..];
        send_message_multi_resumed(&mut sinks, &mut src, data.len() as u64, 0, &tx).unwrap();
        let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
        let mut out = Vec::new();
        let mut progress = RecvProgress::default();
        let err = receive_message_multi_resumed(
            &mut cursors,
            &mut out,
            2 * data.len() as u64,
            data.len() as u64,
            4,
            &AdocConfig::default(),
            &mut progress,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn resume_point_beyond_message_is_invalid() {
        let mut cursors: Vec<Cursor<Vec<u8>>> = vec![Cursor::new(Vec::new())];
        let mut out = Vec::new();
        let mut progress = RecvProgress::default();
        let err = receive_message_multi_resumed(
            &mut cursors,
            &mut out,
            10,
            11,
            0,
            &AdocConfig::default(),
            &mut progress,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn clean_eof_returns_none() {
        let cfg = AdocConfig::default();
        let mut c = Cursor::new(Vec::<u8>::new());
        let mut out = Vec::new();
        assert!(receive_message(&mut c, &mut out, &cfg).unwrap().is_none());
        // Same through the striped entry point.
        let mut cursors = vec![Cursor::new(Vec::<u8>::new()), Cursor::new(Vec::<u8>::new())];
        assert!(receive_message_multi(&mut cursors, &mut out, &cfg)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_adaptive_stream_errors() {
        let tx = AdocConfig::default().with_levels(1, 10);
        let data = compressible(1 << 20);
        let mut wire = Vec::new();
        let mut src = &data[..];
        send_message(&mut wire, &mut src, data.len() as u64, &tx).unwrap();
        for frac in [wire.len() / 4, wire.len() / 2, wire.len() - 3] {
            let mut c = Cursor::new(wire[..frac].to_vec());
            let mut out = Vec::new();
            assert!(
                receive_message(&mut c, &mut out, &AdocConfig::default()).is_err(),
                "cut at {frac} did not error"
            );
        }
    }

    #[test]
    fn oversized_message_header_rejected() {
        let cfg = AdocConfig {
            max_message: 1000,
            ..AdocConfig::default()
        };
        let hdr = wire::encode_msg_header(MsgKind::Direct, 10_000);
        let mut c = Cursor::new(hdr.to_vec());
        let mut out = Vec::new();
        assert!(receive_message(&mut c, &mut out, &cfg).is_err());
        let mut cursors = vec![Cursor::new(hdr.to_vec()), Cursor::new(Vec::new())];
        assert!(receive_message_multi(&mut cursors, &mut out, &cfg).is_err());
    }

    #[test]
    fn corrupted_frame_payload_detected() {
        let tx = AdocConfig::default().with_levels(5, 5);
        let data = compressible(700_000);
        let mut wire = Vec::new();
        let mut src = &data[..];
        send_message(&mut wire, &mut src, data.len() as u64, &tx).unwrap();
        // Flip a byte inside the first frame payload (after headers).
        let idx = wire::MSG_HEADER_LEN + 4 + wire::FRAME_HEADER_LEN + 100;
        wire[idx] ^= 0xFF;
        let mut c = Cursor::new(wire);
        let mut out = Vec::new();
        let res = receive_message(&mut c, &mut out, &AdocConfig::default());
        assert!(
            res.is_err(),
            "corruption must be detected by decode or length checks"
        );
    }

    #[test]
    fn sink_failure_propagates() {
        struct TinySink(usize);
        impl Write for TinySink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let tx = AdocConfig::default().with_levels(1, 10);
        let data = compressible(2 << 20);
        let mut wire = Vec::new();
        let mut src = &data[..];
        send_message(&mut wire, &mut src, data.len() as u64, &tx).unwrap();
        let mut c = Cursor::new(wire);
        let mut sink = TinySink(100_000);
        let err = receive_message(&mut c, &mut sink, &AdocConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);

        // Same failure through the striped path.
        let mut sinks: Vec<Vec<u8>> = vec![Vec::new(); 3];
        let mut src = &data[..];
        send_message_multi(&mut sinks, &mut src, data.len() as u64, &tx).unwrap();
        let mut cursors: Vec<Cursor<Vec<u8>>> = sinks.into_iter().map(Cursor::new).collect();
        let mut sink = TinySink(100_000);
        let err =
            receive_message_multi(&mut cursors, &mut sink, &AdocConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }
}
