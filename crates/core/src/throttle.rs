//! CPU-speed models: the hook the simulation substrate uses to emulate
//! slower hosts (the paper's Tennessee machine, and the slow-receiver
//! divergence scenario of §5).

use std::time::Duration;

/// Charged once per unit of (de)compression work with the wall time the
/// work actually took; implementations may stretch it.
pub trait Throttle: Send + Sync {
    /// Called after a compression/decompression step that took `elapsed`.
    fn charge(&self, elapsed: Duration);
}

/// Full-speed host: no extra cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoThrottle;

impl Throttle for NoThrottle {
    fn charge(&self, _elapsed: Duration) {}
}

/// A host `factor`× slower than this machine: each unit of codec work is
/// stretched by sleeping the difference.
#[derive(Debug, Clone, Copy)]
pub struct SleepThrottle {
    factor: f64,
}

impl SleepThrottle {
    /// `factor` must be ≥ 1 (1.0 = no slowdown).
    pub fn new(factor: f64) -> Self {
        assert!(factor >= 1.0, "throttle factor must be >= 1");
        SleepThrottle { factor }
    }
}

impl Throttle for SleepThrottle {
    fn charge(&self, elapsed: Duration) {
        let extra = elapsed.mul_f64(self.factor - 1.0);
        if !extra.is_zero() {
            std::thread::sleep(extra);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn no_throttle_is_free() {
        let start = Instant::now();
        NoThrottle.charge(Duration::from_millis(50));
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn sleep_throttle_stretches_work() {
        let t = SleepThrottle::new(3.0);
        let start = Instant::now();
        t.charge(Duration::from_millis(10));
        // factor 3 ⇒ 20 ms extra.
        let e = start.elapsed();
        assert!(e >= Duration::from_millis(18), "{e:?}");
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn rejects_speedup_factors() {
        SleepThrottle::new(0.5);
    }
}
