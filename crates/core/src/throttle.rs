//! Resource-pacing hooks for a connection: CPU-speed models (the
//! simulation substrate's way to emulate slower hosts — the paper's
//! Tennessee machine, and the slow-receiver divergence scenario of §5)
//! and, since the server daemon landed, wire-bandwidth admission (the
//! seam a fair-share scheduler plugs into).

use std::time::Duration;

/// Per-connection resource pacing.
///
/// Two independent hooks share this trait because a connection carries
/// exactly one throttle ([`crate::AdocConfig::throttle`]):
///
/// * [`Throttle::charge`] — CPU model: called after each unit of
///   (de)compression work with the wall time it took; implementations
///   may stretch it by sleeping.
/// * [`Throttle::acquire_wire`] — bandwidth admission: called *before*
///   wire bytes are written (sender emission, direct copies, probes,
///   fast-path frames) and before frame payloads are read off the
///   socket on the receive side. Implementations may block until a
///   bandwidth budget admits the bytes; the default admits instantly.
///
/// Blocking in `acquire_wire` is deliberately visible to the adaptation
/// loop: the emission thread times its writes *around* the admission
/// call, so a scheduler-constrained connection observes a lower visible
/// bandwidth and adapts its compression level to its *share*, exactly as
/// it would to a congested link.
pub trait Throttle: Send + Sync {
    /// Called after a compression/decompression step that took `elapsed`.
    fn charge(&self, elapsed: Duration);

    /// Called before `bytes` of wire traffic move on this connection;
    /// may block to enforce a bandwidth budget. Default: no limit.
    fn acquire_wire(&self, bytes: usize) {
        let _ = bytes;
    }

    /// Nonblocking form of [`Throttle::acquire_wire`] for event-driven
    /// transports (the server's reactor): either the bytes are admitted
    /// now (`Ok`), or the caller gets a hint of how long until the
    /// budget could plausibly admit them (`Err(retry_after)`) and must
    /// **park** the connection instead of spinning. A parked caller may
    /// also be woken early through an out-of-band signal (the
    /// scheduler's parked-waker); the hint is a ceiling, not a schedule.
    /// Default: always admits, matching the blocking default.
    fn try_acquire_wire(&self, bytes: usize) -> Result<(), Duration> {
        let _ = bytes;
        Ok(())
    }

    /// Advisory relative scheduling weight of this connection's wire
    /// traffic — the hint a policy layer (e.g. a weighted fair
    /// scheduler sitting on [`Throttle::acquire_wire`]) exposes back
    /// through the seam so transports and diagnostics can see how the
    /// connection ranks without knowing the scheduler. `1.0` means
    /// "ordinary bulk traffic"; larger values mean proportionally
    /// larger shares under contention. Purely observational for the
    /// transport: it must not change wire behavior based on it.
    fn wire_weight(&self) -> f64 {
        1.0
    }
}

/// Full-speed host: no extra cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoThrottle;

impl Throttle for NoThrottle {
    fn charge(&self, _elapsed: Duration) {}
}

/// A host `factor`× slower than this machine: each unit of codec work is
/// stretched by sleeping the difference.
#[derive(Debug, Clone, Copy)]
pub struct SleepThrottle {
    factor: f64,
}

impl SleepThrottle {
    /// `factor` must be ≥ 1 (1.0 = no slowdown).
    pub fn new(factor: f64) -> Self {
        assert!(factor >= 1.0, "throttle factor must be >= 1");
        SleepThrottle { factor }
    }
}

impl Throttle for SleepThrottle {
    fn charge(&self, elapsed: Duration) {
        let extra = elapsed.mul_f64(self.factor - 1.0);
        if !extra.is_zero() {
            std::thread::sleep(extra);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn no_throttle_is_free() {
        let start = Instant::now();
        NoThrottle.charge(Duration::from_millis(50));
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn sleep_throttle_stretches_work() {
        let t = SleepThrottle::new(3.0);
        let start = Instant::now();
        t.charge(Duration::from_millis(10));
        // factor 3 ⇒ 20 ms extra.
        let e = start.elapsed();
        assert!(e >= Duration::from_millis(18), "{e:?}");
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn rejects_speedup_factors() {
        SleepThrottle::new(0.5);
    }

    #[test]
    fn default_acquire_wire_admits_instantly() {
        let start = Instant::now();
        NoThrottle.acquire_wire(100 << 20);
        SleepThrottle::new(8.0).acquire_wire(100 << 20);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn wire_weight_defaults_to_bulk_and_is_overridable() {
        struct Heavy;
        impl Throttle for Heavy {
            fn charge(&self, _e: Duration) {}
            fn wire_weight(&self) -> f64 {
                4.0
            }
        }
        assert_eq!(NoThrottle.wire_weight(), 1.0);
        assert_eq!(SleepThrottle::new(2.0).wire_weight(), 1.0);
        let t: &dyn Throttle = &Heavy;
        assert_eq!(t.wire_weight(), 4.0);
    }

    #[test]
    fn acquire_wire_is_overridable_per_connection() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Recorder {
            bytes: AtomicUsize,
        }
        impl Throttle for Recorder {
            fn charge(&self, _elapsed: Duration) {}
            fn acquire_wire(&self, bytes: usize) {
                self.bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        let r = Recorder::default();
        let t: &dyn Throttle = &r;
        t.acquire_wire(4096);
        t.acquire_wire(100);
        assert_eq!(r.bytes.load(Ordering::Relaxed), 4196);
    }
}
