//! Per-level visible-bandwidth accounting (paper §5, "Compression level
//! divergence"): the emission thread records, for every packet it puts on
//! the wire, how many *raw* (pre-compression) bytes that packet
//! represented and how long the write took. The compression thread
//! consults these rates when updating the level.
//!
//! The monitor sits on the per-packet hot path, so it avoids locks
//! entirely: each level owns a cache-line-padded seqlock cell the single
//! writer (the emission thread) updates wait-free, and readers (the
//! compression thread's level updates) retry the rare torn read. The old
//! design took a `Mutex` per packet — contended between exactly the two
//! threads whose overlap is the whole point of the paper.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Number of tracked levels (AdOC 0..=10).
const LEVELS: usize = 11;

/// A decaying byte-rate accumulator: old samples fade so the monitor
/// tracks *current* conditions (grids change over time, §2).
#[derive(Debug, Clone, Copy, Default)]
struct DecayingRate {
    bytes: f64,
    secs: f64,
}

impl DecayingRate {
    fn add(&mut self, bytes: u64, secs: f64) {
        self.bytes += bytes as f64;
        self.secs += secs;
        // Halve history once the window exceeds ~2 s of send time, so the
        // estimate follows the network on the paper's 1-second guard
        // timescale.
        if self.secs > 2.0 {
            self.bytes /= 2.0;
            self.secs /= 2.0;
        }
    }

    fn rate(&self) -> Option<f64> {
        // Require a minimum of observation before trusting the estimate.
        if self.secs < 1e-4 || self.bytes <= 0.0 {
            None
        } else {
            Some(self.bytes * 8.0 / self.secs) // bits of raw data per sec
        }
    }
}

/// One level's rate, published through a seqlock: `seq` is odd while a
/// write is in flight, and bumped to the next even value after. Padded to
/// its own cache line so recording at one level never false-shares with
/// reads of another.
#[repr(align(64))]
#[derive(Debug, Default)]
struct RateCell {
    seq: AtomicU32,
    bytes_bits: AtomicU64,
    secs_bits: AtomicU64,
}

impl RateCell {
    /// Single-writer update (the emission thread). Wait-free.
    fn write(&self, rate: DecayingRate) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Release);
        self.bytes_bits
            .store(rate.bytes.to_bits(), Ordering::Release);
        self.secs_bits.store(rate.secs.to_bits(), Ordering::Release);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Consistent snapshot; retries while a write is in flight.
    fn read(&self) -> DecayingRate {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            let bytes = f64::from_bits(self.bytes_bits.load(Ordering::Acquire));
            let secs = f64::from_bits(self.secs_bits.load(Ordering::Acquire));
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 == s2 && s1.is_multiple_of(2) {
                return DecayingRate { bytes, secs };
            }
            std::hint::spin_loop();
        }
    }
}

/// Shared monitor: one decaying rate per compression level, plus a raw-
/// byte total that must reconcile with
/// [`crate::stats::TransferStats::raw_bytes`] for adaptive traffic.
#[derive(Debug, Default)]
pub struct BandwidthMonitor {
    cells: [RateCell; LEVELS],
    total_raw: AtomicU64,
}

impl BandwidthMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet send: `raw_bytes` of pre-compression payload left
    /// the host in `elapsed`. Intended for a single writer (the emission
    /// thread); concurrent writers never corrupt memory but may overwrite
    /// each other's samples.
    pub fn record(&self, level: u8, raw_bytes: u64, elapsed: Duration) {
        let cell = &self.cells[level as usize];
        let mut rate = cell.read();
        rate.add(raw_bytes, elapsed.as_secs_f64());
        cell.write(rate);
        self.total_raw.fetch_add(raw_bytes, Ordering::Relaxed);
    }

    /// Visible bandwidth at `level` in raw bits/s, if observed recently.
    pub fn visible(&self, level: u8) -> Option<f64> {
        self.cells[level as usize].read().rate()
    }

    /// The level `< limit` with the highest recorded visible bandwidth,
    /// if any level below `limit` has been observed.
    pub fn best_below(&self, limit: u8) -> Option<(u8, f64)> {
        (0..limit)
            .filter_map(|l| self.cells[l as usize].read().rate().map(|r| (l, r)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Sum of every `raw_bytes` ever recorded: the exact amount of
    /// application data whose emission this monitor observed.
    pub fn total_raw_bytes(&self) -> u64 {
        self.total_raw.load(Ordering::Relaxed)
    }

    /// Aggregate visible bandwidth at `level` across a stream group's
    /// per-stream monitors: parallel streams move raw data concurrently,
    /// so group throughput is the *sum* of the per-stream rates that have
    /// been observed.
    pub fn aggregate_visible(monitors: &[BandwidthMonitor], level: u8) -> Option<f64> {
        let rates: Vec<f64> = monitors.iter().filter_map(|m| m.visible(level)).collect();
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum())
        }
    }

    /// Raw bytes observed by every monitor of a stream group combined.
    pub fn aggregate_total_raw_bytes(monitors: &[BandwidthMonitor]) -> u64 {
        monitors.iter().map(|m| m.total_raw_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_monitor_reports_nothing() {
        let m = BandwidthMonitor::new();
        for l in 0..=10 {
            assert!(m.visible(l).is_none());
        }
        assert!(m.best_below(10).is_none());
        assert_eq!(m.total_raw_bytes(), 0);
    }

    #[test]
    fn records_and_reports_rates() {
        let m = BandwidthMonitor::new();
        // 1 MB of raw data in 0.1 s = 80 Mbit/s visible.
        m.record(3, 1_000_000, Duration::from_millis(100));
        let r = m.visible(3).unwrap();
        assert!((r - 80e6).abs() / 80e6 < 1e-6, "{r}");
        assert!(m.visible(2).is_none());
        assert_eq!(m.total_raw_bytes(), 1_000_000);
    }

    #[test]
    fn best_below_finds_maximum() {
        let m = BandwidthMonitor::new();
        m.record(0, 500_000, Duration::from_millis(100)); // 40 Mbit
        m.record(2, 1_500_000, Duration::from_millis(100)); // 120 Mbit
        m.record(5, 1_000_000, Duration::from_millis(100)); // 80 Mbit
        let (lvl, rate) = m.best_below(5).unwrap();
        assert_eq!(lvl, 2);
        assert!((rate - 120e6).abs() / 120e6 < 1e-6);
        // Levels at/above the limit are excluded.
        assert_eq!(m.best_below(3).unwrap().0, 2);
        assert_eq!(m.best_below(1).unwrap().0, 0);
    }

    #[test]
    fn history_decays() {
        let m = BandwidthMonitor::new();
        // Long slow history…
        for _ in 0..30 {
            m.record(1, 100_000, Duration::from_millis(100));
        }
        let slow = m.visible(1).unwrap();
        // …then a burst of fast samples dominates after decay.
        for _ in 0..30 {
            m.record(1, 10_000_000, Duration::from_millis(100));
        }
        let fast = m.visible(1).unwrap();
        assert!(fast > slow * 5.0, "slow {slow:.0}, fast {fast:.0}");
    }

    #[test]
    fn tiny_samples_not_trusted() {
        let m = BandwidthMonitor::new();
        m.record(4, 10, Duration::from_nanos(10));
        assert!(m.visible(4).is_none());
    }

    #[test]
    fn aggregate_sums_across_stream_monitors() {
        let a = BandwidthMonitor::new();
        let b = BandwidthMonitor::new();
        let c = BandwidthMonitor::new();
        a.record(3, 1_000_000, Duration::from_millis(100)); // 80 Mbit
        b.record(3, 500_000, Duration::from_millis(100)); // 40 Mbit
        let group = [a, b, c];
        let agg = BandwidthMonitor::aggregate_visible(&group, 3).unwrap();
        assert!((agg - 120e6).abs() / 120e6 < 1e-6, "{agg}");
        assert!(BandwidthMonitor::aggregate_visible(&group, 5).is_none());
        assert_eq!(
            BandwidthMonitor::aggregate_total_raw_bytes(&group),
            1_500_000
        );
    }

    #[test]
    fn total_accumulates_across_levels() {
        let m = BandwidthMonitor::new();
        m.record(0, 100, Duration::from_millis(1));
        m.record(7, 200, Duration::from_millis(1));
        m.record(10, 300, Duration::from_millis(1));
        assert_eq!(m.total_raw_bytes(), 600);
    }

    #[test]
    fn concurrent_reads_never_tear() {
        // A writer hammers one level while readers assert that every
        // observed snapshot is internally consistent (a torn read would
        // produce a wild rate).
        let m = std::sync::Arc::new(BandwidthMonitor::new());
        let w = {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    m.record(5, 8_192, Duration::from_micros(100));
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    let expect = 8_192.0 * 8.0 / 1e-4; // every sample's rate
                    for _ in 0..20_000 {
                        if let Some(r) = m.visible(5) {
                            let rel = (r - expect).abs() / expect;
                            assert!(rel < 1e-6, "torn rate {r}");
                        }
                    }
                })
            })
            .collect();
        w.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(m.total_raw_bytes(), 50_000 * 8_192);
    }
}
