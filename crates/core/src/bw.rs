//! Per-level visible-bandwidth accounting (paper §5, "Compression level
//! divergence"): the emission thread records, for every packet it puts on
//! the wire, how many *raw* (pre-compression) bytes that packet
//! represented and how long the write took. The compression thread
//! consults these rates when updating the level.

use parking_lot::Mutex;
use std::time::Duration;

/// Number of tracked levels (AdOC 0..=10).
const LEVELS: usize = 11;

/// A decaying byte-rate accumulator: old samples fade so the monitor
/// tracks *current* conditions (grids change over time, §2).
#[derive(Debug, Clone, Copy, Default)]
struct DecayingRate {
    bytes: f64,
    secs: f64,
}

impl DecayingRate {
    fn add(&mut self, bytes: u64, secs: f64) {
        self.bytes += bytes as f64;
        self.secs += secs;
        // Halve history once the window exceeds ~2 s of send time, so the
        // estimate follows the network on the paper's 1-second guard
        // timescale.
        if self.secs > 2.0 {
            self.bytes /= 2.0;
            self.secs /= 2.0;
        }
    }

    fn rate(&self) -> Option<f64> {
        // Require a minimum of observation before trusting the estimate.
        if self.secs < 1e-4 || self.bytes <= 0.0 {
            None
        } else {
            Some(self.bytes * 8.0 / self.secs) // bits of raw data per sec
        }
    }
}

/// Shared monitor: one decaying rate per compression level.
#[derive(Debug, Default)]
pub struct BandwidthMonitor {
    rates: Mutex<[DecayingRate; LEVELS]>,
}

impl BandwidthMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet send: `raw_bytes` of pre-compression payload left
    /// the host in `elapsed`.
    pub fn record(&self, level: u8, raw_bytes: u64, elapsed: Duration) {
        let mut g = self.rates.lock();
        g[level as usize].add(raw_bytes, elapsed.as_secs_f64());
    }

    /// Visible bandwidth at `level` in raw bits/s, if observed recently.
    pub fn visible(&self, level: u8) -> Option<f64> {
        self.rates.lock()[level as usize].rate()
    }

    /// The level `< limit` with the highest recorded visible bandwidth,
    /// if any level below `limit` has been observed.
    pub fn best_below(&self, limit: u8) -> Option<(u8, f64)> {
        let g = self.rates.lock();
        (0..limit)
            .filter_map(|l| g[l as usize].rate().map(|r| (l, r)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_monitor_reports_nothing() {
        let m = BandwidthMonitor::new();
        for l in 0..=10 {
            assert!(m.visible(l).is_none());
        }
        assert!(m.best_below(10).is_none());
    }

    #[test]
    fn records_and_reports_rates() {
        let m = BandwidthMonitor::new();
        // 1 MB of raw data in 0.1 s = 80 Mbit/s visible.
        m.record(3, 1_000_000, Duration::from_millis(100));
        let r = m.visible(3).unwrap();
        assert!((r - 80e6).abs() / 80e6 < 1e-6, "{r}");
        assert!(m.visible(2).is_none());
    }

    #[test]
    fn best_below_finds_maximum() {
        let m = BandwidthMonitor::new();
        m.record(0, 500_000, Duration::from_millis(100)); // 40 Mbit
        m.record(2, 1_500_000, Duration::from_millis(100)); // 120 Mbit
        m.record(5, 1_000_000, Duration::from_millis(100)); // 80 Mbit
        let (lvl, rate) = m.best_below(5).unwrap();
        assert_eq!(lvl, 2);
        assert!((rate - 120e6).abs() / 120e6 < 1e-6);
        // Levels at/above the limit are excluded.
        assert_eq!(m.best_below(3).unwrap().0, 2);
        assert_eq!(m.best_below(1).unwrap().0, 0);
    }

    #[test]
    fn history_decays() {
        let m = BandwidthMonitor::new();
        // Long slow history…
        for _ in 0..30 {
            m.record(1, 100_000, Duration::from_millis(100));
        }
        let slow = m.visible(1).unwrap();
        // …then a burst of fast samples dominates after decay.
        for _ in 0..30 {
            m.record(1, 10_000_000, Duration::from_millis(100));
        }
        let fast = m.visible(1).unwrap();
        assert!(fast > slow * 5.0, "slow {slow:.0}, fast {fast:.0}");
    }

    #[test]
    fn tiny_samples_not_trusted() {
        let m = BandwidthMonitor::new();
        m.record(4, 10, Duration::from_nanos(10));
        assert!(m.visible(4).is_none());
    }
}
