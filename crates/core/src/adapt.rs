//! The compression-level update algorithm — Figure 2 of the paper,
//! verbatim — plus the two §5 guards layered on top:
//!
//! * the **divergence guard**: if the current level's visible bandwidth is
//!   beaten by a smaller level, fall back and forbid the level for 1 s;
//! * the **incompressible-data guard**: after a buffer compresses below
//!   the ratio threshold, pin the level to minimum for the next 10
//!   packets.

use crate::bw::BandwidthMonitor;
use crate::config::AdocConfig;
use std::time::Instant;

/// Figure 2, line for line. `n` is the queue length in packets, `delta`
/// its change since the previous update, `l` the old level.
// The paper's algorithm takes exactly these eight inputs; bundling them
// into a struct would obscure the line-for-line correspondence.
#[allow(clippy::too_many_arguments)]
pub fn update_level(
    n: usize,
    delta: isize,
    l: u8,
    min: u8,
    max: u8,
    low: usize,
    mid: usize,
    high: usize,
) -> u8 {
    // 1-2: an empty queue means the network is starving — stop compressing.
    if n == 0 {
        return min;
    }
    let mut l = i32::from(l);
    if n < low {
        // 3-5: small queue: the level may only fall (halve on shrink).
        if delta <= 0 {
            l /= 2;
        }
    } else if n < mid {
        // 6-10: moderate queue: follow the trend by ±1.
        if delta > 0 {
            l += 1;
        } else if delta < 0 {
            l -= 1;
        }
    } else if n < high {
        // 11-15: large queue: climb faster than we descend.
        if delta > 0 {
            l += 2;
        } else if delta < 0 {
            l -= 1;
        }
    } else {
        // 16-17: very large queue: plenty of time to compress.
        if delta > 0 {
            l += 2;
        }
    }
    // 18-19: clamp.
    l.clamp(i32::from(min), i32::from(max)) as u8
}

/// Stateful controller driving one adaptive transfer: tracks the previous
/// queue length, forbidden levels and the ratio penalty.
pub struct LevelController {
    level: u8,
    last_len: Option<usize>,
    /// Until when each level is forbidden by the divergence guard.
    forbidden_until: [Option<Instant>; 11],
    /// Wire packets remaining at the minimum level after a ratio-guard
    /// trip (§5: the next 10 *packets*, not buffers).
    penalty_packets: u32,
    /// True only while the *current* buffer's level was pinned by the
    /// penalty: [`Self::packets_pushed`] drains the window only then, so
    /// the packets of the buffer that tripped the guard (pushed after
    /// `report_ratio` but chosen before it) never consume the penalty
    /// they just started.
    penalty_draining: bool,
    /// After a trip, buffers are pre-checked cheaply (paper: the per-
    /// packet ratio check aborts compression early) until one passes.
    suspicious: bool,
    /// Counters surfaced through [`crate::stats::TransferStats`].
    pub divergence_reverts: u64,
    /// Number of ratio-guard trips.
    pub ratio_trips: u64,
}

impl LevelController {
    /// Starts at the minimum level (a fresh transfer has an empty queue).
    pub fn new(cfg: &AdocConfig) -> Self {
        LevelController {
            level: cfg.min_level,
            last_len: None,
            forbidden_until: [None; 11],
            penalty_packets: 0,
            penalty_draining: false,
            suspicious: false,
            divergence_reverts: 0,
            ratio_trips: 0,
        }
    }

    /// Current level without updating.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Computes the level for the next buffer given the current queue
    /// length and the visible-bandwidth monitor.
    pub fn next_level(&mut self, queue_len: usize, bw: &BandwidthMonitor, cfg: &AdocConfig) -> u8 {
        let now = Instant::now();

        // Incompressible-data penalty takes precedence (§5): minimum level
        // until the penalty packets have been sent. `last_len` is cleared
        // (not updated) for the window's duration: queue lengths observed
        // while pinned reflect raw-speed emission, and comparing the
        // first post-penalty length against them would fabricate a large
        // delta that yanks the level around. The first free buffer
        // restarts with delta = 0 instead.
        if self.penalty_packets > 0 {
            self.last_len = None;
            self.penalty_draining = true;
            self.level = cfg.min_level;
            return self.level;
        }
        self.penalty_draining = false;

        let delta = match self.last_len {
            Some(prev) => queue_len as isize - prev as isize,
            None => 0,
        };
        self.last_len = Some(queue_len);

        let mut cand = update_level(
            queue_len,
            delta,
            self.level,
            cfg.min_level,
            cfg.max_level,
            cfg.low_water,
            cfg.mid_water,
            cfg.high_water,
        );

        // Divergence guard: if a smaller level demonstrably moves raw data
        // faster than the candidate, fall back to it and forbid the
        // candidate for a while.
        if cand > cfg.min_level {
            if let Some(cur_bw) = bw.visible(cand) {
                if let Some((best_level, best_bw)) = bw.best_below(cand) {
                    if best_bw > cur_bw * cfg.divergence_margin {
                        self.forbidden_until[cand as usize] = Some(now + cfg.forbid_duration);
                        self.divergence_reverts += 1;
                        cand = best_level.max(cfg.min_level);
                    }
                }
            }
        }

        // Skip levels still under a forbid (fall to the next lower one).
        while cand > cfg.min_level {
            match self.forbidden_until[cand as usize] {
                Some(t) if t > now => cand -= 1,
                _ => break,
            }
        }

        self.level = cand;
        cand
    }

    /// Reports the compression outcome of a buffer: `ratio` = raw/encoded.
    /// Trips the penalty when it falls below the guard threshold.
    pub fn report_ratio(&mut self, ratio: f64, cfg: &AdocConfig) {
        if cfg.ratio_guard == 0.0 {
            return; // guard disabled
        }
        if ratio < cfg.ratio_guard {
            if self.level > cfg.min_level {
                self.penalty_packets = cfg.ratio_penalty_packets;
                // The buffer that tripped was chosen *before* the trip;
                // its packets must not drain the window it just opened.
                self.penalty_draining = false;
                self.ratio_trips += 1;
            }
            self.suspicious = true;
        } else {
            self.suspicious = false;
        }
    }

    /// True while the data recently failed the ratio guard: the sender
    /// pre-checks a small prefix before paying for a full-buffer
    /// compression (the paper's early abort on bad packets).
    pub fn is_suspicious(&self) -> bool {
        self.suspicious
    }

    /// Notes that `n` wire packets were pushed for the current buffer.
    /// Drains the penalty window only when that buffer was itself pinned
    /// by the penalty (§5 counts the 10 packets that *follow* the trip).
    pub fn packets_pushed(&mut self, n: u32) {
        if self.penalty_draining {
            self.penalty_packets = self.penalty_packets.saturating_sub(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2(n: usize, delta: isize, l: u8) -> u8 {
        update_level(n, delta, l, 0, 10, 10, 20, 30)
    }

    #[test]
    fn empty_queue_resets_to_min() {
        assert_eq!(fig2(0, 5, 9), 0);
        assert_eq!(update_level(0, 0, 9, 2, 10, 10, 20, 30), 2);
    }

    #[test]
    fn small_queue_halves_on_non_growth() {
        assert_eq!(fig2(5, 0, 8), 4);
        assert_eq!(fig2(9, -3, 9), 4); // 9/2 = 4 integer division
        assert_eq!(fig2(5, 2, 8), 8); // growing: hold
    }

    #[test]
    fn moderate_queue_steps_by_one() {
        assert_eq!(fig2(15, 1, 4), 5);
        assert_eq!(fig2(15, -1, 4), 3);
        assert_eq!(fig2(15, 0, 4), 4);
    }

    #[test]
    fn large_queue_climbs_by_two() {
        assert_eq!(fig2(25, 1, 4), 6);
        assert_eq!(fig2(25, -1, 4), 3);
        assert_eq!(fig2(25, 0, 4), 4);
    }

    #[test]
    fn very_large_queue_only_climbs() {
        assert_eq!(fig2(50, 1, 4), 6);
        assert_eq!(fig2(50, -5, 4), 4); // no decrease branch above high water
        assert_eq!(fig2(50, 0, 4), 4);
    }

    #[test]
    fn clamping_applies() {
        assert_eq!(fig2(25, 1, 9), 10);
        assert_eq!(fig2(25, 1, 10), 10);
        assert_eq!(fig2(15, -1, 0), 0);
        assert_eq!(update_level(25, 1, 3, 0, 4, 10, 20, 30), 4);
    }

    #[test]
    fn paper_consequence_no_compression_below_80kb() {
        // §3.3: the level cannot increase while fewer than 10 packets
        // (80 KB) are queued, so starting from level 0 a short transfer
        // never compresses.
        let mut level = 0u8;
        for n in 0..10usize {
            level = fig2(n, 1, level);
            assert_eq!(level, 0, "queue of {n} packets must not raise the level");
        }
        // At 10 packets and growing, the level may rise.
        assert_eq!(fig2(10, 1, 0), 1);
    }

    fn test_cfg() -> AdocConfig {
        AdocConfig::default()
    }

    #[test]
    fn controller_starts_at_min_and_climbs_when_queue_grows() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        assert_eq!(c.level(), 0);
        // Simulate a steadily growing queue.
        let mut lens = vec![0usize, 4, 12, 18, 25, 33, 40];
        let mut max_seen = 0;
        for len in lens.drain(..) {
            let l = c.next_level(len, &bw, &cfg);
            max_seen = max_seen.max(l);
        }
        assert!(
            max_seen >= 3,
            "level should climb with a growing queue, got {max_seen}"
        );
    }

    #[test]
    fn controller_divergence_guard_reverts_and_forbids() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        // Observed: level 3 is slow, level 1 is fast.
        bw.record(3, 100_000, std::time::Duration::from_millis(100)); // 8 Mbit
        bw.record(1, 2_000_000, std::time::Duration::from_millis(100)); // 160 Mbit
        c.level = 1;
        c.last_len = Some(20);
        // Growing large queue proposes level 1+2 = 3; the guard must veto.
        let l = c.next_level(25, &bw, &cfg);
        assert_eq!(l, 1, "should fall back to the best-observed level");
        assert_eq!(c.divergence_reverts, 1);
        // Level 3 is now forbidden: propose it again immediately.
        c.last_len = Some(20);
        c.level = 1;
        let l2 = c.next_level(25, &bw, &cfg);
        assert_ne!(l2, 3, "forbidden level must be skipped");
    }

    #[test]
    fn controller_ratio_penalty_pins_to_min() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.99, &cfg);
        assert_eq!(c.ratio_trips, 1);
        assert_eq!(c.next_level(25, &bw, &cfg), 0, "penalty must pin to min");
        // Penalty drains per packet.
        c.packets_pushed(cfg.ratio_penalty_packets - 1);
        assert_eq!(
            c.next_level(25, &bw, &cfg),
            0,
            "still one penalty packet left"
        );
        c.packets_pushed(1);
        let l = c.next_level(30, &bw, &cfg);
        // Penalty over: the controller resumes normal adaptation.
        assert!(l <= 2, "fresh climb from min level, got {l}");
    }

    #[test]
    fn tripping_buffers_own_packets_do_not_drain_penalty() {
        // Regression: the buffer that trips the guard reports its ratio
        // *after* its level was chosen, then pushes its own packets. With
        // the default 200 KB buffer / 8 KB packet geometry that is 25
        // packets — more than the whole 10-packet penalty — so draining
        // on those pushes silently cancelled the penalty before it ever
        // pinned a buffer.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.5, &cfg); // trip during buffer k
        c.packets_pushed(25); // buffer k's own packets hit the queue
        assert_eq!(
            c.next_level(25, &bw, &cfg),
            cfg.min_level,
            "the buffer after the trip must still be pinned"
        );
    }

    #[test]
    fn penalty_counts_post_trip_wire_packets() {
        // With 4-packet buffers the 10-packet window must pin exactly
        // ceil(10 / 4) = 3 subsequent buffers.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.5, &cfg);
        c.packets_pushed(4); // tripping buffer: must not drain
        let mut pinned = 0;
        for _ in 0..6 {
            let l = c.next_level(25, &bw, &cfg);
            if l == cfg.min_level && c.penalty_packets > 0 || c.penalty_draining {
                pinned += 1;
            }
            if !c.penalty_draining {
                break;
            }
            c.packets_pushed(4);
        }
        assert_eq!(pinned, 3, "10 packets at 4 per buffer pin 3 buffers");
    }

    #[test]
    fn post_penalty_delta_starts_fresh() {
        // Regression: queue lengths recorded while the penalty pinned the
        // level must not seed the first post-penalty delta. Here the
        // queue was short (5) during the window and long (25) after; a
        // stale delta of +20 in the mid..high band would jump the level
        // by 2 immediately.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.5, &cfg);
        assert_eq!(c.next_level(5, &bw, &cfg), cfg.min_level);
        c.packets_pushed(cfg.ratio_penalty_packets); // window fully drained
        let l = c.next_level(25, &bw, &cfg);
        assert_eq!(
            l, cfg.min_level,
            "first free buffer must see delta 0, not a stale jump"
        );
    }

    #[test]
    fn controller_good_ratio_does_not_trip() {
        let cfg = test_cfg();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(3.0, &cfg);
        assert_eq!(c.ratio_trips, 0);
    }

    #[test]
    fn min_level_floor_respected_by_guards() {
        let cfg = AdocConfig::default().with_levels(2, 8);
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        assert_eq!(c.level(), 2);
        assert_eq!(
            c.next_level(0, &bw, &cfg),
            2,
            "empty queue returns min level"
        );
    }
}
