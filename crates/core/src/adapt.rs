//! The compression-level update algorithm — Figure 2 of the paper,
//! verbatim — split into **mechanism** and **policy**:
//!
//! * mechanisms stay in [`LevelController`]: the Fig. 2 queue-driven
//!   candidate, the forbidden-level table the divergence guard writes
//!   into, and the §5 incompressible-data penalty (minimum level for
//!   the next 10 packets after a bad ratio);
//! * policies implement [`LevelPolicy`]: given the Fig. 2 candidate,
//!   the visible-bandwidth monitor and (optionally) a
//!   [`DelaySnapshot`] from the signal layer, they pick the level and
//!   say *why* ([`LevelReason`]).
//!
//! [`ThroughputPolicy`] is the paper's §5 divergence guard verbatim;
//! [`DelayAwarePolicy`] (the default) layers the delay-gradient signal
//! on top: a rising delay gradient means the *network* is the
//! bottleneck, so the level rises to squeeze more data through the
//! same pipe; a draining queue with falling delay means the *CPU* is
//! the gate, so the level backs off.

use crate::bw::BandwidthMonitor;
use crate::config::AdocConfig;
use crate::signals::{CongestionState, DelaySnapshot};
use std::time::{Duration, Instant};

/// Figure 2, line for line. `n` is the queue length in packets, `delta`
/// its change since the previous update, `l` the old level.
// The paper's algorithm takes exactly these eight inputs; bundling them
// into a struct would obscure the line-for-line correspondence.
#[allow(clippy::too_many_arguments)]
pub fn update_level(
    n: usize,
    delta: isize,
    l: u8,
    min: u8,
    max: u8,
    low: usize,
    mid: usize,
    high: usize,
) -> u8 {
    // 1-2: an empty queue means the network is starving — stop compressing.
    if n == 0 {
        return min;
    }
    let mut l = i32::from(l);
    if n < low {
        // 3-5: small queue: the level may only fall (halve on shrink).
        if delta <= 0 {
            l /= 2;
        }
    } else if n < mid {
        // 6-10: moderate queue: follow the trend by ±1.
        if delta > 0 {
            l += 1;
        } else if delta < 0 {
            l -= 1;
        }
    } else if n < high {
        // 11-15: large queue: climb faster than we descend.
        if delta > 0 {
            l += 2;
        } else if delta < 0 {
            l -= 1;
        }
    } else {
        // 16-17: very large queue: plenty of time to compress.
        if delta > 0 {
            l += 2;
        }
    }
    // 18-19: clamp.
    l.clamp(i32::from(min), i32::from(max)) as u8
}

/// Why the controller moved (or held) the compression level. Attached
/// to level-change events so operators can attribute every move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LevelReason {
    /// The Fig. 2 queue-length algorithm drove the decision.
    #[default]
    QueuePressure,
    /// The §5 divergence guard vetoed a level whose visible bandwidth a
    /// smaller level beats.
    ThroughputDiverged,
    /// The delay-gradient signal overrode the queue-driven candidate.
    DelayGradient,
    /// The §5 incompressible-data penalty pinned the level to minimum.
    IncompressiblePenalty,
}

impl LevelReason {
    /// Stable lower-snake name (for events/metrics JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            LevelReason::QueuePressure => "queue_pressure",
            LevelReason::ThroughputDiverged => "throughput_diverged",
            LevelReason::DelayGradient => "delay_gradient",
            LevelReason::IncompressiblePenalty => "incompressible_penalty",
        }
    }
}

/// Everything a [`LevelPolicy`] may consult for one decision.
pub struct PolicyCtx<'a> {
    /// Emission-queue length in packets.
    pub queue_len: usize,
    /// Queue-length change since the previous decision.
    pub delta: isize,
    /// The Fig. 2 candidate level for this buffer.
    pub candidate: u8,
    /// The level the previous buffer was compressed at.
    pub current: u8,
    /// Per-level visible-bandwidth monitor.
    pub bw: &'a BandwidthMonitor,
    /// Freshest delay-gradient snapshot, if the signal layer has one.
    pub delay: Option<DelaySnapshot>,
    /// The transfer's configuration (watermarks, level bounds, margins).
    pub cfg: &'a AdocConfig,
}

/// A policy's verdict for one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDecision {
    /// The level to compress the next buffer at (still subject to the
    /// controller's forbidden-level table).
    pub level: u8,
    /// Why.
    pub reason: LevelReason,
    /// A level the controller should forbid for
    /// [`AdocConfig::forbid_duration`] (the divergence guard's veto).
    pub forbid: Option<u8>,
}

impl LevelDecision {
    /// A plain queue-driven decision for `level`.
    pub fn queue(level: u8) -> LevelDecision {
        LevelDecision {
            level,
            reason: LevelReason::QueuePressure,
            forbid: None,
        }
    }
}

/// A pluggable level-selection policy: mechanisms (Fig. 2 candidate,
/// forbid table, ratio penalty) live in [`LevelController`]; the
/// judgement call between them lives here.
pub trait LevelPolicy: Send {
    /// Picks the level for the next buffer.
    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> LevelDecision;
}

/// The paper's §5 divergence guard as a policy: accept the Fig. 2
/// candidate unless a smaller level demonstrably moves raw data faster,
/// in which case fall back to it and ask for the candidate to be
/// forbidden.
#[derive(Debug, Default)]
pub struct ThroughputPolicy;

impl LevelPolicy for ThroughputPolicy {
    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> LevelDecision {
        let cand = ctx.candidate;
        if cand > ctx.cfg.min_level {
            if let (Some(cur_bw), Some((best_level, best_bw))) =
                (ctx.bw.visible(cand), ctx.bw.best_below(cand))
            {
                if best_bw > cur_bw * ctx.cfg.divergence_margin {
                    return LevelDecision {
                        level: best_level.max(ctx.cfg.min_level),
                        reason: LevelReason::ThroughputDiverged,
                        forbid: Some(cand),
                    };
                }
            }
        }
        LevelDecision::queue(cand)
    }
}

/// How fresh a delay snapshot must be before [`DelayAwarePolicy`]
/// trusts it over the pure throughput view.
pub const DELAY_FRESH: Duration = Duration::from_secs(1);

/// The default policy: the throughput (divergence) view, overridden by
/// the delay-gradient signal when it is fresh and decisive.
///
/// * **Overuse** (delay rising — the network is the bottleneck): raise
///   the level one step above the current one even if the queue alone
///   would not, unless the throughput guard just vetoed a level
///   (divergence is CPU-side evidence that more compression is slower).
/// * **Underuse** with a small queue (delay falling, sender barely
///   queueing — the CPU is the gate): back the level off one step so
///   compression stops throttling emission.
#[derive(Debug, Default)]
pub struct DelayAwarePolicy {
    throughput: ThroughputPolicy,
}

impl LevelPolicy for DelayAwarePolicy {
    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> LevelDecision {
        let base = self.throughput.decide(ctx);
        let Some(d) = ctx.delay else { return base };
        if d.age > DELAY_FRESH {
            return base;
        }
        match d.state {
            CongestionState::Overuse if base.forbid.is_none() => {
                let boosted = base.level.max((ctx.current + 1).min(ctx.cfg.max_level));
                if boosted != base.level {
                    LevelDecision {
                        level: boosted,
                        reason: LevelReason::DelayGradient,
                        forbid: None,
                    }
                } else {
                    base
                }
            }
            CongestionState::Underuse
                if ctx.queue_len < ctx.cfg.low_water
                    && ctx.current > ctx.cfg.min_level
                    && base.level >= ctx.current =>
            {
                LevelDecision {
                    level: ctx.current - 1,
                    reason: LevelReason::DelayGradient,
                    forbid: None,
                }
            }
            _ => base,
        }
    }
}

/// Stateful controller driving one adaptive transfer: tracks the previous
/// queue length, forbidden levels and the ratio penalty, delegating the
/// judgement call to the configured [`LevelPolicy`].
pub struct LevelController {
    level: u8,
    last_len: Option<usize>,
    /// Until when each level is forbidden by the divergence guard.
    forbidden_until: [Option<Instant>; 11],
    /// Wire packets remaining at the minimum level after a ratio-guard
    /// trip (§5: the next 10 *packets*, not buffers).
    penalty_packets: u32,
    /// True only while the *current* buffer's level was pinned by the
    /// penalty: [`Self::packets_pushed`] drains the window only then, so
    /// the packets of the buffer that tripped the guard (pushed after
    /// `report_ratio` but chosen before it) never consume the penalty
    /// they just started.
    penalty_draining: bool,
    /// After a trip, buffers are pre-checked cheaply (paper: the per-
    /// packet ratio check aborts compression early) until one passes.
    suspicious: bool,
    /// The pluggable judgement call (built from
    /// [`AdocConfig::level_policy`] at construction).
    policy: Box<dyn LevelPolicy>,
    /// Why the most recent decision landed where it did.
    last_reason: LevelReason,
    /// Counters surfaced through [`crate::stats::TransferStats`].
    pub divergence_reverts: u64,
    /// Number of ratio-guard trips.
    pub ratio_trips: u64,
}

impl LevelController {
    /// Starts at the minimum level (a fresh transfer has an empty queue).
    pub fn new(cfg: &AdocConfig) -> Self {
        LevelController {
            level: cfg.min_level,
            last_len: None,
            forbidden_until: [None; 11],
            penalty_packets: 0,
            penalty_draining: false,
            suspicious: false,
            policy: cfg.level_policy(),
            last_reason: LevelReason::QueuePressure,
            divergence_reverts: 0,
            ratio_trips: 0,
        }
    }

    /// Current level without updating.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Why the most recent [`Self::next_level`] decision landed where
    /// it did.
    pub fn last_reason(&self) -> LevelReason {
        self.last_reason
    }

    /// Computes the level for the next buffer given the current queue
    /// length and the visible-bandwidth monitor (no delay signal).
    pub fn next_level(&mut self, queue_len: usize, bw: &BandwidthMonitor, cfg: &AdocConfig) -> u8 {
        self.next_level_with(queue_len, bw, None, cfg)
    }

    /// Computes the level for the next buffer, feeding the policy the
    /// freshest delay-gradient snapshot the caller has.
    pub fn next_level_with(
        &mut self,
        queue_len: usize,
        bw: &BandwidthMonitor,
        delay: Option<DelaySnapshot>,
        cfg: &AdocConfig,
    ) -> u8 {
        let now = Instant::now();

        // Incompressible-data penalty takes precedence (§5): minimum level
        // until the penalty packets have been sent. `last_len` is cleared
        // (not updated) for the window's duration: queue lengths observed
        // while pinned reflect raw-speed emission, and comparing the
        // first post-penalty length against them would fabricate a large
        // delta that yanks the level around. The first free buffer
        // restarts with delta = 0 instead.
        if self.penalty_packets > 0 {
            self.last_len = None;
            self.penalty_draining = true;
            self.level = cfg.min_level;
            self.last_reason = LevelReason::IncompressiblePenalty;
            return self.level;
        }
        self.penalty_draining = false;

        let delta = match self.last_len {
            Some(prev) => queue_len as isize - prev as isize,
            None => 0,
        };
        self.last_len = Some(queue_len);

        let candidate = update_level(
            queue_len,
            delta,
            self.level,
            cfg.min_level,
            cfg.max_level,
            cfg.low_water,
            cfg.mid_water,
            cfg.high_water,
        );

        let decision = self.policy.decide(&PolicyCtx {
            queue_len,
            delta,
            candidate,
            current: self.level,
            bw,
            delay,
            cfg,
        });
        // Effective bounds: the config's static limits intersected with
        // any registry-steered bounds on the signal hub (a server-side
        // policy narrowing this connection's range at runtime).
        let (mut lo, mut hi) = (cfg.min_level, cfg.max_level);
        if let Some(hub) = cfg.signal_hub() {
            let (slo, shi) = hub.level_bounds();
            lo = lo.max(slo).min(cfg.max_level);
            hi = hi.min(shi).max(lo);
        }
        let mut cand = decision.level.clamp(lo, hi);
        let mut reason = decision.reason;
        if let Some(f) = decision.forbid {
            self.forbidden_until[f as usize] = Some(now + cfg.forbid_duration);
            self.divergence_reverts += 1;
        }

        // Skip levels still under a forbid (fall to the next lower one).
        while cand > lo {
            match self.forbidden_until[cand as usize] {
                Some(t) if t > now => {
                    cand -= 1;
                    reason = LevelReason::ThroughputDiverged;
                }
                _ => break,
            }
        }

        self.level = cand;
        self.last_reason = reason;
        cand
    }

    /// Reports the compression outcome of a buffer: `ratio` = raw/encoded.
    /// Trips the penalty when it falls below the guard threshold.
    pub fn report_ratio(&mut self, ratio: f64, cfg: &AdocConfig) {
        if cfg.ratio_guard == 0.0 {
            return; // guard disabled
        }
        if ratio < cfg.ratio_guard {
            if self.level > cfg.min_level {
                self.penalty_packets = cfg.ratio_penalty_packets;
                // The buffer that tripped was chosen *before* the trip;
                // its packets must not drain the window it just opened.
                self.penalty_draining = false;
                self.ratio_trips += 1;
            }
            self.suspicious = true;
        } else {
            self.suspicious = false;
        }
    }

    /// True while the data recently failed the ratio guard: the sender
    /// pre-checks a small prefix before paying for a full-buffer
    /// compression (the paper's early abort on bad packets).
    pub fn is_suspicious(&self) -> bool {
        self.suspicious
    }

    /// Notes that `n` wire packets were pushed for the current buffer.
    /// Drains the penalty window only when that buffer was itself pinned
    /// by the penalty (§5 counts the 10 packets that *follow* the trip).
    pub fn packets_pushed(&mut self, n: u32) {
        if self.penalty_draining {
            self.penalty_packets = self.penalty_packets.saturating_sub(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2(n: usize, delta: isize, l: u8) -> u8 {
        update_level(n, delta, l, 0, 10, 10, 20, 30)
    }

    #[test]
    fn empty_queue_resets_to_min() {
        assert_eq!(fig2(0, 5, 9), 0);
        assert_eq!(update_level(0, 0, 9, 2, 10, 10, 20, 30), 2);
    }

    #[test]
    fn small_queue_halves_on_non_growth() {
        assert_eq!(fig2(5, 0, 8), 4);
        assert_eq!(fig2(9, -3, 9), 4); // 9/2 = 4 integer division
        assert_eq!(fig2(5, 2, 8), 8); // growing: hold
    }

    #[test]
    fn moderate_queue_steps_by_one() {
        assert_eq!(fig2(15, 1, 4), 5);
        assert_eq!(fig2(15, -1, 4), 3);
        assert_eq!(fig2(15, 0, 4), 4);
    }

    #[test]
    fn large_queue_climbs_by_two() {
        assert_eq!(fig2(25, 1, 4), 6);
        assert_eq!(fig2(25, -1, 4), 3);
        assert_eq!(fig2(25, 0, 4), 4);
    }

    #[test]
    fn very_large_queue_only_climbs() {
        assert_eq!(fig2(50, 1, 4), 6);
        assert_eq!(fig2(50, -5, 4), 4); // no decrease branch above high water
        assert_eq!(fig2(50, 0, 4), 4);
    }

    #[test]
    fn clamping_applies() {
        assert_eq!(fig2(25, 1, 9), 10);
        assert_eq!(fig2(25, 1, 10), 10);
        assert_eq!(fig2(15, -1, 0), 0);
        assert_eq!(update_level(25, 1, 3, 0, 4, 10, 20, 30), 4);
    }

    #[test]
    fn paper_consequence_no_compression_below_80kb() {
        // §3.3: the level cannot increase while fewer than 10 packets
        // (80 KB) are queued, so starting from level 0 a short transfer
        // never compresses.
        let mut level = 0u8;
        for n in 0..10usize {
            level = fig2(n, 1, level);
            assert_eq!(level, 0, "queue of {n} packets must not raise the level");
        }
        // At 10 packets and growing, the level may rise.
        assert_eq!(fig2(10, 1, 0), 1);
    }

    fn test_cfg() -> AdocConfig {
        AdocConfig::default()
    }

    #[test]
    fn controller_starts_at_min_and_climbs_when_queue_grows() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        assert_eq!(c.level(), 0);
        // Simulate a steadily growing queue.
        let mut lens = vec![0usize, 4, 12, 18, 25, 33, 40];
        let mut max_seen = 0;
        for len in lens.drain(..) {
            let l = c.next_level(len, &bw, &cfg);
            max_seen = max_seen.max(l);
        }
        assert!(
            max_seen >= 3,
            "level should climb with a growing queue, got {max_seen}"
        );
    }

    #[test]
    fn controller_divergence_guard_reverts_and_forbids() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        // Observed: level 3 is slow, level 1 is fast.
        bw.record(3, 100_000, std::time::Duration::from_millis(100)); // 8 Mbit
        bw.record(1, 2_000_000, std::time::Duration::from_millis(100)); // 160 Mbit
        c.level = 1;
        c.last_len = Some(20);
        // Growing large queue proposes level 1+2 = 3; the guard must veto.
        let l = c.next_level(25, &bw, &cfg);
        assert_eq!(l, 1, "should fall back to the best-observed level");
        assert_eq!(c.divergence_reverts, 1);
        // Level 3 is now forbidden: propose it again immediately.
        c.last_len = Some(20);
        c.level = 1;
        let l2 = c.next_level(25, &bw, &cfg);
        assert_ne!(l2, 3, "forbidden level must be skipped");
    }

    #[test]
    fn controller_ratio_penalty_pins_to_min() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.99, &cfg);
        assert_eq!(c.ratio_trips, 1);
        assert_eq!(c.next_level(25, &bw, &cfg), 0, "penalty must pin to min");
        // Penalty drains per packet.
        c.packets_pushed(cfg.ratio_penalty_packets - 1);
        assert_eq!(
            c.next_level(25, &bw, &cfg),
            0,
            "still one penalty packet left"
        );
        c.packets_pushed(1);
        let l = c.next_level(30, &bw, &cfg);
        // Penalty over: the controller resumes normal adaptation.
        assert!(l <= 2, "fresh climb from min level, got {l}");
    }

    #[test]
    fn tripping_buffers_own_packets_do_not_drain_penalty() {
        // Regression: the buffer that trips the guard reports its ratio
        // *after* its level was chosen, then pushes its own packets. With
        // the default 200 KB buffer / 8 KB packet geometry that is 25
        // packets — more than the whole 10-packet penalty — so draining
        // on those pushes silently cancelled the penalty before it ever
        // pinned a buffer.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.5, &cfg); // trip during buffer k
        c.packets_pushed(25); // buffer k's own packets hit the queue
        assert_eq!(
            c.next_level(25, &bw, &cfg),
            cfg.min_level,
            "the buffer after the trip must still be pinned"
        );
    }

    #[test]
    fn penalty_counts_post_trip_wire_packets() {
        // With 4-packet buffers the 10-packet window must pin exactly
        // ceil(10 / 4) = 3 subsequent buffers.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.5, &cfg);
        c.packets_pushed(4); // tripping buffer: must not drain
        let mut pinned = 0;
        for _ in 0..6 {
            let l = c.next_level(25, &bw, &cfg);
            if l == cfg.min_level && c.penalty_packets > 0 || c.penalty_draining {
                pinned += 1;
            }
            if !c.penalty_draining {
                break;
            }
            c.packets_pushed(4);
        }
        assert_eq!(pinned, 3, "10 packets at 4 per buffer pin 3 buffers");
    }

    #[test]
    fn post_penalty_delta_starts_fresh() {
        // Regression: queue lengths recorded while the penalty pinned the
        // level must not seed the first post-penalty delta. Here the
        // queue was short (5) during the window and long (25) after; a
        // stale delta of +20 in the mid..high band would jump the level
        // by 2 immediately.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(0.5, &cfg);
        assert_eq!(c.next_level(5, &bw, &cfg), cfg.min_level);
        c.packets_pushed(cfg.ratio_penalty_packets); // window fully drained
        let l = c.next_level(25, &bw, &cfg);
        assert_eq!(
            l, cfg.min_level,
            "first free buffer must see delta 0, not a stale jump"
        );
    }

    #[test]
    fn controller_good_ratio_does_not_trip() {
        let cfg = test_cfg();
        let mut c = LevelController::new(&cfg);
        c.level = 6;
        c.report_ratio(3.0, &cfg);
        assert_eq!(c.ratio_trips, 0);
    }

    fn delay_snap(state: CongestionState) -> DelaySnapshot {
        DelaySnapshot {
            queue_delay_us: 5_000,
            baseline_us: 0,
            gradient: 50.0,
            state,
            target_bps: None,
            groups: 20,
            source: crate::signals::SignalSource::Local,
            age: Duration::ZERO,
        }
    }

    #[test]
    fn overuse_delay_boosts_the_level() {
        // Mid-band queue holding steady would keep the level; a rising
        // delay gradient (network bottleneck) pushes it one step up.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 3;
        c.last_len = Some(15);
        let l = c.next_level_with(15, &bw, Some(delay_snap(CongestionState::Overuse)), &cfg);
        assert_eq!(l, 4);
        assert_eq!(c.last_reason(), LevelReason::DelayGradient);
    }

    #[test]
    fn underuse_with_small_queue_backs_the_level_off() {
        // Small growing queue holds the level; a draining delay signal
        // (CPU bottleneck) backs it off one step instead.
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 5;
        c.last_len = Some(3);
        let l = c.next_level_with(5, &bw, Some(delay_snap(CongestionState::Underuse)), &cfg);
        assert_eq!(l, 4);
        assert_eq!(c.last_reason(), LevelReason::DelayGradient);
    }

    #[test]
    fn stale_delay_snapshots_are_ignored() {
        let cfg = test_cfg();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        c.level = 3;
        c.last_len = Some(15);
        let mut snap = delay_snap(CongestionState::Overuse);
        snap.age = DELAY_FRESH + Duration::from_millis(1);
        let l = c.next_level_with(15, &bw, Some(snap), &cfg);
        assert_eq!(l, 3, "stale signal must not boost");
        assert_eq!(c.last_reason(), LevelReason::QueuePressure);
    }

    #[test]
    fn registry_steered_bounds_clamp_the_controller() {
        let mut cfg = test_cfg();
        cfg.ensure_signal_hub();
        let hub = cfg.signals.clone().unwrap();
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        hub.set_level_bounds(2, 4);
        c.level = 4;
        c.last_len = Some(20);
        // Very large growing queue wants +2; the steered ceiling holds it.
        assert_eq!(c.next_level(50, &bw, &cfg), 4);
        // A shrinking small queue wants to halve; the steered floor holds.
        c.last_len = Some(8);
        assert_eq!(c.next_level(5, &bw, &cfg), 2);
        // Bounds released: the controller can climb again.
        hub.set_level_bounds(0, 10);
        c.level = 4;
        c.last_len = Some(20);
        assert_eq!(c.next_level(50, &bw, &cfg), 6);
    }

    #[test]
    fn min_level_floor_respected_by_guards() {
        let cfg = AdocConfig::default().with_levels(2, 8);
        let bw = BandwidthMonitor::new();
        let mut c = LevelController::new(&cfg);
        assert_eq!(c.level(), 2);
        assert_eq!(
            c.next_level(0, &bw, &cfg),
            2,
            "empty queue returns min level"
        );
    }
}
