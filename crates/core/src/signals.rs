//! The delay-gradient signal layer: every adaptive decision's input.
//!
//! The paper's controller (§3.3, §5) reacts to *throughput* — queue
//! growth and per-level visible bandwidth. Throughput is a trailing
//! indicator: by the time it collapses, queueing delay has been building
//! for a full bandwidth-estimation window. This module measures that
//! delay directly, the way TWCC-style congestion controllers do, and
//! publishes it as a [`DelaySnapshot`] that the level controller
//! ([`crate::adapt`]), the server's fair scheduler and the connection
//! registry all consume. Policies live above; this layer only measures.
//!
//! # Estimator
//!
//! [`DelayGradientEstimator`] ingests `(departure, arrival)` timestamp
//! pairs, one per packet, and:
//!
//! 1. **buckets packets into groups** by departure time
//!    ([`BURST_WINDOW_US`] = 5 ms) — a burst sent back-to-back tells us
//!    nothing packet-by-packet, only group-by-group;
//! 2. computes per completed group the **inter-group delay delta**
//!    `(arrival_i − arrival_{i−1}) − (departure_i − departure_{i−1})`
//!    — deltas only, so a constant clock offset between the two
//!    timestamp domains (sender vs. receiver clock) cancels out;
//! 3. accumulates deltas into a **cumulative delay** normalised against
//!    its all-time minimum, yielding a one-way *queueing delay* that is
//!    non-negative by construction;
//! 4. tracks a **baseline** (the window minimum, via an
//!    ascending-minima deque) and a **gradient** (least-squares slope
//!    of queueing delay over recent groups);
//! 5. runs a small state machine: sustained positive gradient above the
//!    baseline ⇒ [`CongestionState::Overuse`] (with a multiplicative-
//!    decrease rate target, ×[`DECREASE_RATE_FACTOR`]); sustained
//!    negative gradient ⇒ [`CongestionState::Underuse`].
//!
//! # Hub
//!
//! [`SignalHub`] pairs two estimators per connection:
//!
//! * **local** — fed by the sender's emission path (packet enqueue →
//!   wire-write complete): measures the *emission queue* delay, which
//!   grows when the network (or the throttle) is the bottleneck;
//! * **remote** — fed by the receiver from departure timestamps carried
//!   in v2 frames ([`crate::wire::FRAME_TS_FLAG`]): measures the actual
//!   network path. On a duplex connection (an echo server, the reply
//!   direction of a request) the remote estimator closes the loop the
//!   paper could not: the sender sees the *receiver's* arrival clock.
//!
//! [`SignalHub::snapshot`] prefers the remote estimator while it is
//! fresh (updated within [`REMOTE_FRESH`]) and falls back to the local
//! one, so one-directional transfers still get a usable signal.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU16, Ordering};
use std::time::{Duration, Instant};

/// Departure-time span of one packet group (TWCC's burst interval):
/// packets departing within 5 ms of a group's first packet belong to it.
pub const BURST_WINDOW_US: u64 = 5_000;

/// Completed groups the baseline (ascending-minima) window spans.
pub const BASELINE_WINDOW: usize = 64;

/// Completed groups the gradient (least-squares) window spans.
pub const GRADIENT_WINDOW: usize = 16;

/// Multiplicative decrease applied to the observed delivery rate when
/// the estimator transitions into overuse.
pub const DECREASE_RATE_FACTOR: f64 = 0.85;

/// Queueing delay above baseline that arms the overuse detector.
pub const OVERUSE_DELAY_US: u64 = 2_000;

/// Gradient magnitude (µs of queueing delay per group) that, sustained,
/// flips the state machine.
pub const GRADIENT_THRESHOLD: f64 = 25.0;

/// Consecutive triggering groups before the state machine commits.
const STATE_RUNS: u32 = 2;

/// Largest believable single inter-group delta. Deltas beyond ±1 s are
/// clock steps, wrap-around garbage or gross reordering, not congestion;
/// they are clamped so one bad timestamp cannot poison the cumulative
/// delay.
const MAX_GROUP_DELTA_US: i64 = 1_000_000;

/// How long a remote (wire-timestamp) signal stays authoritative before
/// [`SignalHub::snapshot`] falls back to the local emission signal.
pub const REMOTE_FRESH: Duration = Duration::from_secs(1);

/// What the delay trend says about where the bottleneck is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionState {
    /// Delay flat: the pipe is keeping up.
    #[default]
    Normal,
    /// Delay rising: the network (or throttle) is the bottleneck.
    Overuse,
    /// Delay falling: queues are draining; capacity is spare.
    Underuse,
}

impl CongestionState {
    /// Stable lower-case name (for events/metrics JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            CongestionState::Normal => "normal",
            CongestionState::Overuse => "overuse",
            CongestionState::Underuse => "underuse",
        }
    }
}

/// Which estimator produced a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalSource {
    /// Sender-side emission queue (enqueue → wire write).
    Local,
    /// Receiver-side arrival clock via wire timestamps.
    Remote,
}

/// One published measurement from the signal layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySnapshot {
    /// Current queueing delay (cumulative delay above its all-time
    /// minimum). Non-negative by construction.
    pub queue_delay_us: u64,
    /// Window-minimum queueing delay (ascending-minima baseline).
    /// Always `<= queue_delay_us`.
    pub baseline_us: u64,
    /// Least-squares slope of queueing delay, in µs per packet group
    /// (a group spans [`BURST_WINDOW_US`]).
    pub gradient: f64,
    /// The state machine's verdict.
    pub state: CongestionState,
    /// Multiplicative-decrease delivery-rate target (bits/s of wire
    /// data), set while in overuse.
    pub target_bps: Option<f64>,
    /// Completed groups observed so far.
    pub groups: u64,
    /// Which estimator this snapshot came from.
    pub source: SignalSource,
    /// Time since the estimator last completed a group.
    pub age: Duration,
}

impl DelaySnapshot {
    /// Queueing delay above the baseline — the congestion-attributable
    /// part of the delay. Never underflows (`baseline <= queue_delay`).
    pub fn above_baseline_us(&self) -> u64 {
        self.queue_delay_us.saturating_sub(self.baseline_us)
    }
}

/// One departure-time bucket of packets.
#[derive(Debug, Clone, Copy)]
struct PacketGroup {
    first_departure_us: u64,
    departure_us: u64,
    arrival_us: u64,
    bytes: u64,
}

/// TWCC-style delay-gradient estimator over `(departure, arrival)`
/// timestamp pairs. Single-threaded; wrap it in a lock ([`SignalHub`]
/// does) to share.
///
/// Timestamps are µs on *any* two clocks — the departure clock and the
/// arrival clock need not agree (deltas cancel constant offsets), need
/// not be monotonic (negative deltas lower the cumulative minimum
/// instead of underflowing), and may step wildly (deltas are clamped to
/// ±1 s).
#[derive(Debug, Default)]
pub struct DelayGradientEstimator {
    group: Option<PacketGroup>,
    prev: Option<PacketGroup>,
    /// Running sum of inter-group deltas (µs, may go negative).
    cumulative_us: i64,
    /// All-time minimum of `cumulative_us` — the normalisation floor
    /// that keeps the published queueing delay non-negative.
    min_cumulative_us: i64,
    /// Queueing delay of recent completed groups, newest last.
    history: VecDeque<u64>,
    /// Ascending-minima deque of `(group index, queueing delay)` over
    /// the baseline window; front is the window minimum.
    minima: VecDeque<(u64, u64)>,
    groups: u64,
    state: CongestionState,
    over_runs: u32,
    under_runs: u32,
    target_bps: Option<f64>,
    /// Decaying delivery-rate accumulator (bytes, seconds).
    rate_bytes: f64,
    rate_secs: f64,
}

impl DelayGradientEstimator {
    /// A fresh estimator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one packet: it departed (entered the queue / left the
    /// sender) at `departure_us` and arrived (hit the wire / reached
    /// the receiver) at `arrival_us`, carrying `bytes` wire bytes.
    pub fn on_packet(&mut self, departure_us: u64, arrival_us: u64, bytes: usize) {
        let g = match self.group {
            None => {
                self.group = Some(PacketGroup {
                    first_departure_us: departure_us,
                    departure_us,
                    arrival_us,
                    bytes: bytes as u64,
                });
                return;
            }
            Some(ref mut g) => g,
        };
        // A packet departing within the burst window of the group's
        // first — or *before* it (reordering) — joins the group.
        if departure_us.saturating_sub(g.first_departure_us) <= BURST_WINDOW_US {
            g.departure_us = g.departure_us.max(departure_us);
            g.arrival_us = g.arrival_us.max(arrival_us);
            g.bytes += bytes as u64;
            return;
        }
        // New group: complete the current one first.
        let done = *g;
        self.group = Some(PacketGroup {
            first_departure_us: departure_us,
            departure_us,
            arrival_us,
            bytes: bytes as u64,
        });
        self.complete_group(done);
    }

    fn complete_group(&mut self, done: PacketGroup) {
        if let Some(prev) = self.prev {
            // Deltas via wrapping math: the clocks are untrusted and the
            // clamp below absorbs anything implausible.
            let arrival_delta = done.arrival_us.wrapping_sub(prev.arrival_us) as i64;
            let departure_delta = done.departure_us.wrapping_sub(prev.departure_us) as i64;
            let delta = arrival_delta
                .wrapping_sub(departure_delta)
                .clamp(-MAX_GROUP_DELTA_US, MAX_GROUP_DELTA_US);
            self.cumulative_us = self.cumulative_us.saturating_add(delta);
            self.min_cumulative_us = self.min_cumulative_us.min(self.cumulative_us);

            // Delivery rate from arrival spacing (for the multiplicative-
            // decrease target); implausible spacings contribute time only
            // up to the clamp.
            let secs = (arrival_delta.clamp(0, MAX_GROUP_DELTA_US) as f64) / 1e6;
            self.rate_bytes += done.bytes as f64;
            self.rate_secs += secs;
            if self.rate_secs > 2.0 {
                self.rate_bytes /= 2.0;
                self.rate_secs /= 2.0;
            }
        }
        self.prev = Some(done);
        self.groups += 1;

        // Non-negative by construction: cumulative >= all-time minimum.
        let queue_delay = (self.cumulative_us - self.min_cumulative_us) as u64;
        self.history.push_back(queue_delay);
        while self.history.len() > BASELINE_WINDOW {
            self.history.pop_front();
        }
        // Ascending-minima window over the last BASELINE_WINDOW groups.
        while self.minima.back().is_some_and(|&(_, v)| v >= queue_delay) {
            self.minima.pop_back();
        }
        self.minima.push_back((self.groups, queue_delay));
        let floor = self.groups.saturating_sub(BASELINE_WINDOW as u64);
        while self.minima.front().is_some_and(|&(i, _)| i <= floor) {
            self.minima.pop_front();
        }

        self.update_state(queue_delay);
    }

    fn update_state(&mut self, queue_delay: u64) {
        let baseline = self.baseline_us();
        let above = queue_delay.saturating_sub(baseline);
        let slope = self.gradient();
        if above > OVERUSE_DELAY_US && slope > GRADIENT_THRESHOLD {
            self.over_runs += 1;
            self.under_runs = 0;
        } else if slope < -GRADIENT_THRESHOLD {
            self.under_runs += 1;
            self.over_runs = 0;
        } else {
            self.over_runs = 0;
            self.under_runs = 0;
            self.state = CongestionState::Normal;
            self.target_bps = None;
            return;
        }
        if self.over_runs >= STATE_RUNS {
            if self.state != CongestionState::Overuse {
                // Multiplicative decrease on entry, TWCC-style.
                self.target_bps = self.delivery_bps().map(|r| r * DECREASE_RATE_FACTOR);
            }
            self.state = CongestionState::Overuse;
        } else if self.under_runs >= STATE_RUNS {
            self.state = CongestionState::Underuse;
            self.target_bps = None;
        }
    }

    /// Window-minimum queueing delay (µs). Zero before any group
    /// completes.
    pub fn baseline_us(&self) -> u64 {
        self.minima.front().map_or(0, |&(_, v)| v)
    }

    /// Current queueing delay (µs): cumulative delay above its all-time
    /// minimum.
    pub fn queue_delay_us(&self) -> u64 {
        (self.cumulative_us - self.min_cumulative_us) as u64
    }

    /// Least-squares slope of queueing delay over the last
    /// [`GRADIENT_WINDOW`] groups, in µs per group. Zero until two
    /// groups complete.
    pub fn gradient(&self) -> f64 {
        let n = self.history.len().min(GRADIENT_WINDOW);
        if n < 2 {
            return 0.0;
        }
        let start = self.history.len() - n;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (i, &y) in self.history.iter().skip(start).enumerate() {
            let x = i as f64;
            let y = y as f64;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        if denom <= 0.0 {
            0.0
        } else {
            (nf * sxy - sx * sy) / denom
        }
    }

    /// Observed delivery rate (wire bits/s) from group arrival spacing.
    pub fn delivery_bps(&self) -> Option<f64> {
        if self.rate_secs < 1e-3 || self.rate_bytes <= 0.0 {
            None
        } else {
            Some(self.rate_bytes * 8.0 / self.rate_secs)
        }
    }

    /// Completed groups so far.
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// The state machine's current verdict.
    pub fn state(&self) -> CongestionState {
        self.state
    }

    /// Snapshot of the estimator; the caller supplies the source tag
    /// and signal age ([`SignalHub`] does this for its two slots).
    pub fn snapshot(&self, source: SignalSource, age: Duration) -> DelaySnapshot {
        DelaySnapshot {
            queue_delay_us: self.queue_delay_us(),
            baseline_us: self.baseline_us(),
            gradient: self.gradient(),
            state: self.state,
            target_bps: self.target_bps,
            groups: self.groups,
            source,
            age,
        }
    }
}

/// One estimator plus the wall-clock instant it last completed a group.
#[derive(Debug, Default)]
struct Slot {
    est: DelayGradientEstimator,
    updated: Option<Instant>,
}

/// Per-connection home of the delay signals: the sender's emission path
/// feeds the **local** estimator, the receiver's wire-timestamp path
/// feeds the **remote** one, and every consumer (level policy,
/// scheduler, registry) reads [`SignalHub::snapshot`].
///
/// All methods take `&self`; the two estimators are independently
/// locked, so recording on the emission thread never contends with the
/// receiver thread.
#[derive(Debug)]
pub struct SignalHub {
    origin: Instant,
    local: Mutex<Slot>,
    remote: Mutex<Slot>,
    /// Packed externally-steered level bounds (low byte = min, high
    /// byte = max): a registry-level policy writes, the connection's
    /// level controller clamps every decision through it.
    bounds: AtomicU16,
}

impl Default for SignalHub {
    fn default() -> Self {
        SignalHub {
            origin: Instant::now(),
            local: Mutex::new(Slot::default()),
            remote: Mutex::new(Slot::default()),
            bounds: AtomicU16::new(pack_bounds(0, adoc_codec::ADOC_MAX_LEVEL)),
        }
    }
}

fn pack_bounds(min: u8, max: u8) -> u16 {
    u16::from(min) | (u16::from(max) << 8)
}

impl SignalHub {
    /// A fresh hub with its timestamp origin at "now".
    pub fn new() -> Self {
        Self::default()
    }

    /// µs since this hub's origin — the value stamped into outgoing v2
    /// frames ([`crate::wire::FRAME_TS_FLAG`]). Only deltas of these
    /// ever matter, so the arbitrary origin is fine.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Feeds the local estimator: a packet entered the emission queue at
    /// `queued` and its socket write completed at `written`.
    pub fn record_local(&self, queued: Instant, written: Instant, bytes: usize) {
        let dep = queued.saturating_duration_since(self.origin).as_micros() as u64;
        let arr = written.saturating_duration_since(self.origin).as_micros() as u64;
        let mut slot = self.local.lock();
        let before = slot.est.groups();
        slot.est.on_packet(dep, arr, bytes);
        if slot.est.groups() != before {
            slot.updated = Some(Instant::now());
        }
    }

    /// Feeds the remote estimator: a frame stamped `departure_us` (the
    /// peer's clock) arrived here at `arrival_us` (this hub's clock, via
    /// [`SignalHub::now_us`]).
    pub fn record_remote(&self, departure_us: u64, arrival_us: u64, bytes: usize) {
        let mut slot = self.remote.lock();
        let before = slot.est.groups();
        slot.est.on_packet(departure_us, arrival_us, bytes);
        if slot.est.groups() != before {
            slot.updated = Some(Instant::now());
        }
    }

    /// The freshest available signal: the remote (wire-timestamp)
    /// estimator while it has completed a group within
    /// [`REMOTE_FRESH`], otherwise the local (emission) one. `None`
    /// until either estimator completes a group.
    pub fn snapshot(&self) -> Option<DelaySnapshot> {
        let now = Instant::now();
        {
            let remote = self.remote.lock();
            if let Some(t) = remote.updated {
                let age = now.saturating_duration_since(t);
                if age <= REMOTE_FRESH {
                    return Some(remote.est.snapshot(SignalSource::Remote, age));
                }
            }
        }
        let local = self.local.lock();
        let t = local.updated?;
        Some(
            local
                .est
                .snapshot(SignalSource::Local, now.saturating_duration_since(t)),
        )
    }

    /// Steers the connection's compression-level bounds from outside the
    /// pipeline (the server registry's policy hook). `min > max` is
    /// coerced to the degenerate `(max, max)`.
    pub fn set_level_bounds(&self, min: u8, max: u8) {
        let max = max.min(adoc_codec::ADOC_MAX_LEVEL);
        let min = min.min(max);
        self.bounds.store(pack_bounds(min, max), Ordering::Relaxed);
    }

    /// Currently steered level bounds (defaults to the full 0..=10).
    pub fn level_bounds(&self) -> (u8, u8) {
        let b = self.bounds.load(Ordering::Relaxed);
        ((b & 0xFF) as u8, (b >> 8) as u8)
    }

    /// Clamps `level` into the steered bounds.
    pub fn clamp_level(&self, level: u8) -> u8 {
        let (lo, hi) = self.level_bounds();
        level.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A continuous two-clock feed: each call sends `n` more groups with
    /// the given per-group growth in arrival time beyond the departure
    /// spacing (positive = queue building).
    struct Feed {
        dep: u64,
        arr: u64,
    }

    impl Feed {
        fn new() -> Feed {
            Feed { dep: 0, arr: 1_000 }
        }

        fn groups(&mut self, est: &mut DelayGradientEstimator, n: usize, growth_us: i64) {
            for _ in 0..n {
                est.on_packet(self.dep, self.arr, 8_192);
                self.dep += BURST_WINDOW_US + 1_000;
                self.arr = (self.arr as i64 + (BURST_WINDOW_US + 1_000) as i64 + growth_us) as u64;
            }
        }
    }

    #[test]
    fn steady_flow_is_normal() {
        let mut est = DelayGradientEstimator::new();
        Feed::new().groups(&mut est, 50, 0);
        assert_eq!(est.state(), CongestionState::Normal);
        assert_eq!(est.queue_delay_us(), 0);
        assert_eq!(est.baseline_us(), 0);
        assert!(est.gradient().abs() < 1.0, "{}", est.gradient());
        assert!(est.groups() >= 48);
    }

    #[test]
    fn building_queue_trips_overuse_with_rate_target() {
        let mut est = DelayGradientEstimator::new();
        let mut f = Feed::new();
        f.groups(&mut est, 10, 0);
        // Every group arrives 800 µs later than its departure spacing
        // says it should: the path queue is building fast.
        f.groups(&mut est, 30, 800);
        assert_eq!(est.state(), CongestionState::Overuse);
        assert!(est.gradient() > GRADIENT_THRESHOLD, "{}", est.gradient());
        let snap = est.snapshot(SignalSource::Local, Duration::ZERO);
        assert!(snap.above_baseline_us() > OVERUSE_DELAY_US);
        let target = snap.target_bps.expect("overuse sets a rate target");
        let rate = est.delivery_bps().expect("rate observed");
        assert!(target < rate, "target {target} must undercut rate {rate}");
    }

    #[test]
    fn draining_queue_reports_underuse_then_normal() {
        let mut est = DelayGradientEstimator::new();
        let mut f = Feed::new();
        f.groups(&mut est, 10, 0);
        f.groups(&mut est, 20, 900); // build
        f.groups(&mut est, 18, -900); // drain long enough to flip the window
        assert_eq!(est.state(), CongestionState::Underuse);
        assert!(est.gradient() < -GRADIENT_THRESHOLD);
        f.groups(&mut est, 40, 0); // settle
        assert_eq!(est.state(), CongestionState::Normal);
    }

    #[test]
    fn clock_offset_between_domains_cancels() {
        // Receiver clock runs 7 hours ahead of the sender clock: the
        // estimator must behave exactly as with aligned clocks.
        let offset = 7 * 3600 * 1_000_000u64;
        let mut est = DelayGradientEstimator::new();
        let mut dep = 0u64;
        let mut arr = offset;
        for _ in 0..40 {
            est.on_packet(dep, arr, 4_096);
            dep += BURST_WINDOW_US + 500;
            arr += BURST_WINDOW_US + 500;
        }
        assert_eq!(est.state(), CongestionState::Normal);
        assert_eq!(est.queue_delay_us(), 0);
    }

    #[test]
    fn reordered_packets_fold_into_the_open_group() {
        let mut est = DelayGradientEstimator::new();
        est.on_packet(10_000, 20_000, 1_000);
        // A packet that departed *earlier* than the group's first must
        // not start a new group or panic.
        est.on_packet(8_000, 21_000, 1_000);
        est.on_packet(30_000, 40_000, 1_000); // completes the group
        assert_eq!(est.groups(), 1);
    }

    #[test]
    fn a_single_wild_timestamp_cannot_poison_the_estimator() {
        let mut est = DelayGradientEstimator::new();
        Feed::new().groups(&mut est, 20, 0);
        // One frame claims to have arrived 10 minutes late.
        let dep = 20 * (BURST_WINDOW_US + 1_000) + 50_000;
        est.on_packet(dep, dep + 600_000_000, 1_000);
        est.on_packet(
            dep + BURST_WINDOW_US + 1_000,
            dep + 600_000_000 + 6_000,
            1_000,
        );
        est.on_packet(
            dep + 2 * (BURST_WINDOW_US + 1_000),
            dep + 600_000_000 + 12_000,
            1_000,
        );
        // The clamp bounds the damage to ±1 s of cumulative delay.
        assert!(est.queue_delay_us() <= 2 * MAX_GROUP_DELTA_US as u64);
    }

    #[test]
    fn hub_prefers_fresh_remote_over_local() {
        let hub = SignalHub::new();
        assert!(hub.snapshot().is_none());

        // Local-only: snapshot falls back to the emission signal.
        let t0 = hub.origin;
        for i in 0..4u64 {
            let q = t0 + Duration::from_micros(i * (BURST_WINDOW_US + 2_000));
            let w = q + Duration::from_micros(300);
            hub.record_local(q, w, 8_192);
        }
        let snap = hub.snapshot().expect("local signal");
        assert_eq!(snap.source, SignalSource::Local);

        // Remote groups arrive: remote wins while fresh.
        for i in 0..4u64 {
            let dep = i * (BURST_WINDOW_US + 2_000);
            hub.record_remote(dep, dep + 150, 8_192);
        }
        let snap = hub.snapshot().expect("remote signal");
        assert_eq!(snap.source, SignalSource::Remote);
        assert!(snap.age <= REMOTE_FRESH);
    }

    #[test]
    fn hub_timestamps_are_monotonic_enough() {
        let hub = SignalHub::new();
        let a = hub.now_us();
        let b = hub.now_us();
        assert!(b >= a);
    }
}
