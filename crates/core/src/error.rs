//! Structured AdOC errors.
//!
//! The transfer paths speak `io::Result` end to end (they wrap sockets),
//! so these errors travel inside [`std::io::Error`] as the custom payload;
//! [`AdocError::from_io`] recovers the typed form on the far side of any
//! `?`-chain.

use std::fmt;
use std::io;

/// Errors AdOC raises itself (as opposed to forwarding from the
/// underlying socket or codec).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdocError {
    /// A compression buffer's raw or encoded size exceeds what the u32
    /// frame-header length fields can carry (≥ 4 GiB). Raised by the
    /// sender *before* encoding instead of silently truncating on the
    /// wire. Shrink `AdocConfig::buffer_size`.
    FrameTooLarge {
        /// The offending length in bytes.
        len: u64,
    },
    /// The two endpoints of a stream group announced different stream
    /// counts during the connect handshake.
    StreamCountMismatch {
        /// Stream count this endpoint announced.
        ours: u8,
        /// Stream count the peer announced.
        theirs: u8,
    },
    /// An [`crate::AdocConfig`] failed validation at construction —
    /// raised by the socket/group/server constructors instead of letting
    /// a nonsensical field (zero streams, zero-capacity queue, packet
    /// smaller than a frame header…) panic deep inside the pipeline.
    InvalidConfig {
        /// Which configuration rule was violated.
        reason: String,
    },
    /// A stream-group peer connected but never sent its `GroupHello`
    /// within [`crate::AdocConfig::hello_timeout`]. Raised by
    /// [`crate::AdocStreamGroup::accept`] (and the server daemon) so a
    /// half-dead client cannot wedge the accept path forever.
    HelloTimeout {
        /// The timeout that elapsed.
        timeout: std::time::Duration,
    },
    /// The server refused the session handshake before admission: a bad
    /// or missing hello MAC, a tampered ticket, or a plaintext hello on
    /// a `require_auth` deployment.
    AuthFailed {
        /// What the server (or local verification) objected to.
        reason: String,
    },
    /// The server refused to resume a session: the ticket expired, the
    /// session is unknown or was already reclaimed, the peer address
    /// changed, or the server is draining.
    ResumeRejected {
        /// Why the resume was refused.
        reason: String,
    },
}

impl fmt::Display for AdocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdocError::FrameTooLarge { len } => write!(
                f,
                "frame of {len} bytes exceeds the u32 wire limit ({} bytes); \
                 reduce AdocConfig::buffer_size",
                crate::wire::MAX_FRAME_LEN
            ),
            AdocError::StreamCountMismatch { ours, theirs } => write!(
                f,
                "stream-group negotiation failed: we announced {ours} streams, peer announced {theirs}"
            ),
            AdocError::InvalidConfig { reason } => {
                write!(f, "invalid AdocConfig: {reason}")
            }
            AdocError::HelloTimeout { timeout } => write!(
                f,
                "peer connected but sent no stream-group hello within {timeout:?}"
            ),
            AdocError::AuthFailed { reason } => {
                write!(f, "session authentication failed: {reason}")
            }
            AdocError::ResumeRejected { reason } => {
                write!(f, "session resume rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for AdocError {}

impl From<AdocError> for io::Error {
    fn from(e: AdocError) -> io::Error {
        let kind = match &e {
            AdocError::HelloTimeout { .. } => io::ErrorKind::TimedOut,
            AdocError::AuthFailed { .. } => io::ErrorKind::PermissionDenied,
            AdocError::ResumeRejected { .. } => io::ErrorKind::InvalidData,
            _ => io::ErrorKind::InvalidInput,
        };
        io::Error::new(kind, e)
    }
}

impl AdocError {
    /// Recovers an [`AdocError`] carried inside an [`io::Error`], if any.
    pub fn from_io(e: &io::Error) -> Option<&AdocError> {
        e.get_ref()?.downcast_ref::<AdocError>()
    }

    /// Classifies an I/O error from a timed hello read: timeouts become
    /// the typed [`AdocError::HelloTimeout`], everything else passes
    /// through. The single place the mapping lives — the library
    /// acceptor and the server daemon both use it.
    pub fn map_hello_timeout(e: io::Error, timeout: std::time::Duration) -> io::Error {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            AdocError::HelloTimeout { timeout }.into()
        } else {
            e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_io_error() {
        let e: io::Error = AdocError::FrameTooLarge { len: 5 << 30 }.into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        match AdocError::from_io(&e) {
            Some(AdocError::FrameTooLarge { len }) => assert_eq!(*len, 5 << 30),
            other => panic!("lost the typed error: {other:?}"),
        }
    }

    #[test]
    fn foreign_io_errors_are_not_misidentified() {
        let plain = io::Error::new(io::ErrorKind::InvalidInput, "something else");
        assert!(AdocError::from_io(&plain).is_none());
    }

    #[test]
    fn display_mentions_the_limit() {
        let msg = AdocError::FrameTooLarge { len: 1 << 33 }.to_string();
        assert!(msg.contains("4294967295"), "{msg}");
        let msg = AdocError::StreamCountMismatch { ours: 4, theirs: 2 }.to_string();
        assert!(msg.contains('4') && msg.contains('2'), "{msg}");
        let msg = AdocError::InvalidConfig {
            reason: "streams must be in 1..=255".into(),
        }
        .to_string();
        assert!(msg.contains("streams"), "{msg}");
    }

    #[test]
    fn hello_timeout_maps_to_timed_out() {
        let e: io::Error = AdocError::HelloTimeout {
            timeout: std::time::Duration::from_millis(250),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        match AdocError::from_io(&e) {
            Some(AdocError::HelloTimeout { timeout }) => {
                assert_eq!(*timeout, std::time::Duration::from_millis(250));
            }
            other => panic!("lost the typed error: {other:?}"),
        }
    }

    #[test]
    fn session_errors_carry_kind_and_reason() {
        let e: io::Error = AdocError::AuthFailed {
            reason: "bad hello MAC".into(),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
        assert!(matches!(
            AdocError::from_io(&e),
            Some(AdocError::AuthFailed { .. })
        ));
        let e: io::Error = AdocError::ResumeRejected {
            reason: "unknown session".into(),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("unknown session"));
    }

    #[test]
    fn invalid_config_roundtrips() {
        let e: io::Error = AdocError::InvalidConfig {
            reason: "queue_cap must exceed high_water".into(),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        assert!(matches!(
            AdocError::from_io(&e),
            Some(AdocError::InvalidConfig { .. })
        ));
    }
}
