//! Slab buffer pool for the adaptive hot path.
//!
//! Every frame the sender emits and every payload the receiver ingests
//! lives in a [`PooledBuf`] checked out of a shared [`BufferPool`]. When
//! the last reference drops — after the socket write, or after
//! decompression — the underlying allocation returns to the pool instead
//! of the allocator, so a steady-state transfer performs **zero
//! per-packet heap allocations**: the whole point of compressing *during*
//! emission (paper §3) is that the CPU spent must undercut the bandwidth
//! saved, and allocator churn was pure overhead the original C library
//! (writing straight from zlib's internal buffers) never paid.
//!
//! Aliasing is impossible by construction: a buffer re-enters the free
//! list only from `PooledBuf::drop`, and shared views
//! ([`crate::queue::Packet`]) hold the buffer via `Arc`, so the last view
//! must be gone first. [`PoolStats::outstanding`] exposes the live-buffer
//! gauge the tests assert on.
//!
//! For long-lived multi-connection processes (the `adoc-server` daemon)
//! the pool's idle caps are **reconfigurable at runtime** — a buffer
//! *count* ([`BufferPool::set_max_idle`]) and, because one 8 MiB buffer
//! pins as much memory as forty default-sized ones, a **byte budget**
//! ([`BufferPool::set_max_idle_bytes`]) enforced with size-class-aware
//! *largest-first* eviction: after a big-transfer burst the oversized
//! buffers go back to the allocator first while the steady-state size
//! classes stay warm. Every buffer released past either cap is counted
//! in [`PoolStats::evicted`], so the shrink-back is observable.
//! [`PoolStats::peak_outstanding`] records the high-water mark of live
//! buffers — the number the stress tests bound.

use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default bound on idle buffers kept by [`BufferPool::new`]; more than a
/// full emission pipeline ever holds, small enough that an idle
/// connection pins only a few MB.
pub const DEFAULT_MAX_IDLE: usize = 32;

/// Counters describing pool behaviour since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the free list (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list on drop.
    pub returns: u64,
    /// Buffers released to the allocator instead of the free list —
    /// either because the list was at its idle cap when they came back,
    /// or because [`BufferPool::set_max_idle`] trimmed the list.
    pub evicted: u64,
    /// Buffers currently checked out (hits + misses − drops).
    pub outstanding: i64,
    /// Highest `outstanding` ever observed — the pool's memory
    /// high-water mark in buffers.
    pub peak_outstanding: i64,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    evicted: AtomicU64,
    outstanding: AtomicI64,
    peak_outstanding: AtomicI64,
}

struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    counters: Counters,
    max_idle: AtomicUsize,
    /// Byte budget for the free list (`usize::MAX` = unbounded). Written
    /// and enforced only under the `free` lock; the atomic lets readers
    /// ([`BufferPool::max_idle_bytes`]) skip the lock.
    max_idle_bytes: AtomicUsize,
    /// Sum of `capacity()` across the free list, maintained under the
    /// `free` lock so metrics scrapes read a gauge instead of walking
    /// the list.
    idle_bytes: AtomicUsize,
}

impl PoolShared {
    /// Evicts free buffers **largest first** until the free list fits the
    /// byte budget. Must run under the `free` lock; returns the evicted
    /// allocations so the caller releases them after unlocking.
    fn trim_to_byte_budget(&self, free: &mut Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let budget = self.max_idle_bytes.load(Ordering::Relaxed);
        let mut evicted = Vec::new();
        while self.idle_bytes.load(Ordering::Relaxed) > budget && !free.is_empty() {
            let largest = free
                .iter()
                .enumerate()
                .max_by_key(|(_, v)| v.capacity())
                .map(|(i, _)| i)
                .expect("non-empty free list");
            let v = free.swap_remove(largest);
            self.idle_bytes.fetch_sub(v.capacity(), Ordering::Relaxed);
            evicted.push(v);
        }
        evicted
    }
}

/// A shared, bounded free list of byte buffers. Cloning is cheap (one
/// `Arc`) and clones feed the same slab, so every send/receive on a
/// connection — and every connection cloned from one config — reuses the
/// same storage.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_IDLE)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("idle", &self.shared.free.lock().len())
            .field("max_idle", &self.max_idle())
            .field("stats", &s)
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool retaining at most `max_idle` free buffers.
    pub fn new(max_idle: usize) -> Self {
        BufferPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                counters: Counters::default(),
                max_idle: AtomicUsize::new(max_idle),
                max_idle_bytes: AtomicUsize::new(usize::MAX),
                idle_bytes: AtomicUsize::new(0),
            }),
        }
    }

    /// Checks out an empty buffer with at least `capacity` bytes
    /// reserved. Served from the free list when possible.
    ///
    /// A checkout counts as a hit only when a free buffer already has
    /// the capacity (one slab serves several buffer sizes — probe,
    /// payload, frame — so the list is searched, not just popped);
    /// growing a too-small recycled buffer reallocates and is counted
    /// as a miss, keeping the miss counter an honest allocation count.
    pub fn get(&self, capacity: usize) -> PooledBuf {
        let recycled = {
            let mut free = self.shared.free.lock();
            // Best fit: the smallest sufficient buffer, so a small
            // checkout never steals the one large buffer a later large
            // checkout needs (the slab serves several size classes and
            // the classes must stay stable across a transfer).
            let mut best: Option<(usize, usize)> = None;
            for (i, v) in free.iter().enumerate() {
                let cap = v.capacity();
                if cap >= capacity && best.is_none_or(|(_, c)| cap < c) {
                    best = Some((i, cap));
                }
            }
            let taken = match best {
                Some((i, _)) => Some(free.swap_remove(i)),
                None => free.pop(),
            };
            if let Some(v) = &taken {
                self.shared
                    .idle_bytes
                    .fetch_sub(v.capacity(), Ordering::Relaxed);
            }
            taken
        };
        let c = &self.shared.counters;
        let now = c.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        c.peak_outstanding.fetch_max(now, Ordering::Relaxed);
        let vec = match recycled {
            Some(v) if v.capacity() >= capacity => {
                c.hits.fetch_add(1, Ordering::Relaxed);
                debug_assert!(v.is_empty(), "free-list buffer must come back cleared");
                v
            }
            Some(mut v) => {
                c.misses.fetch_add(1, Ordering::Relaxed);
                v.reserve(capacity);
                v
            }
            None => {
                c.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        };
        PooledBuf {
            vec,
            home: Some(Arc::clone(&self.shared)),
        }
    }

    /// Counters since creation (monotonic except `outstanding`).
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            returns: c.returns.load(Ordering::Relaxed),
            evicted: c.evicted.load(Ordering::Relaxed),
            outstanding: c.outstanding.load(Ordering::Relaxed),
            peak_outstanding: c.peak_outstanding.load(Ordering::Relaxed),
        }
    }

    /// Number of idle buffers currently in the free list.
    pub fn idle(&self) -> usize {
        self.shared.free.lock().len()
    }

    /// Current idle-buffer cap.
    pub fn max_idle(&self) -> usize {
        self.shared.max_idle.load(Ordering::Relaxed)
    }

    /// Changes the idle-buffer cap at runtime, immediately releasing any
    /// free buffers beyond the new cap (counted in
    /// [`PoolStats::evicted`]). Lowering the cap is how a long-lived
    /// daemon sheds the memory of a past burst; outstanding buffers are
    /// unaffected.
    pub fn set_max_idle(&self, max_idle: usize) {
        self.shared.max_idle.store(max_idle, Ordering::Relaxed);
        let excess: Vec<Vec<u8>> = {
            let mut free = self.shared.free.lock();
            if free.len() <= max_idle {
                return;
            }
            let excess = free.split_off(max_idle);
            let bytes: usize = excess.iter().map(|v| v.capacity()).sum();
            self.shared.idle_bytes.fetch_sub(bytes, Ordering::Relaxed);
            excess
        };
        self.shared
            .counters
            .evicted
            .fetch_add(excess.len() as u64, Ordering::Relaxed);
        // Allocations are released outside the lock.
        drop(excess);
    }

    /// Current idle byte budget (`usize::MAX` = unbounded).
    pub fn max_idle_bytes(&self) -> usize {
        self.shared.max_idle_bytes.load(Ordering::Relaxed)
    }

    /// Bounds the free list by **bytes** instead of buffer count,
    /// immediately evicting idle buffers *largest first* until the list
    /// fits (counted in [`PoolStats::evicted`]). The count cap still
    /// applies independently; `usize::MAX` removes the byte bound. This
    /// is the knob that keeps a long-lived daemon's memory flat after a
    /// burst of big transfers: the burst's oversized buffers are exactly
    /// the ones released first.
    pub fn set_max_idle_bytes(&self, max_idle_bytes: usize) {
        self.shared
            .max_idle_bytes
            .store(max_idle_bytes, Ordering::Relaxed);
        let evicted = {
            let mut free = self.shared.free.lock();
            self.shared.trim_to_byte_budget(&mut free)
        };
        if !evicted.is_empty() {
            self.shared
                .counters
                .evicted
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
        drop(evicted);
    }

    /// Total bytes currently pinned by idle free-list buffers.
    pub fn idle_bytes(&self) -> usize {
        self.shared.idle_bytes.load(Ordering::Relaxed)
    }
}

/// An owned byte buffer that returns its allocation to the originating
/// [`BufferPool`] on drop. Dereferences to `Vec<u8>`.
pub struct PooledBuf {
    vec: Vec<u8>,
    /// `None` for detached buffers (constructed from a plain `Vec`,
    /// e.g. in tests): dropped normally instead of pooled.
    home: Option<Arc<PoolShared>>,
}

impl PooledBuf {
    /// Wraps a plain vector without pool affiliation; dropping it frees
    /// the memory normally.
    pub fn detached(vec: Vec<u8>) -> Self {
        PooledBuf { vec, home: None }
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.vec.len())
            .field("capacity", &self.vec.capacity())
            .field("pooled", &self.home.is_some())
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let Some(shared) = self.home.take() else {
            return;
        };
        shared.counters.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = shared.free.lock();
        // The caps are read under the free-list lock — the
        // synchronization point the trims use — so a concurrent cap
        // change can never be overshot by drops that loaded a stale cap.
        let max_idle = shared.max_idle.load(Ordering::Relaxed);
        if free.len() < max_idle {
            let mut vec = std::mem::take(&mut self.vec);
            vec.clear();
            shared
                .idle_bytes
                .fetch_add(vec.capacity(), Ordering::Relaxed);
            free.push(vec);
            // Byte budget: evict largest-first until the list fits. The
            // just-returned buffer participates — after a big-transfer
            // burst it is usually the oversized one that must go.
            let evicted = shared.trim_to_byte_budget(&mut free);
            drop(free);
            shared.counters.returns.fetch_add(1, Ordering::Relaxed);
            if !evicted.is_empty() {
                shared
                    .counters
                    .evicted
                    .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            }
            drop(evicted);
        } else {
            // Free list full: the allocation is released normally, and
            // the release is observable as an eviction.
            drop(free);
            shared.counters.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_checkout_misses_then_hits() {
        let pool = BufferPool::new(8);
        {
            let mut b = pool.get(100);
            b.extend_from_slice(&[1, 2, 3]);
        }
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().returns, 1);
        let b = pool.get(10);
        assert_eq!(pool.stats().hits, 1);
        assert!(b.is_empty(), "recycled buffer must be cleared");
        assert!(b.capacity() >= 10);
    }

    #[test]
    fn outstanding_tracks_live_buffers() {
        let pool = BufferPool::new(8);
        let a = pool.get(1);
        let b = pool.get(1);
        assert_eq!(pool.stats().outstanding, 2);
        drop(a);
        assert_eq!(pool.stats().outstanding, 1);
        drop(b);
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().peak_outstanding, 2);
    }

    #[test]
    fn idle_list_is_bounded_and_overflow_counts_as_eviction() {
        let pool = BufferPool::new(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.get(64)).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2, "free list must cap at max_idle");
        assert_eq!(pool.stats().returns, 2);
        assert_eq!(pool.stats().evicted, 3, "overflow drops are evictions");
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.stats().peak_outstanding, 5);
    }

    #[test]
    fn set_max_idle_trims_immediately() {
        let pool = BufferPool::new(8);
        let bufs: Vec<_> = (0..6).map(|_| pool.get(1 << 10)).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 6);
        let pinned = pool.idle_bytes();
        assert!(pinned >= 6 << 10);
        pool.set_max_idle(2);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.max_idle(), 2);
        assert_eq!(pool.stats().evicted, 4);
        assert!(pool.idle_bytes() < pinned);
        // Raising the cap later lets returns flow again.
        pool.set_max_idle(8);
        let live = [pool.get(16), pool.get(16), pool.get(16)];
        drop(live);
        assert_eq!(pool.idle(), 3, "all three must return under the new cap");
    }

    #[test]
    fn zero_cap_pool_pools_nothing() {
        let pool = BufferPool::new(0);
        drop(pool.get(128));
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.stats().returns, 0);
        assert_eq!(pool.stats().evicted, 1);
        // Still works, just allocates every time.
        drop(pool.get(128));
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn checkout_prefers_a_buffer_that_already_fits() {
        let pool = BufferPool::new(8);
        // Seed the free list with one small and one large buffer.
        {
            let small = pool.get(64);
            let mut large = pool.get(4096);
            large.reserve(4096);
            drop(small);
            drop(large);
        }
        // A large request must find the large buffer (a hit), not grow
        // the small one.
        let b = pool.get(4096);
        assert!(b.capacity() >= 4096);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 2, "only the seeding allocated");
    }

    #[test]
    fn growing_a_too_small_recycled_buffer_counts_as_miss() {
        let pool = BufferPool::new(8);
        drop(pool.get(16)); // free list now holds one 16-byte buffer
        let b = pool.get(1 << 20); // must reallocate
        assert!(b.capacity() >= 1 << 20);
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let pool = BufferPool::new(8);
        let before = pool.stats();
        drop(PooledBuf::detached(vec![9u8; 32]));
        assert_eq!(pool.stats(), before);
    }

    #[test]
    fn clones_share_the_slab() {
        let pool = BufferPool::new(8);
        drop(pool.get(1));
        let clone = pool.clone();
        drop(clone.get(1));
        assert_eq!(pool.stats().misses, 1, "clone must reuse the free list");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn byte_budget_evicts_largest_first_after_a_burst() {
        let pool = BufferPool::new(16);
        pool.set_max_idle_bytes(64 << 10);
        // Steady-state size classes plus a big-transfer burst.
        {
            let small: Vec<_> = (0..4).map(|_| pool.get(8 << 10)).collect();
            let big = pool.get(1 << 20);
            let bigger = pool.get(4 << 20);
            drop(small);
            // The burst buffers return last — like a real transfer whose
            // frames outlive the steady-state packets.
            drop(big);
            drop(bigger);
        }
        // Largest-first: both burst buffers are gone (each alone exceeds
        // the 64 KiB budget), the 8 KiB classes all stayed warm.
        assert!(pool.idle_bytes() <= 64 << 10, "{} bytes", pool.idle_bytes());
        assert_eq!(pool.idle(), 4, "steady-state buffers must survive");
        let caps: Vec<usize> = {
            let mut caps: Vec<usize> = Vec::new();
            for _ in 0..4 {
                caps.push(pool.get(1).capacity());
            }
            caps
        };
        assert!(
            caps.iter().all(|&c| c < 1 << 20),
            "a burst buffer survived the budget: {caps:?}"
        );
        assert_eq!(pool.stats().evicted, 2, "exactly the two burst buffers");
    }

    #[test]
    fn lowering_the_byte_budget_trims_immediately_largest_first() {
        let pool = BufferPool::new(16);
        // Held simultaneously so three distinct allocations exist.
        let (a, b, c) = (pool.get(4 << 10), pool.get(64 << 10), pool.get(16 << 10));
        drop((a, b, c));
        let before = pool.idle_bytes();
        assert!(before >= 84 << 10);
        pool.set_max_idle_bytes(24 << 10);
        assert_eq!(pool.max_idle_bytes(), 24 << 10);
        // The 64 KiB buffer goes first; 4 + 16 KiB fit the budget.
        assert_eq!(pool.idle(), 2);
        assert!(pool.idle_bytes() <= 24 << 10);
        assert_eq!(pool.stats().evicted, 1);
        // Unbounding lets big buffers pool again.
        pool.set_max_idle_bytes(usize::MAX);
        drop(pool.get(1 << 20));
        assert!(pool.idle_bytes() >= 1 << 20);
    }

    #[test]
    fn idle_bytes_gauge_tracks_checkouts_and_returns() {
        let pool = BufferPool::new(8);
        assert_eq!(pool.idle_bytes(), 0);
        let a = pool.get(10 << 10);
        let cap = a.capacity();
        drop(a);
        assert_eq!(pool.idle_bytes(), cap);
        let _again = pool.get(10 << 10);
        assert_eq!(pool.idle_bytes(), 0, "checkout must release the gauge");
    }

    #[test]
    fn steady_state_needs_no_allocation() {
        let pool = BufferPool::new(4);
        for round in 0..100 {
            let a = pool.get(1024);
            let b = pool.get(1024);
            drop((a, b));
            if round > 0 {
                assert_eq!(pool.stats().misses, 2, "round {round} allocated");
            }
        }
    }
}
