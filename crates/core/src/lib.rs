//! # adoc — Adaptive Online Compression for data transfer
//!
//! A from-scratch Rust reproduction of the **AdOC** library
//! (E. Jeannot, *Improving Middleware Performance with AdOC: an Adaptive
//! Online Compression Library for Data Transfer*, INRIA RR-5500 /
//! IPPS 2005).
//!
//! AdOC replaces plain socket `read`/`write` with calls that compress
//! **during** transmission, constantly adapting the compression level to
//! the network, the hosts and the data:
//!
//! * a **compression thread** splits each message into 200 KB buffers,
//!   compresses them at the current level and feeds 8 KB packets into a
//!   FIFO queue ([`queue`]);
//! * an **emission thread** drains the queue onto the socket;
//! * the queue's length and growth drive the level up and down
//!   ([`adapt`], the paper's Fig. 2);
//! * the receiving side mirrors this with reception + decompression
//!   threads ([`receiver`]);
//! * production heuristics (paper §5): a direct no-thread path for
//!   messages < 512 KB, a 256 KB uncompressed probe that disables
//!   compression on > 500 Mbit/s links, a divergence guard driven by
//!   per-level visible bandwidth ([`bw`]), and an incompressible-data
//!   guard.
//!
//! Levels: 0 = none, 1 = LZF, 2..=10 = DEFLATE 1..=9 (see `adoc-codec`).
//!
//! ## Two APIs
//!
//! * [`AdocSocket`] — idiomatic: wraps any `Read`/`Write` pair.
//!   [`AdocStreamGroup`] stripes one logical connection over `N`
//!   parallel streams (per-stream compression pipelines and congestion
//!   windows; in-order reassembly via sequence numbers — see [`wire`]).
//! * [`capi`] — the paper's seven functions over integer descriptors
//!   (`adoc_write`, `adoc_read`, `adoc_send_file`, …), thread-safe via a
//!   locked global registry like the C library's static table;
//!   [`adoc_register_group`] puts a stream group behind a descriptor.
//!
//! ## Quickstart
//!
//! ```
//! use adoc::AdocSocket;
//! use adoc_sim::pipe::duplex_pipe;
//!
//! let (a, b) = duplex_pipe(1 << 20);
//! let (ar, aw) = a.split();
//! let (br, bw) = b.split();
//! let mut tx = AdocSocket::new(ar, aw);
//! let mut rx = AdocSocket::new(br, bw);
//!
//! tx.write(b"data to ship").unwrap();
//! let mut buf = [0u8; 12];
//! rx.read_exact(&mut buf).unwrap();
//! assert_eq!(&buf, b"data to ship");
//! ```

#![warn(missing_docs)]
pub mod adapt;
pub mod bw;
pub mod capi;
pub mod config;
pub mod error;
pub mod hist;
pub mod pool;
pub mod queue;
pub mod receiver;
pub mod sender;
pub mod session;
pub mod signals;
pub mod socket;
pub mod stats;
pub mod throttle;
pub mod wire;

pub use adapt::{
    DelayAwarePolicy, LevelDecision, LevelPolicy, LevelReason, PolicyCtx, ThroughputPolicy,
};
pub use capi::{
    adoc_close, adoc_read, adoc_receive_file, adoc_register, adoc_register_cfg,
    adoc_register_group, adoc_send_file, adoc_send_file_levels, adoc_write, adoc_write_levels,
};
pub use config::{AdocConfig, LevelPolicyFactory};
pub use error::AdocError;
pub use hist::{HistSnapshot, HistSummary, Histogram};
pub use pool::{BufferPool, PoolStats, PooledBuf};
pub use receiver::RecvProgress;
pub use session::{SessionTicket, TicketError, TicketKey, TICKET_LEN};
pub use signals::{CongestionState, DelaySnapshot, SignalHub, SignalSource};
pub use socket::{AdocSocket, AdocStreamGroup, ResumePoint, SendReport, SessionInfo};
pub use stats::{LevelEvent, StreamSendStats, TransferStats};
pub use throttle::{NoThrottle, SleepThrottle, Throttle};

/// Lowest compression level (no compression).
pub const ADOC_MIN_LEVEL: u8 = adoc_codec::ADOC_MIN_LEVEL;
/// Highest compression level (DEFLATE 9).
pub const ADOC_MAX_LEVEL: u8 = adoc_codec::ADOC_MAX_LEVEL;
