//! Lock-free log-linear latency histograms (HdrHistogram-style).
//!
//! One fixed bucket layout shared by everything that measures time in
//! this workspace — the server's per-stage spans, `adoc-loadgen`'s
//! round-trip probes, and any future scenario harness — so percentiles
//! computed on one side are directly comparable with (and mergeable
//! into) percentiles computed on the other.
//!
//! ## Bucketing
//!
//! Values are microseconds. The first 32 buckets are exact (0–31 µs);
//! above that each power-of-two octave is split into 32 linear
//! sub-buckets, so the relative quantization error is bounded by
//! 1/32 ≈ 3.1 % across the whole range. Values cap at
//! [`MAX_VALUE`] ≈ 134 s (anything larger is clamped into the top
//! bucket), which comfortably covers the ~1 µs – 100 s span a transfer
//! daemon can produce. The layout is **static** — 736 buckets, ~5.8 KB
//! of counters per histogram — so recording is one index computation
//! plus a handful of relaxed atomic adds: no allocation, no locks, no
//! resizing, safe from any thread.
//!
//! ## Snapshots and merging
//!
//! [`Histogram::snapshot`] copies the counters into a plain
//! [`HistSnapshot`], which supports [`HistSnapshot::merge`]
//! (commutative and associative — property-tested), nearest-rank
//! [`HistSnapshot::percentile`], and the convenience
//! [`HistSnapshot::summary`] (p50/p90/p99/p999). Because a snapshot is
//! taken bucket-by-bucket while writers may still be recording, it is a
//! *consistent-enough* view for monitoring: each counter is exact at
//! the moment it was read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear buckets, bounding relative error at
/// `1 / 2^SUB_BITS`.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Largest distinguishable value, in µs (≈ 134 s). Larger values clamp
/// here rather than erroring — a watchdog-scale outlier still lands in
/// the top bucket and moves the max/percentiles the right way.
pub const MAX_VALUE: u64 = (1 << 27) - 1;

/// Total buckets in the fixed layout: indices 0..=735.
const NUM_BUCKETS: usize = bucket_index(MAX_VALUE) + 1;

/// Maps a (clamped) value to its bucket index.
const fn bucket_index(value: u64) -> usize {
    let v = if value > MAX_VALUE { MAX_VALUE } else { value };
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // Highest set bit m ≥ 5: keep the top 6 bits (1 implicit + 5 sub).
    let m = 63 - v.leading_zeros();
    let shift = m - SUB_BITS;
    let top = v >> shift; // in [32, 64)
    ((shift as u64 + 1) * SUB_BUCKETS + (top - SUB_BUCKETS)) as usize
}

/// Inclusive upper bound of the values that land in bucket `idx` —
/// the value percentile queries report for the bucket.
const fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let octave = (idx as u64) / SUB_BUCKETS;
    let off = (idx as u64) % SUB_BUCKETS;
    let shift = (octave - 1) as u32;
    let low = (SUB_BUCKETS + off) << shift;
    low + (1u64 << shift) - 1
}

/// A mergeable, lock-free log-linear histogram of µs values.
///
/// All methods take `&self`; recording from many threads concurrently
/// is the intended use. See the module docs for the bucket layout.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram (all counters zero).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (µs). Values above [`MAX_VALUE`] clamp into
    /// the top bucket. Lock-free: a few relaxed atomic RMWs.
    pub fn record(&self, value_us: u64) {
        let v = value_us.min(MAX_VALUE);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration at µs resolution.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(MAX_VALUE as u128) as u64);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the counters into a plain, mergeable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Box<[u64]> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive count/sum from the copied buckets where possible so a
        // snapshot racing a writer stays internally consistent: the
        // percentile walk and `count` agree on the same totals.
        let count: u64 = buckets.iter().sum();
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Percentile summary of one snapshot — the five numbers every latency
/// surface in the workspace reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Values observed.
    pub count: u64,
    /// 50th percentile, µs.
    pub p50: u64,
    /// 90th percentile, µs.
    pub p90: u64,
    /// 99th percentile, µs.
    pub p99: u64,
    /// 99.9th percentile, µs.
    pub p999: u64,
    /// Largest observed value, µs.
    pub max: u64,
}

/// A plain (non-atomic) copy of a histogram's counters: mergeable,
/// queryable, cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Adds every counter of `other` into `self`. Merging is
    /// commutative and associative, so per-thread or per-connection
    /// histograms can be folded in any order into one aggregate with
    /// identical percentiles.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, µs.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, µs (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank percentile: the smallest bucket upper bound such
    /// that at least `⌈p/100 · count⌉` recorded values are ≤ it.
    /// `p` is in percent (`50.0`, `99.9`, …); returns 0 on an empty
    /// snapshot. The result never exceeds the observed max, so exact
    /// single-value distributions report exactly that value.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let target = target.clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// The standard p50/p90/p99/p999 summary.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every bucket's upper bound strictly increases, and every
        // value maps into the bucket whose range contains it.
        let mut prev = None;
        for idx in 0..NUM_BUCKETS {
            let hi = bucket_upper(idx);
            if let Some(p) = prev {
                assert!(hi > p, "bucket {idx} upper {hi} <= previous {p}");
                // Contiguity: the first value of this bucket is p + 1.
                assert_eq!(bucket_index(p + 1), idx);
            }
            assert_eq!(bucket_index(hi), idx, "upper bound must map back");
            prev = Some(hi);
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), MAX_VALUE);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), SUB_BUCKETS);
        assert_eq!(s.min(), 0);
        assert_eq!(s.percentile(100.0), SUB_BUCKETS - 1);
        // 0..=31 recorded once each: p50 over 32 values is the 16th
        // rank, i.e. exactly 15 (buckets are exact below 32).
        assert_eq!(s.percentile(50.0), 15);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [
            1u64, 31, 32, 33, 1_000, 12_345, 1_000_000, 99_999_999, MAX_VALUE,
        ] {
            let hi = bucket_upper(bucket_index(v));
            assert!(hi >= v);
            let err = (hi - v) as f64 / (v.max(1)) as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "v={v} hi={hi} err={err}");
        }
    }

    #[test]
    fn values_above_the_cap_clamp_into_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record_duration(Duration::from_secs(10_000));
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), MAX_VALUE);
        assert_eq!(s.percentile(50.0), MAX_VALUE);
    }

    #[test]
    fn empty_snapshot_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum.p999, 0);
    }

    #[test]
    fn merge_accumulates_and_empty_is_identity() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 500, 50_000] {
            a.record(v);
        }
        b.record(7);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 4);
        assert_eq!(m.min(), 5);
        assert_eq!(m.max(), 50_000);
        let mut id = m.clone();
        id.merge(&HistSnapshot::empty());
        assert_eq!(id, m, "merging an empty snapshot changes nothing");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 997));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    /// Strategy spanning the full bucket range (exact region, every
    /// octave, the cap) rather than uniform-u64 (which would almost
    /// never sample small values).
    fn values() -> impl Strategy<Value = u64> {
        prop_oneof![
            0u64..64,
            (0u32..27u32, 0u64..SUB_BUCKETS).prop_map(|(oct, off)| (1u64 << oct) + off),
            0u64..=MAX_VALUE,
            Just(MAX_VALUE),
        ]
    }

    fn snap_of(vals: &[u64]) -> HistSnapshot {
        let h = Histogram::new();
        for &v in vals {
            h.record(v);
        }
        h.snapshot()
    }

    proptest! {
        #[test]
        fn prop_recorded_value_bounds(vals in proptest::collection::vec(values(), 1..200)) {
            // Any percentile of the recorded set lies within the data's
            // range, and within the bucketing's 1/32 relative error of
            // some recorded value's bucket.
            let s = snap_of(&vals);
            let lo = *vals.iter().min().unwrap();
            let hi = *vals.iter().max().unwrap();
            for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                let q = s.percentile(p);
                prop_assert!(q <= hi, "p{p}: {q} > max {hi}");
                // The reported value is a bucket upper bound capped at
                // the observed max, so it can never undershoot the
                // smallest recorded value.
                prop_assert!(q >= lo, "p{p}: {q} < min {lo}");
            }
            // The max percentile equals the observed max exactly.
            prop_assert_eq!(s.percentile(100.0), hi);
        }

        #[test]
        fn prop_percentiles_are_monotone(vals in proptest::collection::vec(values(), 1..200)) {
            let s = snap_of(&vals);
            let mut prev = 0u64;
            for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
                let q = s.percentile(p);
                prop_assert!(q >= prev, "p{p} = {q} < previous {prev}");
                prev = q;
            }
        }

        #[test]
        fn prop_merge_is_commutative(
            a in proptest::collection::vec(values(), 0..100),
            b in proptest::collection::vec(values(), 0..100),
        ) {
            let (sa, sb) = (snap_of(&a), snap_of(&b));
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(&ab, &ba);
            // And merging matches recording everything into one
            // histogram directly.
            let mut all = a.clone();
            all.extend_from_slice(&b);
            prop_assert_eq!(&ab, &snap_of(&all));
        }

        #[test]
        fn prop_merge_is_associative(
            a in proptest::collection::vec(values(), 0..60),
            b in proptest::collection::vec(values(), 0..60),
            c in proptest::collection::vec(values(), 0..60),
        ) {
            let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
            let mut left = sa.clone(); // (a ∪ b) ∪ c
            left.merge(&sb);
            left.merge(&sc);
            let mut bc = sb.clone(); // a ∪ (b ∪ c)
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn prop_quantization_error_bounded(v in 0u64..=MAX_VALUE) {
            let hi = bucket_upper(bucket_index(v));
            prop_assert!(hi >= v);
            prop_assert!((hi - v) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0);
            // Single-value distributions report that value exactly at
            // every percentile (upper bound capped by the observed max).
            let s = snap_of(&[v]);
            for p in [50.0, 99.0, 100.0] {
                prop_assert_eq!(s.percentile(p), v);
            }
        }
    }
}
