//! Server-minted session tickets: the credential that lets a transfer
//! survive its TCP connections.
//!
//! A ticket names a session (`session_id`), carries an absolute expiry
//! (`expires_us`, µs since the Unix epoch) and a 16-byte MAC binding both
//! to the server's [`TicketKey`]. The server hands the ticket out in the
//! `SessionAccept` reply of a v4 handshake (see [`crate::wire`]); a
//! reconnecting client presents it verbatim to resume the session —
//! scheduler share, lifetime counters and, when the cut landed
//! mid-message, the message itself.
//!
//! ## On the MAC construction
//!
//! The MAC is an HMAC-shaped double hash (inner pass keyed with the
//! `0x36` pad, outer pass with `0x5c`) whose compression function is
//! built from the in-tree `adoc-codec` checksum primitives — four lanes
//! of domain-separated CRC-32/Adler-32 pairs widened through a
//! SplitMix64 finalizer. **This is not a cryptographic MAC**: CRC-32 and
//! Adler-32 are linear codes, and a determined adversary with enough
//! ticket samples could forge tags. It raises the bar from "guess one
//! magic byte" (the pre-session handshake) to "recover a 256-bit key
//! through 128 bits of mixed checksum state", which is the right
//! cost/benefit for a compression library that must not grow a crypto
//! dependency. Deployments needing real authentication should tunnel
//! through TLS and treat `require_auth` as defence in depth.

use adoc_codec::checksum::{ct_eq, Adler32, Crc32};
use std::time::{SystemTime, UNIX_EPOCH};

/// Encoded size of a [`SessionTicket`]: `session_id` + `expires_us` +
/// 16-byte MAC.
pub const TICKET_LEN: usize = 32;

/// Size of the MAC tag carried by tickets and v4 hellos.
pub const TICKET_MAC_LEN: usize = 16;

/// Domain tag mixed into ticket MACs (never shared with hello MACs, so a
/// ticket can't be replayed as a hello credential or vice versa).
const TICKET_DOMAIN: &[u8] = b"adoc-ticket-v1";

/// Domain tag mixed into the MAC a v4 *new-session* hello carries when
/// the server demands authentication.
const HELLO_DOMAIN: &[u8] = b"adoc-hello-v1";

/// Why a ticket failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketError {
    /// The MAC does not match: tampered, truncated-and-refilled, or
    /// minted under a different key.
    BadMac,
    /// The MAC is genuine but the expiry has passed.
    Expired,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketError::BadMac => write!(f, "ticket MAC verification failed"),
            TicketError::Expired => write!(f, "ticket expired"),
        }
    }
}

impl std::error::Error for TicketError {}

/// SplitMix64 finalizer: a cheap, well-dispersed 64-bit mixer that
/// breaks up the linear structure of the checksum lanes.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The server's ticket-minting key: 256 bits derived from a shared
/// secret, or freshly random per process.
#[derive(Clone)]
pub struct TicketKey([u8; 32]);

impl std::fmt::Debug for TicketKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "TicketKey(..)")
    }
}

impl TicketKey {
    /// Derives a key deterministically from a shared secret: both sides
    /// of a `require_auth` deployment call this with the same bytes and
    /// obtain the same key.
    pub fn from_secret(secret: &[u8]) -> TicketKey {
        let mut key = [0u8; 32];
        for lane in 0..4u8 {
            let mut c = Crc32::new();
            c.update(&[lane, lane ^ 0x36]);
            c.update(secret);
            let mut a = Adler32::new();
            a.update(&[lane, lane ^ 0x5c]);
            a.update(secret);
            let w = mix64(
                (u64::from(c.finish()) << 32)
                    | (u64::from(a.finish()) ^ u64::from(lane).wrapping_mul(0xA076_1D64_78BD_642F)),
            );
            key[lane as usize * 8..][..8].copy_from_slice(&w.to_le_bytes());
        }
        TicketKey(key)
    }

    /// A fresh random key for secretless deployments: tickets survive
    /// reconnects but not a server restart. Entropy comes from several
    /// independently-seeded `RandomState` hashers (the standard
    /// library's per-process SipHash keys) mixed with the clock — no
    /// external RNG dependency.
    pub fn random() -> TicketKey {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let mut key = [0u8; 32];
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        for lane in 0..4u64 {
            let mut h = RandomState::new().build_hasher();
            h.write_u64(nanos ^ lane);
            let w = mix64(h.finish() ^ mix64(nanos.wrapping_add(lane)));
            key[lane as usize * 8..][..8].copy_from_slice(&w.to_le_bytes());
        }
        TicketKey(key)
    }

    /// One HMAC-style pass: every lane runs a domain-separated
    /// CRC-32/Adler-32 pair over `pad`-whitened key material followed by
    /// the message parts, widened through [`mix64`].
    fn pass(&self, pad: u8, parts: &[&[u8]]) -> [u8; TICKET_MAC_LEN] {
        let mut padded = [0u8; 32];
        for (d, s) in padded.iter_mut().zip(self.0.iter()) {
            *d = s ^ pad;
        }
        let mut out = [0u8; TICKET_MAC_LEN];
        for lane in 0..2u8 {
            let mut c = Crc32::new();
            c.update(&[lane]);
            c.update(&padded);
            let mut a = Adler32::new();
            a.update(&[lane ^ 0xA5]);
            a.update(&padded);
            for p in parts {
                c.update(p);
                a.update(p);
            }
            let w = mix64((u64::from(c.finish()) << 32) | u64::from(a.finish()));
            out[lane as usize * 8..][..8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// The keyed tag over `parts`: inner pass with the `0x36` pad, outer
    /// pass with `0x5c` over the inner tag plus the message again.
    fn tag(&self, parts: &[&[u8]]) -> [u8; TICKET_MAC_LEN] {
        let inner = self.pass(0x36, parts);
        let mut outer_parts: Vec<&[u8]> = Vec::with_capacity(parts.len() + 1);
        outer_parts.push(&inner);
        outer_parts.extend_from_slice(parts);
        self.pass(0x5c, &outer_parts)
    }

    /// Mints a ticket for `session_id` expiring at `expires_us`.
    pub fn mint(&self, session_id: u64, expires_us: u64) -> SessionTicket {
        let mac = self.tag(&[
            TICKET_DOMAIN,
            &session_id.to_le_bytes(),
            &expires_us.to_le_bytes(),
        ]);
        SessionTicket {
            session_id,
            expires_us,
            mac,
        }
    }

    /// Verifies `ticket` against this key at time `now_us` (µs since the
    /// Unix epoch). MAC first, expiry second: a tampered expiry field
    /// must report [`TicketError::BadMac`], not `Expired`.
    pub fn verify(&self, ticket: &SessionTicket, now_us: u64) -> Result<(), TicketError> {
        let want = self.tag(&[
            TICKET_DOMAIN,
            &ticket.session_id.to_le_bytes(),
            &ticket.expires_us.to_le_bytes(),
        ]);
        if !ct_eq(&want, &ticket.mac) {
            return Err(TicketError::BadMac);
        }
        if now_us >= ticket.expires_us {
            return Err(TicketError::Expired);
        }
        Ok(())
    }

    /// The authentication tag a v4 *new-session* hello must carry when
    /// the server runs with `require_auth`: binds the announced stream
    /// count and group token to the shared secret. Deliberately excludes
    /// the stream id so all streams of one dial carry an identical tag.
    pub fn hello_mac(&self, streams: u8, token: u64) -> [u8; TICKET_MAC_LEN] {
        self.tag(&[HELLO_DOMAIN, &[streams], &token.to_le_bytes()])
    }
}

/// A server-minted resume credential (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// The session this ticket names.
    pub session_id: u64,
    /// Absolute expiry, µs since the Unix epoch.
    pub expires_us: u64,
    /// Keyed tag over the two fields above.
    pub mac: [u8; TICKET_MAC_LEN],
}

impl SessionTicket {
    /// Encodes into the 32-byte wire form (little-endian fields).
    pub fn encode(&self) -> [u8; TICKET_LEN] {
        let mut out = [0u8; TICKET_LEN];
        out[..8].copy_from_slice(&self.session_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.expires_us.to_le_bytes());
        out[16..].copy_from_slice(&self.mac);
        out
    }

    /// Decodes the 32-byte wire form. Fails on any other length —
    /// truncated tickets never parse.
    pub fn decode(bytes: &[u8]) -> Result<SessionTicket, TicketError> {
        if bytes.len() != TICKET_LEN {
            return Err(TicketError::BadMac);
        }
        let session_id = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let expires_us = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let mut mac = [0u8; TICKET_MAC_LEN];
        mac.copy_from_slice(&bytes[16..]);
        Ok(SessionTicket {
            session_id,
            expires_us,
            mac,
        })
    }
}

/// Current time in µs since the Unix epoch — the clock tickets expire
/// against.
pub fn unix_now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_verify_roundtrip() {
        let key = TicketKey::from_secret(b"hunter2");
        let t = key.mint(42, unix_now_us() + 1_000_000);
        assert!(key.verify(&t, unix_now_us()).is_ok());
        let decoded = SessionTicket::decode(&t.encode()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn wrong_key_and_tampering_rejected() {
        let key = TicketKey::from_secret(b"hunter2");
        let other = TicketKey::from_secret(b"hunter3");
        let t = key.mint(7, u64::MAX);
        assert_eq!(other.verify(&t, 0), Err(TicketError::BadMac));
        let mut bent = t;
        bent.session_id ^= 1;
        assert_eq!(key.verify(&bent, 0), Err(TicketError::BadMac));
        let mut bent = t;
        bent.expires_us = 0;
        // Tampered expiry reports BadMac, never Expired.
        assert_eq!(key.verify(&bent, u64::MAX), Err(TicketError::BadMac));
    }

    #[test]
    fn expiry_enforced_after_mac() {
        let key = TicketKey::from_secret(b"s");
        let t = key.mint(1, 1_000);
        assert_eq!(key.verify(&t, 999), Ok(()));
        assert_eq!(key.verify(&t, 1_000), Err(TicketError::Expired));
        assert_eq!(key.verify(&t, u64::MAX), Err(TicketError::Expired));
    }

    #[test]
    fn derivation_is_deterministic_and_random_keys_differ() {
        let a = TicketKey::from_secret(b"shared");
        let b = TicketKey::from_secret(b"shared");
        let t = a.mint(9, u64::MAX);
        assert!(b.verify(&t, 0).is_ok(), "same secret, same key");
        let r1 = TicketKey::random();
        let r2 = TicketKey::random();
        assert!(
            r1.verify(&r2.mint(9, u64::MAX), 0).is_err(),
            "random keys must disagree"
        );
    }

    #[test]
    fn hello_mac_binds_streams_and_token() {
        let key = TicketKey::from_secret(b"k");
        let m = key.hello_mac(4, 0xABCD);
        assert_ne!(m, key.hello_mac(5, 0xABCD));
        assert_ne!(m, key.hello_mac(4, 0xABCE));
        assert_eq!(m, TicketKey::from_secret(b"k").hello_mac(4, 0xABCD));
    }

    #[test]
    fn truncated_ticket_never_parses() {
        let t = TicketKey::from_secret(b"k").mint(3, 55);
        let enc = t.encode();
        for cut in 0..TICKET_LEN {
            assert!(SessionTicket::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
    }
}
