//! The idiomatic connection types: [`AdocSocket`] wraps a reader/writer
//! pair (TCP halves, simulated link halves, pipes …) and exposes the
//! paper's seven operations with Rust types; [`AdocStreamGroup`] does the
//! same over `N` parallel streams, striping every large message across
//! per-stream compression pipelines (see [`crate::sender`]) and
//! reassembling in order on the receive side.

use crate::config::AdocConfig;
use crate::error::AdocError;
use crate::receiver::{
    receive_message, receive_message_multi, receive_message_multi_resumed,
    receive_message_multi_tracked, RecvProgress,
};
use crate::sender::{send_message, send_message_multi, send_message_multi_resumed, SendOutcome};
use crate::session::{SessionTicket, TicketKey};
use crate::stats::TransferStats;
use crate::wire::{self, session_status, GroupHello, SessionAccept, SessionHello, SessionKind};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// What the server granted at the end of a session handshake: the
/// session's identity and the ticket that can later
/// [resume](AdocStreamGroup::resume_session) it on a brand-new set of
/// TCP connections.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Server-assigned session id (also embedded in the ticket).
    pub session_id: u64,
    /// The bearer ticket for reconnecting. Treat like a credential.
    pub ticket: SessionTicket,
    /// True when this handshake resumed an existing session rather than
    /// opening a fresh one.
    pub resumed: bool,
}

/// Where to continue an interrupted transfer, as reported by the server
/// in its resume accept: the sender skips the first `delivered_raw`
/// bytes of the in-flight message and numbers its frames from
/// `next_seq`. `(0, 0)` means no partial message survived — the client
/// re-sends from the message boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumePoint {
    /// Next global frame sequence number the receiver expects.
    pub next_seq: u64,
    /// Raw bytes of the interrupted message already delivered.
    pub delivered_raw: u64,
}

impl ResumePoint {
    /// True when a partially-delivered message is waiting to be
    /// continued (rather than restarted from its boundary).
    pub fn mid_message(&self) -> bool {
        self.next_seq != 0 || self.delivered_raw != 0
    }
}

/// What one send did, mirroring the paper's `slen` out-parameter
/// (`raw / wire` is the achieved compression ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendReport {
    /// Application payload bytes handed to the call.
    pub raw: u64,
    /// Bytes that actually went on the wire (the paper's `*slen`).
    pub wire: u64,
    /// Probe-measured link speed, if a probe ran.
    pub probe_bps: Option<f64>,
    /// True when the probe classified the link as too fast to compress.
    pub fast_path: bool,
}

/// An AdOC connection over any `Read`/`Write` pair.
///
/// ```
/// use adoc::AdocSocket;
/// use adoc_sim::pipe::duplex_pipe;
///
/// let (a, b) = duplex_pipe(1 << 20);
/// let (ar, aw) = a.split();
/// let (br, bw) = b.split();
/// let mut tx = AdocSocket::new(ar, aw);
/// let mut rx = AdocSocket::new(br, bw);
///
/// let report = tx.write(b"hello adoc").unwrap();
/// assert_eq!(report.raw, 10);
/// let mut buf = [0u8; 10];
/// let n = rx.read(&mut buf).unwrap();
/// assert_eq!(&buf[..n], b"hello adoc");
/// ```
pub struct AdocSocket<R: Read + Send, W: Write + Send> {
    reader: R,
    writer: W,
    cfg: AdocConfig,
    /// Decoded bytes from a partially-consumed message (the paper's
    /// temporary buffers for partial reads, §4.1 `adoc_close`).
    leftover: Vec<u8>,
    leftover_pos: usize,
    stats: TransferStats,
}

impl<R: Read + Send, W: Write + Send> AdocSocket<R, W> {
    /// Wraps a reader/writer pair with the default (paper) configuration.
    pub fn new(reader: R, writer: W) -> Self {
        Self::with_config(reader, writer, AdocConfig::default())
            .expect("the default AdocConfig is always valid")
    }

    /// Wraps with an explicit configuration. Fails with a typed
    /// [`AdocError::InvalidConfig`] (inside the `io::Error`) when the
    /// configuration is inconsistent, instead of letting the bad field
    /// panic or hang inside the pipeline threads later.
    pub fn with_config(reader: R, writer: W, mut cfg: AdocConfig) -> io::Result<Self> {
        cfg.validate()?;
        cfg.ensure_signal_hub();
        Ok(AdocSocket {
            reader,
            writer,
            cfg,
            leftover: Vec::new(),
            leftover_pos: 0,
            stats: TransferStats::new(),
        })
    }

    /// Connection configuration.
    pub fn config(&self) -> &AdocConfig {
        &self.cfg
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// Sends `data` as one message (the paper's `adoc_write`): blocks
    /// until every byte is on the socket, adapting the compression level
    /// throughout.
    pub fn write(&mut self, data: &[u8]) -> io::Result<SendReport> {
        let cfg = self.cfg.clone();
        self.send_with(data, &cfg)
    }

    /// `adoc_write_levels`: like [`Self::write`] with level bounds for
    /// this call only. `max = 0` disables compression; `min ≥ 1` forces
    /// it.
    pub fn write_levels(&mut self, data: &[u8], min: u8, max: u8) -> io::Result<SendReport> {
        let cfg = self.cfg.clone().with_levels(min, max);
        cfg.validate()?;
        self.send_with(data, &cfg)
    }

    fn send_with(&mut self, data: &[u8], cfg: &AdocConfig) -> io::Result<SendReport> {
        let mut src = data;
        let out = send_message(&mut self.writer, &mut src, data.len() as u64, cfg)?;
        Ok(self.merge(out, data.len() as u64))
    }

    fn merge(&mut self, out: SendOutcome, raw: u64) -> SendReport {
        out.merge_into(&mut self.stats, raw);
        SendReport {
            raw,
            wire: out.wire_bytes,
            probe_bps: out.probe_bps,
            fast_path: out.fast_path,
        }
    }

    /// Receives into `out` with POSIX `read` semantics (the paper's
    /// `adoc_read`): blocks for at least one byte, may return fewer than
    /// requested (message boundaries cause short reads), `Ok(0)` only at
    /// end of stream.
    pub fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        if self.leftover_len() == 0 {
            self.leftover.clear();
            self.leftover_pos = 0;
            if receive_message(&mut self.reader, &mut self.leftover, &self.cfg)?.is_none() {
                return Ok(0);
            }
            if self.leftover.is_empty() {
                // Zero-length message: by POSIX semantics deliver 0 bytes
                // without signalling EOF only if the caller retries; treat
                // it as an empty read.
                return Ok(0);
            }
        }
        let avail = self.leftover_len();
        let n = avail.min(out.len());
        out[..n].copy_from_slice(&self.leftover[self.leftover_pos..self.leftover_pos + n]);
        self.leftover_pos += n;
        if self.leftover_len() == 0 {
            self.leftover.clear();
            self.leftover_pos = 0;
        }
        Ok(n)
    }

    /// Reads exactly `out.len()` bytes across message boundaries.
    pub fn read_exact(&mut self, out: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            let n = self.read(&mut out[filled..])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid read_exact",
                ));
            }
            filled += n;
        }
        Ok(())
    }

    fn leftover_len(&self) -> usize {
        self.leftover.len() - self.leftover_pos
    }

    /// `adoc_send_file`: streams a file as one message; returns the file
    /// size and wire bytes (the paper returns the size and outputs `slen`).
    pub fn send_file(&mut self, file: &mut File) -> io::Result<SendReport> {
        let cfg = self.cfg.clone();
        self.send_file_with(file, &cfg)
    }

    /// `adoc_send_file_levels`: level-bounded variant.
    pub fn send_file_levels(
        &mut self,
        file: &mut File,
        min: u8,
        max: u8,
    ) -> io::Result<SendReport> {
        let cfg = self.cfg.clone().with_levels(min, max);
        cfg.validate()?;
        self.send_file_with(file, &cfg)
    }

    fn send_file_with(&mut self, file: &mut File, cfg: &AdocConfig) -> io::Result<SendReport> {
        let len = file.metadata()?.len();
        self.send_reader(file, len, cfg)
    }

    /// Streams exactly `len` bytes from any reader as one message
    /// (generalizes `adoc_send_file` to non-file sources).
    pub fn send_reader(
        &mut self,
        source: &mut (impl Read + Send),
        len: u64,
        cfg: &AdocConfig,
    ) -> io::Result<SendReport> {
        let out = send_message(&mut self.writer, source, len, cfg)?;
        Ok(self.merge(out, len))
    }

    /// `adoc_receive_file`: drains any partially-read message, then
    /// receives exactly one message, streaming it into `sink`. Returns the
    /// number of bytes stored.
    pub fn receive_file(&mut self, sink: &mut (impl Write + Send)) -> io::Result<u64> {
        let mut total = 0u64;
        if self.leftover_len() > 0 {
            sink.write_all(&self.leftover[self.leftover_pos..])?;
            total += self.leftover_len() as u64;
            self.leftover.clear();
            self.leftover_pos = 0;
        }
        match receive_message(&mut self.reader, sink, &self.cfg)? {
            Some(n) => Ok(total + n),
            None if total > 0 => Ok(total),
            None => Ok(0),
        }
    }

    /// `adoc_close`: flushes the writer and frees the partial-read
    /// buffers. The underlying streams close on drop.
    pub fn close(mut self) -> io::Result<()> {
        self.close_mut()
    }

    /// In-place close used by the descriptor registry.
    pub(crate) fn close_mut(&mut self) -> io::Result<()> {
        self.leftover = Vec::new();
        self.leftover_pos = 0;
        self.writer.flush()
    }

    /// Consumes the socket, returning the underlying streams.
    pub fn into_inner(self) -> (R, W) {
        (self.reader, self.writer)
    }
}

/// `std::io::Read`: makes the socket a drop-in replacement wherever plain
/// stream reads are used (`io::copy`, `read_to_end`, `BufReader`, …) —
/// the paper's integration story.
impl<R: Read + Send, W: Write + Send> Read for AdocSocket<R, W> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        AdocSocket::read(self, buf)
    }
}

/// `std::io::Write`: each call sends one AdOC message (write-combining
/// callers should wrap in `BufWriter` to avoid tiny messages).
impl<R: Read + Send, W: Write + Send> Write for AdocSocket<R, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        AdocSocket::write(self, buf).map(|r| r.raw as usize)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// One logical AdOC connection striped over `N` parallel streams
/// (`streams[0]` is the primary). With `N == 1` the wire format is
/// byte-identical v1 ([`AdocSocket`] compatible); with `N >= 2` each
/// stream runs its own compression pipeline on send and its own
/// reception thread on receive, and the group negotiates the stream
/// count once at construction (see [`crate::wire`]'s negotiation rule).
///
/// ```
/// use adoc::{AdocConfig, AdocStreamGroup};
/// use adoc_sim::pipe::duplex_pipe;
///
/// let n = 2;
/// let (mut left, mut right) = (Vec::new(), Vec::new());
/// for _ in 0..n {
///     let (a, b) = duplex_pipe(1 << 20);
///     left.push(a.split());
///     right.push(b.split());
/// }
/// let cfg = AdocConfig::default().with_streams(n);
/// let (tx, rx) = std::thread::scope(|s| {
///     let t = s.spawn(|| AdocStreamGroup::from_pairs(left, cfg.clone()).unwrap());
///     let rx = AdocStreamGroup::from_pairs(right, cfg.clone()).unwrap();
///     (t.join().unwrap(), rx)
/// });
/// let (mut tx, mut rx) = (tx, rx);
/// tx.write(b"striped hello").unwrap();
/// let mut buf = [0u8; 13];
/// rx.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"striped hello");
/// ```
pub struct AdocStreamGroup<R: Read + Send, W: Write + Send> {
    readers: Vec<R>,
    writers: Vec<W>,
    cfg: AdocConfig,
    leftover: Vec<u8>,
    leftover_pos: usize,
    stats: TransferStats,
}

impl<R: Read + Send, W: Write + Send> std::fmt::Debug for AdocStreamGroup<R, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdocStreamGroup")
            .field("streams", &self.readers.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl<R: Read + Send, W: Write + Send> AdocStreamGroup<R, W> {
    /// Builds a group over already-connected stream pairs (index 0 is the
    /// primary). `cfg.streams` is set to `pairs.len()`. For `N >= 2` this
    /// performs the group handshake: it announces a [`GroupHello`] on
    /// every stream, then reads and validates the peer's — both sides of
    /// a connection must construct their group concurrently (as
    /// [`Self::connect`]/[`Self::accept`] do).
    pub fn from_pairs(pairs: Vec<(R, W)>, cfg: AdocConfig) -> io::Result<Self> {
        Self::from_pairs_with_token(pairs, cfg, 0)
    }

    /// [`Self::from_pairs`] announcing `token` in each hello (0 =
    /// untokened version-2 hellos). [`Self::connect`] passes a fresh
    /// token so a multi-client acceptor can tell concurrent dials apart.
    pub(crate) fn from_pairs_with_token(
        pairs: Vec<(R, W)>,
        cfg: AdocConfig,
        token: u64,
    ) -> io::Result<Self> {
        assert!(!pairs.is_empty(), "a stream group needs at least 1 stream");
        let mut cfg = cfg.with_streams(pairs.len());
        cfg.validate()?;
        cfg.ensure_signal_hub();
        let n = pairs.len();
        let (mut readers, mut writers): (Vec<R>, Vec<W>) = pairs.into_iter().unzip();
        if n > 1 {
            // Initiator-style handshake: announce on every stream, then
            // validate the peer's announcements.
            for (i, w) in writers.iter_mut().enumerate() {
                w.write_all(
                    &GroupHello {
                        streams: n as u8,
                        stream_id: i as u8,
                        token,
                    }
                    .encode(),
                )?;
                w.flush()?;
            }
            for (i, r) in readers.iter_mut().enumerate() {
                let hello = GroupHello::read(r)?;
                if hello.streams as usize != n {
                    return Err(AdocError::StreamCountMismatch {
                        ours: n as u8,
                        theirs: hello.streams,
                    }
                    .into());
                }
                if hello.stream_id as usize != i {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "peer stream {} answered on local stream {i}",
                            hello.stream_id
                        ),
                    ));
                }
            }
        }
        Ok(AdocStreamGroup {
            readers,
            writers,
            cfg,
            leftover: Vec::new(),
            leftover_pos: 0,
            stats: TransferStats::new(),
        })
    }

    /// Builds a group over stream pairs whose handshake the caller has
    /// **already performed** (index `i` carries stream `i`). No hellos
    /// are written or read — this is the constructor a multi-client
    /// acceptor uses after matching interleaved connections into groups
    /// itself (see the `adoc-server` daemon).
    pub fn from_negotiated(pairs: Vec<(R, W)>, cfg: AdocConfig) -> io::Result<Self> {
        assert!(!pairs.is_empty(), "a stream group needs at least 1 stream");
        let mut cfg = cfg.with_streams(pairs.len());
        cfg.validate()?;
        cfg.ensure_signal_hub();
        let (readers, writers): (Vec<R>, Vec<W>) = pairs.into_iter().unzip();
        Ok(AdocStreamGroup {
            readers,
            writers,
            cfg,
            leftover: Vec::new(),
            leftover_pos: 0,
            stats: TransferStats::new(),
        })
    }

    /// Number of streams in this group.
    pub fn streams(&self) -> usize {
        self.readers.len()
    }

    /// Connection configuration.
    pub fn config(&self) -> &AdocConfig {
        &self.cfg
    }

    /// Cumulative transfer statistics (including
    /// [`TransferStats::per_stream`] totals for striped messages).
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// Sends `data` as one message striped across the group.
    pub fn write(&mut self, data: &[u8]) -> io::Result<SendReport> {
        let cfg = self.cfg.clone();
        self.send_with(data, &cfg)
    }

    /// [`Self::write`] with level bounds for this call only.
    pub fn write_levels(&mut self, data: &[u8], min: u8, max: u8) -> io::Result<SendReport> {
        let cfg = self.cfg.clone().with_levels(min, max);
        cfg.validate()?;
        self.send_with(data, &cfg)
    }

    fn send_with(&mut self, data: &[u8], cfg: &AdocConfig) -> io::Result<SendReport> {
        let mut src = data;
        let out = send_message_multi(&mut self.writers, &mut src, data.len() as u64, cfg)?;
        Ok(self.merge(out, data.len() as u64))
    }

    fn merge(&mut self, out: SendOutcome, raw: u64) -> SendReport {
        out.merge_into(&mut self.stats, raw);
        SendReport {
            raw,
            wire: out.wire_bytes,
            probe_bps: out.probe_bps,
            fast_path: out.fast_path,
        }
    }

    /// Receives with POSIX `read` semantics (short reads at message
    /// boundaries, `Ok(0)` only at end of stream).
    pub fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        if self.leftover_len() == 0 {
            self.leftover.clear();
            self.leftover_pos = 0;
            if receive_message_multi(&mut self.readers, &mut self.leftover, &self.cfg)?.is_none() {
                return Ok(0);
            }
            if self.leftover.is_empty() {
                return Ok(0);
            }
        }
        let avail = self.leftover_len();
        let n = avail.min(out.len());
        out[..n].copy_from_slice(&self.leftover[self.leftover_pos..self.leftover_pos + n]);
        self.leftover_pos += n;
        if self.leftover_len() == 0 {
            self.leftover.clear();
            self.leftover_pos = 0;
        }
        Ok(n)
    }

    /// Reads exactly `out.len()` bytes across message boundaries.
    pub fn read_exact(&mut self, out: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            let n = self.read(&mut out[filled..])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid read_exact",
                ));
            }
            filled += n;
        }
        Ok(())
    }

    fn leftover_len(&self) -> usize {
        self.leftover.len() - self.leftover_pos
    }

    /// Streams exactly `len` bytes from any reader as one striped
    /// message.
    pub fn send_reader(
        &mut self,
        source: &mut (impl Read + Send),
        len: u64,
        cfg: &AdocConfig,
    ) -> io::Result<SendReport> {
        let out = send_message_multi(&mut self.writers, source, len, cfg)?;
        Ok(self.merge(out, len))
    }

    /// `adoc_send_file` over the group.
    pub fn send_file(&mut self, file: &mut File) -> io::Result<SendReport> {
        let cfg = self.cfg.clone();
        let len = file.metadata()?.len();
        self.send_reader(file, len, &cfg)
    }

    /// Level-bounded file send over the group.
    pub fn send_file_levels(
        &mut self,
        file: &mut File,
        min: u8,
        max: u8,
    ) -> io::Result<SendReport> {
        let cfg = self.cfg.clone().with_levels(min, max);
        cfg.validate()?;
        let len = file.metadata()?.len();
        self.send_reader(file, len, &cfg)
    }

    /// Drains any partially-read message, then receives exactly one
    /// message into `sink`. Returns the number of bytes stored.
    pub fn receive_file(&mut self, sink: &mut (impl Write + Send)) -> io::Result<u64> {
        let mut progress = RecvProgress::default();
        self.receive_file_tracked(sink, &mut progress)
    }

    /// [`Self::receive_file`] that additionally reports delivery progress
    /// through `progress`: when the receive fails mid-message, `progress`
    /// plus the bytes already written to `sink` define the resume point a
    /// session server parks for the reconnecting peer.
    pub fn receive_file_tracked(
        &mut self,
        sink: &mut (impl Write + Send),
        progress: &mut RecvProgress,
    ) -> io::Result<u64> {
        let mut total = 0u64;
        if self.leftover_len() > 0 {
            sink.write_all(&self.leftover[self.leftover_pos..])?;
            total += self.leftover_len() as u64;
            self.leftover.clear();
            self.leftover_pos = 0;
        }
        match receive_message_multi_tracked(&mut self.readers, sink, &self.cfg, progress)? {
            Some(n) => Ok(total + n),
            None if total > 0 => Ok(total),
            None => Ok(0),
        }
    }

    /// Continues receiving a message interrupted on a previous
    /// connection: the peer ships frames `next_seq..` of a
    /// `total_raw`-byte message whose first `delivered_raw` bytes were
    /// already delivered. Always v2 striped framing, any stream count
    /// (the resumed group's width may differ from the original's).
    /// Returns `total_raw` on completion.
    pub fn receive_file_resumed(
        &mut self,
        sink: &mut (impl Write + Send),
        total_raw: u64,
        delivered_raw: u64,
        next_seq: u64,
        progress: &mut RecvProgress,
    ) -> io::Result<u64> {
        receive_message_multi_resumed(
            &mut self.readers,
            sink,
            total_raw,
            delivered_raw,
            next_seq,
            &self.cfg,
            progress,
        )
    }

    /// Continues sending a message interrupted on a previous connection:
    /// ships `data[at.delivered_raw..]` as striped frames numbered from
    /// `at.next_seq`, re-striping the remainder across however many
    /// streams *this* group has. `data` must be the same message the
    /// interrupted send was transmitting. The report covers the resumed
    /// portion only.
    pub fn write_resumed(&mut self, data: &[u8], at: ResumePoint) -> io::Result<SendReport> {
        let total = data.len() as u64;
        if at.delivered_raw > total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "resume point {} beyond message length {total}",
                    at.delivered_raw
                ),
            ));
        }
        let cfg = self.cfg.clone();
        let mut src = &data[at.delivered_raw as usize..];
        let remaining = total - at.delivered_raw;
        let out =
            send_message_multi_resumed(&mut self.writers, &mut src, remaining, at.next_seq, &cfg)?;
        Ok(self.merge(out, remaining))
    }

    /// Flushes every stream and frees the partial-read buffers. The
    /// underlying streams close on drop.
    pub fn close(mut self) -> io::Result<()> {
        self.close_mut()
    }

    /// In-place close used by the descriptor registry.
    pub(crate) fn close_mut(&mut self) -> io::Result<()> {
        self.leftover = Vec::new();
        self.leftover_pos = 0;
        for w in &mut self.writers {
            w.flush()?;
        }
        Ok(())
    }

    /// Consumes the group, returning the underlying stream pairs.
    pub fn into_pairs(self) -> Vec<(R, W)> {
        self.readers.into_iter().zip(self.writers).collect()
    }
}

/// Maps a non-OK [`SessionAccept`] status to the typed error the client
/// surfaces.
fn session_reject_error(status: u8) -> io::Error {
    match status {
        session_status::AUTH_FAILED => AdocError::AuthFailed {
            reason: "server refused the session hello".into(),
        }
        .into(),
        session_status::TICKET_EXPIRED => AdocError::ResumeRejected {
            reason: "session ticket expired".into(),
        }
        .into(),
        session_status::RESUME_REJECTED => AdocError::ResumeRejected {
            reason: "unknown, reclaimed, or non-resumable session".into(),
        }
        .into(),
        other => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("session handshake rejected with unknown status {other}"),
        ),
    }
}

/// A process-unique nonzero group token for [`AdocStreamGroup::connect`]:
/// a counter mixed with wall-clock nanoseconds, so tokens from distinct
/// processes dialling the same server virtually never collide.
pub(crate) fn fresh_group_token() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    (nanos
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(c.wrapping_mul(0xD1B5_4A32_D192_ED03)))
    .max(1)
}

impl AdocStreamGroup<TcpStream, TcpStream> {
    /// Dials `cfg.streams` TCP connections to `addr` and forms a group
    /// (connection `i` carries stream `i`), announcing a fresh group
    /// token in every hello so a multi-client acceptor can match the
    /// connections even when other dials interleave. The peer must
    /// [`Self::accept`] the same number of connections (or be an
    /// `adoc-server` daemon).
    pub fn connect(addr: impl ToSocketAddrs, cfg: AdocConfig) -> io::Result<Self> {
        cfg.validate()?;
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let mut pairs = Vec::with_capacity(cfg.streams);
        for _ in 0..cfg.streams {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true).ok();
            pairs.push((s.try_clone()?, s));
        }
        Self::from_pairs_with_token(pairs, cfg, fresh_group_token())
    }

    /// Dials `cfg.streams` TCP connections and opens an authenticated,
    /// resumable **session** with an `adoc-server` daemon (version-4
    /// handshake). `secret`, when given, must match the server's
    /// configured auth secret: each hello then carries a MAC binding the
    /// stream count and group token, which a `require_auth` server
    /// demands before admitting the connection anywhere. Returns the
    /// group plus the [`SessionInfo`] whose ticket can later
    /// [`Self::resume_session`] after a disconnect.
    pub fn connect_session(
        addr: impl ToSocketAddrs,
        cfg: AdocConfig,
        secret: Option<&[u8]>,
    ) -> io::Result<(Self, SessionInfo)> {
        let token = fresh_group_token();
        let mac = match secret {
            Some(s) => TicketKey::from_secret(s).hello_mac(cfg.streams as u8, token),
            None => [0u8; 16],
        };
        let (group, accept) =
            Self::session_handshake(addr, cfg, token, SessionKind::New, 0, 0, mac)?;
        let info = SessionInfo {
            session_id: accept.session_id,
            ticket: SessionTicket {
                session_id: accept.session_id,
                expires_us: accept.expires_us,
                mac: accept.mac,
            },
            resumed: accept.resumed != 0,
        };
        Ok((group, info))
    }

    /// Reconnects to a session after a disconnect, presenting `ticket`
    /// as the credential (no secret needed — the ticket is bearer
    /// authentication). The new dial may use a *different*
    /// `cfg.streams` than the original connection. Returns the fresh
    /// group, the (re-issued) session info, and the [`ResumePoint`]
    /// telling the sender where to continue an interrupted message —
    /// `(0, 0)` when the last message completed and the next send starts
    /// at a message boundary.
    pub fn resume_session(
        addr: impl ToSocketAddrs,
        cfg: AdocConfig,
        ticket: &SessionTicket,
    ) -> io::Result<(Self, SessionInfo, ResumePoint)> {
        let token = fresh_group_token();
        let (group, accept) = Self::session_handshake(
            addr,
            cfg,
            token,
            SessionKind::Resume,
            ticket.session_id,
            ticket.expires_us,
            ticket.mac,
        )?;
        let info = SessionInfo {
            session_id: accept.session_id,
            ticket: SessionTicket {
                session_id: accept.session_id,
                expires_us: accept.expires_us,
                mac: accept.mac,
            },
            resumed: accept.resumed != 0,
        };
        let at = ResumePoint {
            next_seq: accept.next_seq,
            delivered_raw: accept.delivered_raw,
        };
        Ok((group, info, at))
    }

    /// The client half of the version-4 handshake: dial every stream,
    /// announce an identical [`SessionHello`] on each, then read the
    /// server's per-stream [`GroupHello`] answers and the
    /// [`SessionAccept`] on the primary. A rejection arrives as a
    /// `SessionAccept` *instead of* the hellos and surfaces as a typed
    /// [`AdocError::AuthFailed`] / [`AdocError::ResumeRejected`].
    fn session_handshake(
        addr: impl ToSocketAddrs,
        mut cfg: AdocConfig,
        token: u64,
        kind: SessionKind,
        session_id: u64,
        expires_us: u64,
        mac: [u8; 16],
    ) -> io::Result<(Self, SessionAccept)> {
        cfg.validate()?;
        cfg.ensure_signal_hub();
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let n = cfg.streams;
        let mut streams = Vec::with_capacity(n);
        for i in 0..n {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true).ok();
            (&s).write_all(
                &SessionHello {
                    streams: n as u8,
                    stream_id: i as u8,
                    token,
                    kind,
                    session_id,
                    expires_us,
                    mac,
                }
                .encode(),
            )?;
            streams.push(s);
        }
        for s in &streams {
            s.set_read_timeout(Some(cfg.hello_timeout))?;
        }
        // The server answers with per-stream group hellos (accept) or a
        // session-accept record carrying the rejection status. Sniff two
        // bytes on the primary to tell them apart, then replay them.
        let mut sniff = [0u8; 2];
        (&streams[0])
            .read_exact(&mut sniff)
            .map_err(|e| AdocError::map_hello_timeout(e, cfg.hello_timeout))?;
        let mut primary = io::Read::chain(&sniff[..], &streams[0]);
        if sniff == [wire::MAGIC, wire::SESSION_MAGIC] {
            let accept = SessionAccept::read(&mut primary)?;
            return Err(session_reject_error(accept.status));
        }
        let hello = GroupHello::read(&mut primary)
            .map_err(|e| AdocError::map_hello_timeout(e, cfg.hello_timeout))?;
        if hello.streams as usize != n {
            return Err(AdocError::StreamCountMismatch {
                ours: n as u8,
                theirs: hello.streams,
            }
            .into());
        }
        if hello.stream_id != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server answered stream {} on the primary", hello.stream_id),
            ));
        }
        for (i, s) in streams.iter().enumerate().skip(1) {
            let hello = GroupHello::read(&mut &*s)
                .map_err(|e| AdocError::map_hello_timeout(e, cfg.hello_timeout))?;
            if hello.streams as usize != n || hello.stream_id as usize != i {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "server answered stream {}/{} on local stream {i}",
                        hello.stream_id, hello.streams
                    ),
                ));
            }
        }
        let accept = SessionAccept::read(&mut primary)
            .map_err(|e| AdocError::map_hello_timeout(e, cfg.hello_timeout))?;
        if accept.status != session_status::OK {
            return Err(session_reject_error(accept.status));
        }
        for s in &streams {
            s.set_read_timeout(None)?;
        }
        let mut pairs = Vec::with_capacity(n);
        for s in streams {
            pairs.push((s.try_clone()?, s));
        }
        let group = Self::from_negotiated(pairs, cfg)?;
        Ok((group, accept))
    }

    /// Hard-kills every TCP stream in the group (both directions),
    /// simulating an abrupt network failure: the peer sees connection
    /// resets mid-message. The group is unusable afterwards; used by the
    /// churn load generator and the failure-injection tests to exercise
    /// session resume.
    pub fn shutdown_streams(&self) -> io::Result<()> {
        for w in &self.writers {
            match w.shutdown(std::net::Shutdown::Both) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotConnected => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Accepts `cfg.streams` TCP connections from `listener` and forms a
    /// group. Connections may arrive in any order: each incoming hello
    /// names its stream id, and the acceptor re-orders accordingly before
    /// answering — the acceptor half of the negotiation rule.
    ///
    /// [`AdocConfig::hello_timeout`] bounds both halves of the
    /// handshake: once the *first* connection arrives, the remaining
    /// dials must land within the timeout, and each connected peer must
    /// deliver its hello within the timeout — either failure surfaces as
    /// a typed [`AdocError::HelloTimeout`] instead of wedging the accept
    /// loop forever (a client may die between its dials just as easily
    /// as between connecting and its hello).
    pub fn accept(listener: &TcpListener, mut cfg: AdocConfig) -> io::Result<Self> {
        cfg.validate()?;
        cfg.ensure_signal_hub();
        let n = cfg.streams;
        if n == 1 {
            let (s, _) = listener.accept()?;
            s.set_nodelay(true).ok();
            return Self::from_pairs(vec![(s.try_clone()?, s)], cfg);
        }
        // Accept every connection before reading any hello: the peer
        // only starts its handshake once all of its dials succeeded, and
        // blocking on a hello mid-accept would deadlock stream counts
        // beyond the listener backlog. Waiting for the first connection
        // blocks indefinitely (nothing has gone wrong while nobody is
        // dialling); after that the rest of the group must arrive within
        // the hello timeout.
        let mut incoming = Vec::with_capacity(n);
        let (first, _) = listener.accept()?;
        first.set_nodelay(true).ok();
        incoming.push(first);
        let deadline = std::time::Instant::now() + cfg.hello_timeout;
        listener.set_nonblocking(true)?;
        let collect = (|| -> io::Result<()> {
            while incoming.len() < n {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nodelay(true).ok();
                        incoming.push(s);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if std::time::Instant::now() >= deadline {
                            return Err(AdocError::HelloTimeout {
                                timeout: cfg.hello_timeout,
                            }
                            .into());
                        }
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })();
        // Restore the listener before reporting, so a failed accept does
        // not leave it nonblocking for the caller's next use.
        listener.set_nonblocking(false)?;
        collect?;
        let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for mut s in incoming {
            s.set_read_timeout(Some(cfg.hello_timeout))?;
            let hello = GroupHello::read(&mut s)
                .map_err(|e| AdocError::map_hello_timeout(e, cfg.hello_timeout))?;
            // Message reads after the handshake block indefinitely again.
            s.set_read_timeout(None)?;
            if hello.streams as usize != n {
                return Err(AdocError::StreamCountMismatch {
                    ours: n as u8,
                    theirs: hello.streams,
                }
                .into());
            }
            let id = hello.stream_id as usize;
            if id >= n || slots[id].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("invalid or duplicate stream id {id} in group handshake"),
                ));
            }
            slots[id] = Some(s);
        }
        let mut readers = Vec::with_capacity(n);
        let mut writers = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let mut s = slot.expect("all slots filled");
            s.write_all(&GroupHello::new(n as u8, i as u8).encode())?;
            s.flush()?;
            readers.push(s.try_clone()?);
            writers.push(s);
        }
        Ok(AdocStreamGroup {
            readers,
            writers,
            cfg,
            leftover: Vec::new(),
            leftover_pos: 0,
            stats: TransferStats::new(),
        })
    }
}

/// `std::io::Read` for drop-in use, like [`AdocSocket`].
impl<R: Read + Send, W: Write + Send> Read for AdocStreamGroup<R, W> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        AdocStreamGroup::read(self, buf)
    }
}

/// `std::io::Write`: each call sends one striped AdOC message.
impl<R: Read + Send, W: Write + Send> Write for AdocStreamGroup<R, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        AdocStreamGroup::write(self, buf).map(|r| r.raw as usize)
    }

    fn flush(&mut self) -> io::Result<()> {
        for w in &mut self.writers {
            w.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adoc_sim::pipe::duplex_pipe;
    use std::thread;

    fn pair() -> (
        AdocSocket<adoc_sim::pipe::PipeReader, adoc_sim::pipe::PipeWriter>,
        AdocSocket<adoc_sim::pipe::PipeReader, adoc_sim::pipe::PipeWriter>,
    ) {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        (AdocSocket::new(ar, aw), AdocSocket::new(br, bw))
    }

    fn payload(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 5u64;
        while v.len() < n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(2) {
                v.extend_from_slice(b"window pane window pane ");
            } else {
                v.extend_from_slice(&x.to_le_bytes());
            }
        }
        v.truncate(n);
        v
    }

    #[test]
    fn small_roundtrip_and_stats() {
        let (mut tx, mut rx) = pair();
        let report = tx.write(b"tiny").unwrap();
        assert_eq!(report.raw, 4);
        assert!(report.wire >= 4);
        let mut buf = [0u8; 16];
        let n = rx.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"tiny");
        assert_eq!(tx.stats().messages, 1);
        assert_eq!(tx.stats().direct_messages, 1);
    }

    #[test]
    fn partial_reads_sixty_forty() {
        // The paper's example: send 100 (scaled: 1 MB), read 60 % then 40 %.
        let (tx, mut rx) = pair();
        let data = payload(1_000_000);
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            tx.write(&data2).unwrap();
            tx
        });
        let mut first = vec![0u8; 600_000];
        rx.read_exact(&mut first).unwrap();
        let mut second = vec![0u8; 400_000];
        rx.read_exact(&mut second).unwrap();
        t.join().unwrap();
        assert_eq!(first, data[..600_000]);
        assert_eq!(second, data[600_000..]);
    }

    #[test]
    fn multiple_messages_in_sequence() {
        let (tx, mut rx) = pair();
        let msgs: Vec<Vec<u8>> = (0..5).map(|i| payload(10_000 + i * 3733)).collect();
        let msgs2 = msgs.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            for m in &msgs2 {
                tx.write(m).unwrap();
            }
            tx
        });
        for m in &msgs {
            let mut buf = vec![0u8; m.len()];
            rx.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, m);
        }
        t.join().unwrap();
    }

    #[test]
    fn read_returns_short_at_message_boundary() {
        let (mut tx, mut rx) = pair();
        tx.write(b"abc").unwrap();
        tx.write(b"defg").unwrap();
        let mut buf = [0u8; 64];
        // POSIX semantics: the first read must not cross into message 2.
        let n1 = rx.read(&mut buf).unwrap();
        assert_eq!(&buf[..n1], b"abc");
        let n2 = rx.read(&mut buf).unwrap();
        assert_eq!(&buf[..n2], b"defg");
    }

    #[test]
    fn eof_reads_zero() {
        let (tx, mut rx) = pair();
        drop(tx); // closes the tx→rx direction
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_levels_disable_and_force() {
        let (tx, mut rx) = pair();
        let data = payload(900_000);
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            // Disabled: wire ≈ raw + header.
            let r0 = tx.write_levels(&data2, 0, 0).unwrap();
            assert_eq!(
                r0.wire,
                data2.len() as u64 + crate::wire::MSG_HEADER_LEN as u64
            );
            // Forced: text-heavy payload must shrink.
            let r1 = tx.write_levels(&data2, 1, 10).unwrap();
            assert!(r1.wire < r0.wire);
            tx
        });
        for _ in 0..2 {
            let mut buf = vec![0u8; data.len()];
            rx.read_exact(&mut buf).unwrap();
            assert_eq!(buf, data);
        }
        t.join().unwrap();
    }

    #[test]
    fn send_and_receive_file() {
        let dir = std::env::temp_dir().join("adoc-socket-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src_path = dir.join("src.bin");
        let dst_path = dir.join("dst.bin");
        let data = payload(1_200_000);
        std::fs::write(&src_path, &data).unwrap();

        let (tx, mut rx) = pair();
        let t = thread::spawn(move || {
            let mut tx = tx;
            let mut f = File::open(src_path).unwrap();
            let rep = tx.send_file(&mut f).unwrap();
            assert_eq!(rep.raw, data.len() as u64);
            tx
        });
        let mut dst = File::create(&dst_path).unwrap();
        let n = rx.receive_file(&mut dst).unwrap();
        t.join().unwrap();
        drop(dst);
        assert_eq!(n, 1_200_000);
        let got = std::fs::read(&dst_path).unwrap();
        assert_eq!(got.len(), 1_200_000);
        assert_eq!(&got[..64], &payload(1_200_000)[..64]);
    }

    #[test]
    fn receive_file_drains_leftover_first() {
        let (tx, mut rx) = pair();
        let data = payload(50_000);
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            tx.write(&data2).unwrap();
            tx.write(b"second message").unwrap();
            tx
        });
        // Consume 10 KB of message 1, then receive_file the rest + msg 2.
        let mut head = vec![0u8; 10_000];
        rx.read_exact(&mut head).unwrap();
        let mut rest: Vec<u8> = Vec::new();
        let n = rx.receive_file(&mut rest).unwrap();
        t.join().unwrap();
        assert_eq!(head, data[..10_000]);
        assert_eq!(n as usize, 40_000 + 14);
        assert_eq!(&rest[..40_000], &data[10_000..]);
        assert_eq!(&rest[40_000..], b"second message");
    }

    #[test]
    fn close_flushes() {
        let (tx, _rx) = pair();
        tx.close().unwrap();
    }
}

#[cfg(test)]
mod group_tests {
    use super::*;
    use adoc_sim::pipe::{duplex_pipe, PipeReader, PipeWriter};
    use std::thread;

    type Group = AdocStreamGroup<PipeReader, PipeWriter>;

    /// Builds both ends of an n-stream group over sim pipes, running the
    /// two handshakes concurrently as real endpoints would.
    fn group_pair(n: usize, cfg: &AdocConfig) -> (Group, Group) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for _ in 0..n {
            let (a, b) = duplex_pipe(1 << 20);
            left.push(a.split());
            right.push(b.split());
        }
        let cfg_l = cfg.clone();
        let cfg_r = cfg.clone();
        thread::scope(|s| {
            let l = s.spawn(move || AdocStreamGroup::from_pairs(left, cfg_l).unwrap());
            let r = AdocStreamGroup::from_pairs(right, cfg_r).unwrap();
            (l.join().unwrap(), r)
        })
    }

    fn payload(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 5u64;
        while v.len() < n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(2) {
                v.extend_from_slice(b"window pane window pane ");
            } else {
                v.extend_from_slice(&x.to_le_bytes());
            }
        }
        v.truncate(n);
        v
    }

    #[test]
    fn single_stream_group_needs_no_handshake() {
        // n == 1: construction is sequential (no hello on the wire), and
        // the stream is v1-interoperable with a plain AdocSocket peer.
        let (a, b) = duplex_pipe(1 << 20);
        let mut tx = AdocStreamGroup::from_pairs(vec![a.split()], AdocConfig::default()).unwrap();
        let (br, bw) = b.split();
        let mut rx = AdocSocket::new(br, bw);
        tx.write(b"v1 compatible").unwrap();
        let mut buf = [0u8; 13];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"v1 compatible");
    }

    #[test]
    fn striped_group_roundtrip_with_stats() {
        let cfg = AdocConfig::default().with_levels(1, 10);
        let (tx, mut rx) = group_pair(4, &cfg);
        let data = payload(2 << 20);
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            let rep = tx.write(&data2).unwrap();
            assert_eq!(rep.raw, data2.len() as u64);
            tx
        });
        let mut got = vec![0u8; data.len()];
        rx.read_exact(&mut got).unwrap();
        let tx = t.join().unwrap();
        assert_eq!(got, data);
        assert_eq!(tx.stats().per_stream.len(), 4);
        let frames: u64 = tx.stats().per_stream.iter().map(|s| s.frames).sum();
        assert!(frames > 0, "striped message must report per-stream frames");
        assert_eq!(
            tx.stats()
                .per_stream
                .iter()
                .map(|s| s.raw_bytes)
                .sum::<u64>(),
            data.len() as u64
        );
    }

    #[test]
    fn group_handles_message_sequences_and_partial_reads() {
        let cfg = AdocConfig::default().with_levels(1, 10);
        let (tx, mut rx) = group_pair(2, &cfg);
        let msgs: Vec<Vec<u8>> = (0..3).map(|i| payload(700_000 + i * 13_331)).collect();
        let msgs2 = msgs.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            for m in &msgs2 {
                tx.write(m).unwrap();
            }
            tx
        });
        for m in &msgs {
            // Read each message in two unequal chunks across the
            // boundary machinery.
            let cut = m.len() / 3;
            let mut head = vec![0u8; cut];
            rx.read_exact(&mut head).unwrap();
            let mut tail = vec![0u8; m.len() - cut];
            rx.read_exact(&mut tail).unwrap();
            assert_eq!(&head[..], &m[..cut]);
            assert_eq!(&tail[..], &m[cut..]);
        }
        t.join().unwrap();
    }

    #[test]
    fn small_messages_stay_direct_on_primary() {
        let cfg = AdocConfig::default();
        let (tx, mut rx) = group_pair(3, &cfg);
        let t = thread::spawn(move || {
            let mut tx = tx;
            tx.write(b"tiny").unwrap();
            assert_eq!(tx.stats().direct_messages, 1);
            tx
        });
        let mut buf = [0u8; 4];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tiny");
        t.join().unwrap();
    }

    #[test]
    fn stream_count_mismatch_is_a_typed_error() {
        // A peer announcing 3 streams on a group we built with 2: the
        // handshake must fail with the typed mismatch. The peer side is
        // scripted by hand so the test is free of construction races.
        use crate::wire::GroupHello;
        use std::io::Write as _;
        let (a0, mut b0) = duplex_pipe(1 << 20);
        let (a1, mut b1) = duplex_pipe(1 << 20);
        for (i, peer) in [&mut b0, &mut b1].into_iter().enumerate() {
            peer.write_all(&GroupHello::new(3, i as u8).encode())
                .unwrap();
        }
        let _keep = (b0, b1); // keep peer ends open
        let two = vec![a0.split(), a1.split()];
        let err = AdocStreamGroup::from_pairs(two, AdocConfig::default()).unwrap_err();
        match AdocError::from_io(&err) {
            Some(AdocError::StreamCountMismatch { ours: 2, theirs: 3 }) => {}
            other => panic!("expected StreamCountMismatch, got {other:?} ({err})"),
        }
    }

    #[test]
    fn from_negotiated_skips_the_handshake() {
        // A caller that matched streams itself (the server daemon) can
        // build both ends with no hello bytes on the wire at all.
        let cfg = AdocConfig::default().with_levels(1, 10);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for _ in 0..3 {
            let (a, b) = duplex_pipe(1 << 20);
            left.push(a.split());
            right.push(b.split());
        }
        let mut tx = AdocStreamGroup::from_negotiated(left, cfg.clone()).unwrap();
        let mut rx = AdocStreamGroup::from_negotiated(right, cfg).unwrap();
        assert_eq!(tx.streams(), 3);
        let data = payload(900_000);
        let expect = data.clone();
        let t = thread::spawn(move || {
            tx.write(&data).unwrap();
            tx
        });
        let mut got = vec![0u8; expect.len()];
        rx.read_exact(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn tokened_and_untokened_hellos_interoperate() {
        // One side announces with a group token (as connect() does), the
        // other without (plain from_pairs): the handshake still
        // validates on streams and ids, ignoring the token.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for _ in 0..2 {
            let (a, b) = duplex_pipe(1 << 20);
            left.push(a.split());
            right.push(b.split());
        }
        let cfg = AdocConfig::default();
        let cfg_r = cfg.clone();
        let (mut tx, mut rx) = thread::scope(|s| {
            let l = s.spawn(move || {
                AdocStreamGroup::from_pairs_with_token(
                    left,
                    cfg,
                    crate::socket::fresh_group_token(),
                )
                .unwrap()
            });
            let r = AdocStreamGroup::from_pairs(right, cfg_r).unwrap();
            (l.join().unwrap(), r)
        });
        tx.write(b"tokened hello interop").unwrap();
        let mut buf = [0u8; 21];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tokened hello interop");
    }

    #[test]
    fn group_receive_file_drains_leftover() {
        let cfg = AdocConfig::default().with_levels(1, 10);
        let (tx, mut rx) = group_pair(2, &cfg);
        let data = payload(800_000);
        let data2 = data.clone();
        let t = thread::spawn(move || {
            let mut tx = tx;
            tx.write(&data2).unwrap();
            tx.write(b"trailer").unwrap();
            tx
        });
        let mut head = vec![0u8; 100_000];
        rx.read_exact(&mut head).unwrap();
        let mut rest: Vec<u8> = Vec::new();
        let n = rx.receive_file(&mut rest).unwrap();
        t.join().unwrap();
        assert_eq!(head, data[..100_000]);
        assert_eq!(n as usize, data.len() - 100_000 + 7);
        assert_eq!(&rest[..data.len() - 100_000], &data[100_000..]);
        assert_eq!(&rest[data.len() - 100_000..], b"trailer");
    }
}

#[cfg(test)]
mod io_trait_tests {
    use super::*;
    use adoc_sim::pipe::duplex_pipe;
    use std::thread;

    #[test]
    fn io_copy_works_through_adoc() {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        let mut tx = AdocSocket::new(ar, aw);
        let mut rx = AdocSocket::new(br, bw);

        let data = b"io::copy payload ".repeat(5_000);
        let expect = data.clone();
        let t = thread::spawn(move || {
            let mut src: &[u8] = &data;
            std::io::copy(&mut src, &mut tx).unwrap();
            tx.flush().unwrap();
            tx
        });
        let mut got = vec![0u8; expect.len()];
        rx.read_exact(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn read_to_end_collects_until_eof() {
        let (a, b) = duplex_pipe(1 << 20);
        let (ar, aw) = a.split();
        let (br, bw) = b.split();
        let mut tx = AdocSocket::new(ar, aw);
        let mut rx = AdocSocket::new(br, bw);
        tx.write(b"first ").unwrap();
        tx.write(b"second").unwrap();
        drop(tx);
        let mut all = Vec::new();
        std::io::Read::read_to_end(&mut rx, &mut all).unwrap();
        assert_eq!(all, b"first second");
    }
}
