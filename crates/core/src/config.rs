//! Every constant the paper fixes, as a tunable (the ablation benches
//! sweep them).

use crate::adapt::{DelayAwarePolicy, LevelPolicy};
use crate::error::AdocError;
use crate::pool::BufferPool;
use crate::signals::SignalHub;
use crate::throttle::{NoThrottle, Throttle};
use std::sync::Arc;
use std::time::Duration;

/// Builds a fresh [`LevelPolicy`] per transfer pipeline (each stream of
/// a striped connection gets its own controller, hence its own policy
/// instance).
pub type LevelPolicyFactory = Arc<dyn Fn() -> Box<dyn LevelPolicy> + Send + Sync>;

/// Configuration of an AdOC endpoint.
///
/// Defaults are exactly the paper's values; see each field for the section
/// that fixes it.
#[derive(Clone)]
pub struct AdocConfig {
    /// Minimum compression level (§4.1, `ADOC_MIN_LEVEL`). Setting
    /// `min_level ≥ 1` *forces* compression (disables the direct path and
    /// the probe).
    pub min_level: u8,
    /// Maximum compression level (§4.1, `ADOC_MAX_LEVEL`). Setting
    /// `max_level = 0` disables compression entirely.
    pub max_level: u8,
    /// Bytes read per compression unit (§3.2: 200 KB — large enough that
    /// per-buffer compression loses < 6 %, small enough to stay reactive).
    pub buffer_size: usize,
    /// Queue/emission granularity (§3.2: 8 KB packets).
    pub packet_size: usize,
    /// Messages smaller than this take the direct no-thread path
    /// (§5 "Small messages": 512 KB).
    pub probe_threshold: usize,
    /// Bytes sent uncompressed to measure link speed (§5 "Fast Networks":
    /// 256 KB).
    pub probe_size: usize,
    /// Probe speed above which the rest is sent raw (§5: 500 Mbit/s).
    pub fast_bps: f64,
    /// Emission FIFO capacity in packets (bounds sender memory; the paper
    /// leaves this implicit).
    pub queue_cap: usize,
    /// Fig. 2 thresholds: below `low_water` packets the level can only
    /// fall (paper: 10) …
    pub low_water: usize,
    /// … between `low_water` and `mid_water` it moves by ±1 (paper: 20) …
    pub mid_water: usize,
    /// … between `mid_water` and `high_water` it rises by 2 / falls by 1
    /// (paper: 30); above, it only rises.
    pub high_water: usize,
    /// Minimum acceptable per-buffer compression ratio before the
    /// incompressible-data guard trips (§5 "Compressed and random data").
    /// Set to `0.0` to disable the guard (ablations).
    pub ratio_guard: f64,
    /// Packets pinned to the minimum level after the ratio guard trips
    /// (§5: 10 packets).
    pub ratio_penalty_packets: u32,
    /// How long a diverging level is forbidden (§5 "Compression level
    /// divergence": 1 second).
    pub forbid_duration: Duration,
    /// Margin by which a smaller level's visible bandwidth must beat the
    /// current one to trigger the divergence guard.
    pub divergence_margin: f64,
    /// Upper bound accepted for a peer's message size (protects the
    /// receiver from corrupt headers).
    pub max_message: u64,
    /// Parallel TCP streams one logical connection stripes over (1 =
    /// the paper's single-socket pipeline and its exact v1 wire format;
    /// ≥ 2 = one compression thread, emission queue and level controller
    /// *per stream*, v2 framing, negotiated at connect time — see
    /// [`crate::wire`]).
    pub streams: usize,
    /// How long [`crate::AdocStreamGroup::accept`] (and the server
    /// daemon) waits for a connected peer's `GroupHello` before failing
    /// the accept with [`AdocError::HelloTimeout`]. Without this bound a
    /// client that dies between `connect` and its hello wedges the
    /// accept loop forever.
    pub hello_timeout: Duration,
    /// CPU-speed model charged per unit of (de)compression work
    /// (simulation hook; defaults to none).
    pub throttle: Arc<dyn Throttle>,
    /// Frame-buffer slab shared by every clone of this config (clones
    /// share the underlying free list): the send and receive hot paths
    /// draw all their buffers from here instead of the allocator.
    pub pool: BufferPool,
    /// Per-connection delay-signal hub ([`crate::signals`]): the sender
    /// feeds its emission delays in, the receiver feeds wire-timestamp
    /// arrivals in, and the level policy / server scheduler read
    /// snapshots out. `None` leaves the connection signal-less (the
    /// socket constructors install a fresh hub when `delay_signals` is
    /// on); clones share the hub, which is the point — one connection's
    /// send and receive halves must meet in the same hub.
    pub signals: Option<Arc<SignalHub>>,
    /// Stamp departure timestamps into outgoing v2 frames
    /// ([`crate::wire::FRAME_TS_FLAG`]) and run the delay estimators.
    /// Off the wire is byte-identical to the previous release; v1
    /// (single-stream) framing never carries timestamps either way.
    pub delay_signals: bool,
    /// Builds the [`LevelPolicy`] each pipeline's controller consults;
    /// defaults to [`DelayAwarePolicy`].
    pub policy: LevelPolicyFactory,
}

impl std::fmt::Debug for AdocConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdocConfig")
            .field("min_level", &self.min_level)
            .field("max_level", &self.max_level)
            .field("buffer_size", &self.buffer_size)
            .field("packet_size", &self.packet_size)
            .field("probe_threshold", &self.probe_threshold)
            .field("probe_size", &self.probe_size)
            .field("fast_bps", &self.fast_bps)
            .field("queue_cap", &self.queue_cap)
            .field("streams", &self.streams)
            .finish_non_exhaustive()
    }
}

impl Default for AdocConfig {
    fn default() -> Self {
        AdocConfig {
            min_level: adoc_codec::ADOC_MIN_LEVEL,
            max_level: adoc_codec::ADOC_MAX_LEVEL,
            buffer_size: 200 * 1024,
            packet_size: 8 * 1024,
            probe_threshold: 512 * 1024,
            probe_size: 256 * 1024,
            fast_bps: 500e6,
            queue_cap: 512,
            low_water: 10,
            mid_water: 20,
            high_water: 30,
            ratio_guard: 1.05,
            ratio_penalty_packets: 10,
            forbid_duration: Duration::from_secs(1),
            divergence_margin: 1.10,
            max_message: 1 << 40,
            streams: 1,
            hello_timeout: Duration::from_secs(10),
            throttle: Arc::new(NoThrottle),
            pool: BufferPool::default(),
            signals: None,
            delay_signals: true,
            policy: Arc::new(|| Box::new(DelayAwarePolicy::default())),
        }
    }
}

impl AdocConfig {
    /// Restricts levels like `adoc_write_levels` / `adoc_send_file_levels`
    /// (§4.1): `max = 0` disables compression, `min ≥ 1` forces it.
    pub fn with_levels(mut self, min: u8, max: u8) -> Self {
        self.min_level = min;
        self.max_level = max;
        self
    }

    /// Installs a CPU-speed model (heterogeneous-host experiments).
    pub fn with_throttle(mut self, t: Arc<dyn Throttle>) -> Self {
        self.throttle = t;
        self
    }

    /// Sets the number of parallel streams (1..=255) a connection built
    /// from this config stripes over.
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Sets the stream-group hello timeout (see
    /// [`AdocConfig::hello_timeout`]).
    pub fn with_hello_timeout(mut self, timeout: Duration) -> Self {
        self.hello_timeout = timeout;
        self
    }

    /// Installs a shared delay-signal hub (see [`AdocConfig::signals`]).
    pub fn with_signals(mut self, hub: Arc<SignalHub>) -> Self {
        self.signals = Some(hub);
        self
    }

    /// Installs a level-policy factory (see [`AdocConfig::policy`]).
    pub fn with_policy(mut self, policy: LevelPolicyFactory) -> Self {
        self.policy = policy;
        self
    }

    /// Builds one level policy from the configured factory.
    pub fn level_policy(&self) -> Box<dyn LevelPolicy> {
        (self.policy)()
    }

    /// Installs a fresh hub when delay signals are on and none is
    /// present yet. The socket constructors call this so every clone of
    /// a connection's config (each `write` clones it) shares one hub —
    /// the send and receive halves must meet in the same estimators.
    pub fn ensure_signal_hub(&mut self) {
        if self.delay_signals && self.signals.is_none() {
            self.signals = Some(Arc::new(SignalHub::new()));
        }
    }

    /// The connection's signal hub, but only while delay signals are
    /// enabled — the single gate every producer and consumer shares.
    pub fn signal_hub(&self) -> Option<&SignalHub> {
        if self.delay_signals {
            self.signals.as_deref()
        } else {
            None
        }
    }

    /// True when the caller forces compression on (paper: `min` set above
    /// `ADOC_MIN_LEVEL`).
    pub fn compression_forced(&self) -> bool {
        self.min_level >= 1
    }

    /// True when compression is disabled outright (paper: `max` set to
    /// `ADOC_MIN_LEVEL`).
    pub fn compression_disabled(&self) -> bool {
        self.max_level == 0
    }

    /// Checks the configuration for consistency, returning a typed
    /// [`AdocError::InvalidConfig`] naming the violated rule.
    ///
    /// Called by every construction path ([`crate::AdocSocket`],
    /// [`crate::AdocStreamGroup`], `adoc_register_cfg`, the server
    /// daemon), so a nonsensical config — zero streams, a zero-capacity
    /// queue, a packet smaller than a frame header — surfaces as an
    /// error at the API boundary instead of a panic (or a hang) deep
    /// inside the pipeline threads.
    pub fn validate(&self) -> Result<(), AdocError> {
        fn bad(reason: impl Into<String>) -> Result<(), AdocError> {
            Err(AdocError::InvalidConfig {
                reason: reason.into(),
            })
        }
        if self.min_level > self.max_level {
            return bad(format!(
                "min_level {} > max_level {}",
                self.min_level, self.max_level
            ));
        }
        if self.max_level > adoc_codec::ADOC_MAX_LEVEL {
            return bad(format!(
                "max_level {} out of range (max {})",
                self.max_level,
                adoc_codec::ADOC_MAX_LEVEL
            ));
        }
        if self.packet_size < crate::wire::FRAME_HEADER_LEN {
            return bad(format!(
                "packet_size {} smaller than a frame header ({} bytes)",
                self.packet_size,
                crate::wire::FRAME_HEADER_LEN
            ));
        }
        if self.buffer_size == 0 {
            return bad("buffer_size must be > 0");
        }
        if self.packet_size > self.buffer_size {
            return bad(format!(
                "packet_size {} exceeds buffer_size {}",
                self.packet_size, self.buffer_size
            ));
        }
        if self.probe_size > self.probe_threshold {
            return bad(format!(
                "probe_size {} exceeds probe_threshold {}",
                self.probe_size, self.probe_threshold
            ));
        }
        if !(self.low_water < self.mid_water && self.mid_water < self.high_water) {
            return bad(format!(
                "watermarks must be strictly increasing: {} / {} / {}",
                self.low_water, self.mid_water, self.high_water
            ));
        }
        if self.queue_cap <= self.high_water {
            return bad(format!(
                "queue_cap {} must exceed high_water {} (and be non-zero)",
                self.queue_cap, self.high_water
            ));
        }
        if !(self.ratio_guard == 0.0 || self.ratio_guard >= 1.0) {
            return bad(format!(
                "ratio_guard {} must be 0 (disabled) or >= 1",
                self.ratio_guard
            ));
        }
        if self.streams < 1 || self.streams > 255 {
            return bad(format!(
                "streams {} must be in 1..=255 (stream ids are u8)",
                self.streams
            ));
        }
        if self.hello_timeout.is_zero() {
            // `set_read_timeout(Some(ZERO))` is an error by std's
            // contract, so a zero timeout would fail at accept time with
            // an opaque InvalidInput instead of here.
            return bad("hello_timeout must be > 0 (there is no 'no timeout' setting)");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AdocConfig::default();
        c.validate().unwrap();
        assert_eq!(c.buffer_size, 200 * 1024);
        assert_eq!(c.packet_size, 8 * 1024);
        assert_eq!(c.probe_threshold, 512 * 1024);
        assert_eq!(c.probe_size, 256 * 1024);
        assert_eq!(c.fast_bps, 500e6);
        assert_eq!((c.low_water, c.mid_water, c.high_water), (10, 20, 30));
        assert_eq!(c.forbid_duration, Duration::from_secs(1));
        assert_eq!(c.ratio_penalty_packets, 10);
        assert!(!c.compression_forced());
        assert!(!c.compression_disabled());
    }

    #[test]
    fn forced_and_disabled_flags() {
        assert!(AdocConfig::default()
            .with_levels(1, 10)
            .compression_forced());
        assert!(AdocConfig::default()
            .with_levels(0, 0)
            .compression_disabled());
    }

    /// The reason string of the typed error `cfg` fails with.
    fn reason(cfg: &AdocConfig) -> String {
        match cfg.validate().unwrap_err() {
            crate::error::AdocError::InvalidConfig { reason } => reason,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn invalid_levels_rejected() {
        let cfg = AdocConfig::default().with_levels(5, 2);
        assert!(reason(&cfg).contains("min_level 5 > max_level 2"));
    }

    #[test]
    fn stream_counts_validate() {
        assert_eq!(AdocConfig::default().streams, 1, "default stays v1");
        AdocConfig::default().with_streams(4).validate().unwrap();
        AdocConfig::default().with_streams(255).validate().unwrap();
    }

    #[test]
    fn zero_streams_rejected() {
        let cfg = AdocConfig::default().with_streams(0);
        assert!(reason(&cfg).contains("streams 0 must be in 1..=255"));
    }

    #[test]
    fn pipeline_panicking_configs_are_typed_errors() {
        // Each of these used to survive construction and panic (or hang)
        // only once the pipeline threads touched the bad field.
        let tiny_packet = AdocConfig {
            packet_size: crate::wire::FRAME_HEADER_LEN - 1,
            ..AdocConfig::default()
        };
        assert!(reason(&tiny_packet).contains("smaller than a frame header"));

        let zero_packet = AdocConfig {
            packet_size: 0,
            ..AdocConfig::default()
        };
        assert!(reason(&zero_packet).contains("smaller than a frame header"));

        let zero_buffer = AdocConfig {
            buffer_size: 0,
            ..AdocConfig::default()
        };
        assert!(zero_buffer.validate().is_err());

        let zero_queue = AdocConfig {
            queue_cap: 0,
            ..AdocConfig::default()
        };
        assert!(reason(&zero_queue).contains("queue_cap 0 must exceed"));

        let shallow_queue = AdocConfig {
            queue_cap: AdocConfig::default().high_water,
            ..AdocConfig::default()
        };
        assert!(reason(&shallow_queue).contains("must exceed high_water"));

        let bad_guard = AdocConfig {
            ratio_guard: 0.5,
            ..AdocConfig::default()
        };
        assert!(reason(&bad_guard).contains("ratio_guard"));
    }

    #[test]
    fn minimum_legal_packet_size_passes() {
        let cfg = AdocConfig {
            packet_size: crate::wire::FRAME_HEADER_LEN,
            ..AdocConfig::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn hello_timeout_is_tunable() {
        let cfg = AdocConfig::default().with_hello_timeout(Duration::from_millis(250));
        assert_eq!(cfg.hello_timeout, Duration::from_millis(250));
        cfg.validate().unwrap();
    }
}
