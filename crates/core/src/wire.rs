//! AdOC wire protocol (little-endian throughout).
//!
//! # v1 — single stream (`streams == 1`, the paper's format)
//!
//! ```text
//! Message      := MsgHeader Body
//! MsgHeader    := magic:u8 = 0xAD   kind:u8   raw_len:u64
//! Direct body  := raw bytes [raw_len]
//! Adaptive body:= probe_len:u32  probe-bytes[probe_len]  Frame*
//!                 (probe_len + Σ frame.raw_len == raw_len)
//! Frame        := level:u8  raw_len:u32  payload_len:u32  payload
//! ```
//!
//! `Direct` carries small messages (< 512 KB) and messages sent with
//! compression disabled; `Adaptive` carries the probe prefix plus one
//! frame per 200 KB compression buffer.
//!
//! # v2 — striped stream groups (`streams >= 2`)
//!
//! One logical connection fans out over `N` parallel streams. Stream 0 is
//! the **primary**: message headers, probes and direct bodies travel on
//! it exactly as in v1. Adaptive frames may travel on *any* stream and
//! carry a v2 header so the receiver can reassemble them in order:
//!
//! ```text
//! FrameV2 := level:u8  stream:u8  seq:u64  raw_len:u32  payload_len:u32  payload
//! FinV2   := level:u8 = 0xFF  stream:u8  seq:u64 = frames sent on this
//!            stream  raw_len:u32 = 0  payload_len:u32 = 0
//! ```
//!
//! `seq` numbers frames of one message globally from 0 (the sender
//! stripes frame `s` onto stream `s % N`); the receiver delivers frames
//! in ascending `seq` regardless of arrival stream. Every stream ends
//! each adaptive message with a `FinV2` marker — including streams that
//! carried no data frames — so per-stream readers know when the message
//! is over. Fast-path (probe-measured fast network) raw frames use the
//! same v2 framing on the primary stream.
//!
//! # Negotiation rule
//!
//! The stream count is negotiated **once, at connection-group setup**,
//! never per message:
//!
//! * `streams == 1`: nothing is added to the wire. The byte stream is
//!   exactly v1 — a v2-capable endpoint talking on one stream is
//!   indistinguishable from (and interoperable with) a v1 endpoint.
//! * `streams >= 2`: each endpoint sends a [`GroupHello`] on every
//!   stream and reads its peer's hello from every stream before any
//!   message flows. Both sides must announce the **same stream count**;
//!   a mismatch (or a v1 peer's message header arriving where a hello
//!   was expected) is an `InvalidData` error, not a silent
//!   renegotiation.
//!
//!   Two hello encodings exist:
//!
//!   * version 2 — 5 bytes: `magic 0xAD, 'G', 2, streams, stream_id`;
//!   * version 3 — 13 bytes: the same followed by a little-endian
//!     `token: u64`. The token names the *group* the stream belongs to,
//!     so a multi-client daemon can reassemble groups whose connections
//!     interleave in its accept queue (every client on `127.0.0.1`
//!     shares a peer address — without the token, two concurrent
//!     2-stream dials are indistinguishable). `token == 0` is reserved
//!     to mean "untokened" and is what a version-2 hello decodes to.
//!
//!   Readers accept both versions; [`crate::AdocStreamGroup::connect`]
//!   sends version 3 with a fresh nonzero token, symmetric
//!   `from_pairs` construction (where grouping is already decided by
//!   the caller) stays on version 2.

use std::io::{self, Read, Write};

/// Message header magic byte.
pub const MAGIC: u8 = 0xAD;

/// Second magic byte of a stream-group hello (`'G'`).
pub const GROUP_MAGIC: u8 = b'G';

/// Wire-format version of an untokened [`GroupHello`].
pub const GROUP_VERSION: u8 = 2;

/// Wire-format version of a tokened [`GroupHello`] (adds a `u64` group
/// token after the version-2 fields).
pub const GROUP_VERSION_TOKENED: u8 = 3;

/// Wire-format version of a [`SessionHello`]: the version-3 layout
/// followed by the session fields (kind, session id, expiry, MAC).
pub const GROUP_VERSION_SESSION: u8 = 4;

/// Second magic byte of a [`SessionAccept`] reply (`'S'`).
pub const SESSION_MAGIC: u8 = b'S';

/// Size of an encoded message header.
pub const MSG_HEADER_LEN: usize = 10;
/// Size of an encoded frame header.
pub const FRAME_HEADER_LEN: usize = 9;
/// Size of an encoded v2 frame header.
pub const FRAME_HEADER_V2_LEN: usize = 18;
/// Size of an encoded untokened (version 2) stream-group hello.
pub const GROUP_HELLO_LEN: usize = 5;
/// Size of an encoded tokened (version 3) stream-group hello.
pub const GROUP_HELLO_TOKENED_LEN: usize = GROUP_HELLO_LEN + 8;
/// Size of an encoded session (version 4) hello: the tokened layout plus
/// `kind`, `session_id`, `expires_us` and a 16-byte MAC.
pub const SESSION_HELLO_LEN: usize = GROUP_HELLO_TOKENED_LEN + 1 + 8 + 8 + 16;
/// Size of an encoded [`SessionAccept`] reply.
pub const SESSION_ACCEPT_LEN: usize = 2 + 1 + 1 + 8 + 8 + 16 + 8 + 8;

/// Level byte marking a v2 end-of-message frame on one stream.
pub const LEVEL_FIN: u8 = 0xFF;

/// Flag bit in the v2 level byte announcing that a little-endian `u64`
/// departure timestamp (µs, sender's [`crate::SignalHub`] clock)
/// follows the fixed header. Compression levels top out at 10, so the
/// bit never collides with a real level; [`LEVEL_FIN`] is tested first,
/// so FIN frames (which never carry timestamps) are unaffected.
pub const FRAME_TS_FLAG: u8 = 0x40;

/// Size of an encoded v2 frame header carrying a departure timestamp.
pub const FRAME_HEADER_V2_TS_LEN: usize = FRAME_HEADER_V2_LEN + 8;

/// Largest raw (and encoded) frame size the u32 header fields can carry.
/// The sender refuses larger buffers with
/// [`crate::error::AdocError::FrameTooLarge`] instead of truncating.
pub const MAX_FRAME_LEN: u64 = u32::MAX as u64;

/// How a message's body is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Raw bytes, no threads involved.
    Direct,
    /// Probe prefix + compressed frames.
    Adaptive,
}

impl MsgKind {
    fn to_byte(self) -> u8 {
        match self {
            MsgKind::Direct => 0,
            MsgKind::Adaptive => 1,
        }
    }

    fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(MsgKind::Direct),
            1 => Ok(MsgKind::Adaptive),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown AdOC message kind {other}"),
            )),
        }
    }
}

/// Encodes a message header into a 10-byte array.
pub fn encode_msg_header(kind: MsgKind, raw_len: u64) -> [u8; MSG_HEADER_LEN] {
    let mut h = [0u8; MSG_HEADER_LEN];
    h[0] = MAGIC;
    h[1] = kind.to_byte();
    h[2..10].copy_from_slice(&raw_len.to_le_bytes());
    h
}

/// Reads a message header. Returns `Ok(None)` on clean EOF (no bytes at
/// all); a partial header is an error.
pub fn read_msg_header(r: &mut impl Read) -> io::Result<Option<(MsgKind, u64)>> {
    let mut h = [0u8; MSG_HEADER_LEN];
    // First byte decides between EOF and a real header.
    let mut got = 0usize;
    while got < 1 {
        let n = r.read(&mut h[..1])?;
        if n == 0 {
            return Ok(None);
        }
        got = n;
    }
    r.read_exact(&mut h[1..])?;
    if h[0] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad AdOC magic {:#04x}", h[0]),
        ));
    }
    let kind = MsgKind::from_byte(h[1])?;
    let raw_len = u64::from_le_bytes(h[2..10].try_into().expect("8 bytes"));
    Ok(Some((kind, raw_len)))
}

/// One compression buffer on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// AdOC level the payload was compressed at (0 = raw).
    pub level: u8,
    /// Decoded size of this frame.
    pub raw_len: u32,
    /// Encoded (on-wire) payload size.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Encodes into a 9-byte array.
    pub fn encode(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut h = [0u8; FRAME_HEADER_LEN];
        h[0] = self.level;
        h[1..5].copy_from_slice(&self.raw_len.to_le_bytes());
        h[5..9].copy_from_slice(&self.payload_len.to_le_bytes());
        h
    }

    /// Reads and validates a frame header.
    pub fn read(r: &mut impl Read, max_level: u8) -> io::Result<FrameHeader> {
        let mut h = [0u8; FRAME_HEADER_LEN];
        r.read_exact(&mut h)?;
        let level = h[0];
        if level > max_level {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame level {level} exceeds protocol maximum {max_level}"),
            ));
        }
        let raw_len = u32::from_le_bytes(h[1..5].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(h[5..9].try_into().expect("4 bytes"));
        if level == 0 && raw_len != payload_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "raw frame with mismatched lengths",
            ));
        }
        Ok(FrameHeader {
            level,
            raw_len,
            payload_len,
        })
    }
}

/// One compression buffer on a striped (v2) connection: a [`FrameHeader`]
/// plus the stream it travelled on and its global in-message sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeaderV2 {
    /// AdOC level of the payload (0 = raw, [`LEVEL_FIN`] = end marker).
    pub level: u8,
    /// Stream the frame was emitted on (0-based).
    pub stream: u8,
    /// Global frame sequence number within the message, from 0.
    pub seq: u64,
    /// Decoded size of this frame.
    pub raw_len: u32,
    /// Encoded (on-wire) payload size.
    pub payload_len: u32,
    /// Departure timestamp (µs on the sender's signal clock), carried
    /// when [`FRAME_TS_FLAG`] is set. Feeds the receiver's
    /// delay-gradient estimator; `None` on FIN frames, on v2 peers
    /// predating the flag, and whenever `delay_signals` is off.
    pub ts_us: Option<u64>,
}

/// An encoded v2 frame header: 18 bytes, or 26 with a timestamp.
/// Dereferences to the valid byte slice.
pub struct EncodedFrameV2 {
    buf: [u8; FRAME_HEADER_V2_TS_LEN],
    len: usize,
}

impl std::ops::Deref for EncodedFrameV2 {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl FrameHeaderV2 {
    /// A data frame without a timestamp (the pre-signals v2 layout).
    pub fn data(level: u8, stream: u8, seq: u64, raw_len: u32, payload_len: u32) -> FrameHeaderV2 {
        FrameHeaderV2 {
            level,
            stream,
            seq,
            raw_len,
            payload_len,
            ts_us: None,
        }
    }

    /// The end-of-message marker for `stream`, recording how many data
    /// frames that stream carried.
    pub fn fin(stream: u8, frames_sent: u64) -> FrameHeaderV2 {
        FrameHeaderV2 {
            level: LEVEL_FIN,
            stream,
            seq: frames_sent,
            raw_len: 0,
            payload_len: 0,
            ts_us: None,
        }
    }

    /// True when this header marks end-of-message on its stream.
    pub fn is_fin(&self) -> bool {
        self.level == LEVEL_FIN
    }

    /// Encodes into 18 bytes, or 26 when a timestamp rides along.
    pub fn encode(&self) -> EncodedFrameV2 {
        let mut h = [0u8; FRAME_HEADER_V2_TS_LEN];
        h[0] = self.level;
        h[1] = self.stream;
        h[2..10].copy_from_slice(&self.seq.to_le_bytes());
        h[10..14].copy_from_slice(&self.raw_len.to_le_bytes());
        h[14..18].copy_from_slice(&self.payload_len.to_le_bytes());
        let len = match self.ts_us {
            Some(ts) if self.level != LEVEL_FIN => {
                h[0] |= FRAME_TS_FLAG;
                h[18..26].copy_from_slice(&ts.to_le_bytes());
                FRAME_HEADER_V2_TS_LEN
            }
            _ => FRAME_HEADER_V2_LEN,
        };
        EncodedFrameV2 { buf: h, len }
    }

    /// Reads and validates a v2 frame header (either layout).
    pub fn read(r: &mut impl Read, max_level: u8) -> io::Result<FrameHeaderV2> {
        let mut h = [0u8; FRAME_HEADER_V2_LEN];
        r.read_exact(&mut h)?;
        // FIN first: 0xFF has the timestamp bit set but is not a
        // timestamped frame.
        let (level, ts_flagged) = if h[0] == LEVEL_FIN {
            (LEVEL_FIN, false)
        } else {
            (h[0] & !FRAME_TS_FLAG, h[0] & FRAME_TS_FLAG != 0)
        };
        if level != LEVEL_FIN && level > max_level {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame level {level} exceeds protocol maximum {max_level}"),
            ));
        }
        let stream = h[1];
        let seq = u64::from_le_bytes(h[2..10].try_into().expect("8 bytes"));
        let raw_len = u32::from_le_bytes(h[10..14].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(h[14..18].try_into().expect("4 bytes"));
        let ts_us = if ts_flagged {
            let mut t = [0u8; 8];
            r.read_exact(&mut t)?;
            Some(u64::from_le_bytes(t))
        } else {
            None
        };
        if level == LEVEL_FIN && (raw_len != 0 || payload_len != 0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "FIN frame with non-empty payload",
            ));
        }
        if level == 0 && raw_len != payload_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "raw frame with mismatched lengths",
            ));
        }
        Ok(FrameHeaderV2 {
            level,
            stream,
            seq,
            raw_len,
            payload_len,
            ts_us,
        })
    }
}

/// The per-stream negotiation record exchanged when a stream group forms
/// (see the module docs' negotiation rule). Never sent when
/// `streams == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupHello {
    /// Total streams in the group the sender is announcing.
    pub streams: u8,
    /// Which stream of the group this hello travels on (0-based).
    pub stream_id: u8,
    /// Group token naming which dial this stream belongs to (0 =
    /// untokened / version-2 hello). A multi-client acceptor groups
    /// streams by token; point-to-point construction ignores it.
    pub token: u64,
}

impl GroupHello {
    /// An untokened hello (encodes as version 2).
    pub fn new(streams: u8, stream_id: u8) -> GroupHello {
        GroupHello {
            streams,
            stream_id,
            token: 0,
        }
    }

    /// Encodes as version 2 (5 bytes, `token == 0`) or version 3
    /// (13 bytes) depending on the token.
    pub fn encode(&self) -> Vec<u8> {
        let version = if self.token == 0 {
            GROUP_VERSION
        } else {
            GROUP_VERSION_TOKENED
        };
        let mut out = vec![MAGIC, GROUP_MAGIC, version, self.streams, self.stream_id];
        if self.token != 0 {
            out.extend_from_slice(&self.token.to_le_bytes());
        }
        out
    }

    /// Reads and validates a hello of either version.
    pub fn read(r: &mut impl Read) -> io::Result<GroupHello> {
        let mut h = [0u8; GROUP_HELLO_LEN];
        r.read_exact(&mut h)?;
        if h[0] != MAGIC || h[1] != GROUP_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "expected stream-group hello, got {:#04x} {:#04x} (v1 peer on a multi-stream group?)",
                    h[0], h[1]
                ),
            ));
        }
        let token = match h[2] {
            GROUP_VERSION => 0,
            GROUP_VERSION_TOKENED => {
                let mut t = [0u8; 8];
                r.read_exact(&mut t)?;
                u64::from_le_bytes(t)
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported stream-group version {other}"),
                ));
            }
        };
        if h[3] == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream-group hello announcing zero streams",
            ));
        }
        Ok(GroupHello {
            streams: h[3],
            stream_id: h[4],
            token,
        })
    }
}

/// What a version-4 hello is asking for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// Open a fresh session; the ticket fields are zero (or, under
    /// `require_auth`, the MAC authenticates the hello itself).
    New,
    /// Resume the session the embedded ticket names.
    Resume,
}

impl SessionKind {
    fn to_byte(self) -> u8 {
        match self {
            SessionKind::New => 0,
            SessionKind::Resume => 1,
        }
    }

    fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(SessionKind::New),
            1 => Ok(SessionKind::Resume),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown session hello kind {other}"),
            )),
        }
    }
}

/// The version-4 per-stream negotiation record: a [`GroupHello`] that
/// additionally names (or requests) a **session**. All session fields are
/// identical on every stream of one dial — the MAC deliberately excludes
/// the stream id — so the acceptor can verify any stream in isolation,
/// *before* admitting the peer anywhere.
///
/// * `kind == New`: `session_id`/`expires_us` are 0. Under `require_auth`
///   the MAC is [`crate::session::TicketKey::hello_mac`] over
///   `(streams, token)`; otherwise it is all-zero and ignored.
/// * `kind == Resume`: `session_id`, `expires_us` and `mac` are the
///   fields of the [`crate::session::SessionTicket`] being presented,
///   verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHello {
    /// Total streams in the group the sender is announcing (1 is legal
    /// here, unlike plain group hellos: a session may span one stream).
    pub streams: u8,
    /// Which stream of the group this hello travels on (0-based).
    pub stream_id: u8,
    /// Fresh group token naming this dial (nonzero).
    pub token: u64,
    /// New session or resume.
    pub kind: SessionKind,
    /// Ticket session id (`Resume`) or 0 (`New`).
    pub session_id: u64,
    /// Ticket expiry (`Resume`) or 0 (`New`).
    pub expires_us: u64,
    /// Ticket MAC (`Resume`) or hello MAC / zeros (`New`).
    pub mac: [u8; 16],
}

impl SessionHello {
    /// Encodes into the 46-byte version-4 layout.
    pub fn encode(&self) -> [u8; SESSION_HELLO_LEN] {
        let mut out = [0u8; SESSION_HELLO_LEN];
        out[0] = MAGIC;
        out[1] = GROUP_MAGIC;
        out[2] = GROUP_VERSION_SESSION;
        out[3] = self.streams;
        out[4] = self.stream_id;
        out[5..13].copy_from_slice(&self.token.to_le_bytes());
        out[13] = self.kind.to_byte();
        out[14..22].copy_from_slice(&self.session_id.to_le_bytes());
        out[22..30].copy_from_slice(&self.expires_us.to_le_bytes());
        out[30..46].copy_from_slice(&self.mac);
        out
    }

    /// Reads the fields following the 5-byte hello prefix (magic, group
    /// magic, version, streams, stream_id), which the caller has already
    /// consumed and validated as version 4.
    fn read_tail(r: &mut impl Read, streams: u8, stream_id: u8) -> io::Result<SessionHello> {
        let mut tail = [0u8; SESSION_HELLO_LEN - GROUP_HELLO_LEN];
        r.read_exact(&mut tail)?;
        let token = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        let kind = SessionKind::from_byte(tail[8])?;
        let session_id = u64::from_le_bytes(tail[9..17].try_into().expect("8 bytes"));
        let expires_us = u64::from_le_bytes(tail[17..25].try_into().expect("8 bytes"));
        let mut mac = [0u8; 16];
        mac.copy_from_slice(&tail[25..41]);
        Ok(SessionHello {
            streams,
            stream_id,
            token,
            kind,
            session_id,
            expires_us,
            mac,
        })
    }
}

/// Any hello an acceptor may receive: legacy group (v2/v3) or session
/// (v4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// A version-2/3 [`GroupHello`].
    Group(GroupHello),
    /// A version-4 [`SessionHello`].
    Session(SessionHello),
}

/// Reads a hello of any supported version — the acceptor-side entry
/// point. Shares validation with [`GroupHello::read`] (magic, version,
/// nonzero stream count).
pub fn read_hello(r: &mut impl Read) -> io::Result<Hello> {
    let mut h = [0u8; GROUP_HELLO_LEN];
    r.read_exact(&mut h)?;
    if h[0] != MAGIC || h[1] != GROUP_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected stream-group hello, got {:#04x} {:#04x} (v1 peer on a multi-stream group?)",
                h[0], h[1]
            ),
        ));
    }
    if h[3] == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "stream-group hello announcing zero streams",
        ));
    }
    match h[2] {
        GROUP_VERSION => Ok(Hello::Group(GroupHello {
            streams: h[3],
            stream_id: h[4],
            token: 0,
        })),
        GROUP_VERSION_TOKENED => {
            let mut t = [0u8; 8];
            r.read_exact(&mut t)?;
            Ok(Hello::Group(GroupHello {
                streams: h[3],
                stream_id: h[4],
                token: u64::from_le_bytes(t),
            }))
        }
        GROUP_VERSION_SESSION => Ok(Hello::Session(SessionHello::read_tail(r, h[3], h[4])?)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported stream-group version {other}"),
        )),
    }
}

/// Why a session handshake was refused — the `status` codes of a
/// [`SessionAccept`].
pub mod session_status {
    /// Handshake accepted.
    pub const OK: u8 = 0;
    /// Authentication failed (bad or missing hello MAC, or a plaintext
    /// hello under `require_auth`).
    pub const AUTH_FAILED: u8 = 1;
    /// Resume refused: unknown or already-reclaimed session, peer
    /// mismatch, or the server is draining.
    pub const RESUME_REJECTED: u8 = 2;
    /// The presented ticket's expiry has passed.
    pub const TICKET_EXPIRED: u8 = 3;
}

/// The acceptor's reply to a [`SessionHello`], written on the primary
/// stream after the per-stream [`GroupHello`] answers (on accept), or on
/// each stream *instead* of a hello (on reject — so a rejected client
/// learns why before the socket closes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAccept {
    /// One of [`session_status`]; non-zero means rejected and every
    /// other field is zero.
    pub status: u8,
    /// 1 when an existing session was resumed, 0 for a fresh session.
    pub resumed: u8,
    /// Ticket: session id.
    pub session_id: u64,
    /// Ticket: absolute expiry (µs since the Unix epoch).
    pub expires_us: u64,
    /// Ticket: MAC.
    pub mac: [u8; 16],
    /// Resume point: the next global frame sequence number the server
    /// expects (0 when there is no partial message to continue).
    pub next_seq: u64,
    /// Resume point: raw message bytes already delivered contiguously
    /// (0 when there is no partial message to continue).
    pub delivered_raw: u64,
}

impl SessionAccept {
    /// A rejection carrying only the status code.
    pub fn reject(status: u8) -> SessionAccept {
        SessionAccept {
            status,
            resumed: 0,
            session_id: 0,
            expires_us: 0,
            mac: [0u8; 16],
            next_seq: 0,
            delivered_raw: 0,
        }
    }

    /// Encodes into the 52-byte layout.
    pub fn encode(&self) -> [u8; SESSION_ACCEPT_LEN] {
        let mut out = [0u8; SESSION_ACCEPT_LEN];
        out[0] = MAGIC;
        out[1] = SESSION_MAGIC;
        out[2] = self.status;
        out[3] = self.resumed;
        out[4..12].copy_from_slice(&self.session_id.to_le_bytes());
        out[12..20].copy_from_slice(&self.expires_us.to_le_bytes());
        out[20..36].copy_from_slice(&self.mac);
        out[36..44].copy_from_slice(&self.next_seq.to_le_bytes());
        out[44..52].copy_from_slice(&self.delivered_raw.to_le_bytes());
        out
    }

    /// Reads and validates a session-accept reply.
    pub fn read(r: &mut impl Read) -> io::Result<SessionAccept> {
        let mut h = [0u8; SESSION_ACCEPT_LEN];
        r.read_exact(&mut h)?;
        Self::parse(&h)
    }

    /// Parses an already-buffered 52-byte reply (the client sniffs the
    /// first two bytes to distinguish accept-path hellos from rejects,
    /// then hands the full buffer here).
    pub fn parse(h: &[u8; SESSION_ACCEPT_LEN]) -> io::Result<SessionAccept> {
        if h[0] != MAGIC || h[1] != SESSION_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected session accept, got {:#04x} {:#04x}", h[0], h[1]),
            ));
        }
        let mut mac = [0u8; 16];
        mac.copy_from_slice(&h[20..36]);
        Ok(SessionAccept {
            status: h[2],
            resumed: h[3],
            session_id: u64::from_le_bytes(h[4..12].try_into().expect("8 bytes")),
            expires_us: u64::from_le_bytes(h[12..20].try_into().expect("8 bytes")),
            mac,
            next_seq: u64::from_le_bytes(h[36..44].try_into().expect("8 bytes")),
            delivered_raw: u64::from_le_bytes(h[44..52].try_into().expect("8 bytes")),
        })
    }
}

/// Writes a `u32` length prefix (probe segment).
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` length prefix.
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn msg_header_roundtrip() {
        for (kind, len) in [(MsgKind::Direct, 0u64), (MsgKind::Adaptive, u64::MAX / 2)] {
            let enc = encode_msg_header(kind, len);
            let mut c = Cursor::new(enc.to_vec());
            let (k, l) = read_msg_header(&mut c).unwrap().unwrap();
            assert_eq!((k, l), (kind, len));
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let mut c = Cursor::new(Vec::<u8>::new());
        assert!(read_msg_header(&mut c).unwrap().is_none());
    }

    #[test]
    fn partial_header_is_error() {
        let enc = encode_msg_header(MsgKind::Direct, 42);
        let mut c = Cursor::new(enc[..4].to_vec());
        assert!(read_msg_header(&mut c).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = encode_msg_header(MsgKind::Direct, 1).to_vec();
        enc[0] = 0x00;
        assert!(read_msg_header(&mut Cursor::new(enc)).is_err());
    }

    #[test]
    fn bad_kind_rejected() {
        let mut enc = encode_msg_header(MsgKind::Direct, 1).to_vec();
        enc[1] = 9;
        assert!(read_msg_header(&mut Cursor::new(enc)).is_err());
    }

    #[test]
    fn frame_header_roundtrip() {
        let fh = FrameHeader {
            level: 7,
            raw_len: 204_800,
            payload_len: 31_337,
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert_eq!(FrameHeader::read(&mut c, 10).unwrap(), fh);
    }

    #[test]
    fn frame_level_out_of_range() {
        let fh = FrameHeader {
            level: 11,
            raw_len: 10,
            payload_len: 10,
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert!(FrameHeader::read(&mut c, 10).is_err());
    }

    #[test]
    fn raw_frame_length_mismatch_rejected() {
        let fh = FrameHeader {
            level: 0,
            raw_len: 10,
            payload_len: 9,
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert!(FrameHeader::read(&mut c, 10).is_err());
    }

    #[test]
    fn frame_v2_roundtrip() {
        let fh = FrameHeaderV2::data(9, 3, u64::MAX / 3, 204_800, 55_555);
        let enc = fh.encode();
        assert_eq!(enc.len(), FRAME_HEADER_V2_LEN, "no ts: layout unchanged");
        let mut c = Cursor::new(enc.to_vec());
        assert_eq!(FrameHeaderV2::read(&mut c, 10).unwrap(), fh);
    }

    #[test]
    fn frame_v2_timestamp_roundtrip() {
        let fh = FrameHeaderV2 {
            ts_us: Some(123_456_789_012),
            ..FrameHeaderV2::data(7, 1, 42, 204_800, 31_337)
        };
        let enc = fh.encode();
        assert_eq!(enc.len(), FRAME_HEADER_V2_TS_LEN);
        assert_eq!(enc[0], 7 | FRAME_TS_FLAG);
        let mut c = Cursor::new(enc.to_vec());
        let got = FrameHeaderV2::read(&mut c, 10).unwrap();
        assert_eq!(got, fh);
        assert_eq!(got.ts_us, Some(123_456_789_012));
    }

    #[test]
    fn frame_v2_timestamped_level_zero_roundtrips() {
        // Level 0 (raw) with the ts flag: the flag must be masked off
        // before the raw-length consistency check.
        let fh = FrameHeaderV2 {
            ts_us: Some(5),
            ..FrameHeaderV2::data(0, 0, 0, 8_192, 8_192)
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert_eq!(FrameHeaderV2::read(&mut c, 10).unwrap(), fh);
    }

    #[test]
    fn frame_v2_truncated_timestamp_is_error() {
        let fh = FrameHeaderV2 {
            ts_us: Some(99),
            ..FrameHeaderV2::data(3, 0, 1, 10, 10)
        };
        let enc = fh.encode().to_vec();
        let mut c = Cursor::new(enc[..FRAME_HEADER_V2_LEN + 3].to_vec());
        assert!(FrameHeaderV2::read(&mut c, 10).is_err());
    }

    #[test]
    fn fin_never_carries_a_timestamp() {
        // A FIN built with a timestamp silently encodes without one:
        // 0xFF already has the flag bit, so a timestamped FIN would be
        // unparseable.
        let fin = FrameHeaderV2 {
            ts_us: Some(7),
            ..FrameHeaderV2::fin(1, 3)
        };
        let enc = fin.encode();
        assert_eq!(enc.len(), FRAME_HEADER_V2_LEN);
        let mut c = Cursor::new(enc.to_vec());
        let got = FrameHeaderV2::read(&mut c, 10).unwrap();
        assert!(got.is_fin());
        assert_eq!(got.ts_us, None);
    }

    #[test]
    fn frame_v2_fin_roundtrip() {
        let fin = FrameHeaderV2::fin(2, 41);
        assert!(fin.is_fin());
        let mut c = Cursor::new(fin.encode().to_vec());
        let got = FrameHeaderV2::read(&mut c, 10).unwrap();
        assert_eq!(got, fin);
        assert_eq!(got.seq, 41);
    }

    #[test]
    fn frame_v2_rejects_bad_level_and_nonempty_fin() {
        let mut bad_level = FrameHeaderV2::data(11, 0, 0, 1, 1).encode().to_vec();
        assert!(FrameHeaderV2::read(&mut Cursor::new(bad_level.clone()), 10).is_err());
        // A FIN whose length fields are non-zero is corrupt.
        bad_level[0] = LEVEL_FIN;
        assert!(FrameHeaderV2::read(&mut Cursor::new(bad_level), 10).is_err());
    }

    #[test]
    fn frame_v2_raw_length_mismatch_rejected() {
        let fh = FrameHeaderV2::data(0, 1, 7, 10, 9);
        let mut c = Cursor::new(fh.encode().to_vec());
        assert!(FrameHeaderV2::read(&mut c, 10).is_err());
    }

    #[test]
    fn group_hello_roundtrip() {
        let h = GroupHello::new(4, 2);
        let enc = h.encode();
        assert_eq!(enc.len(), GROUP_HELLO_LEN, "untokened hello stays v2");
        assert_eq!(enc[2], GROUP_VERSION);
        let mut c = Cursor::new(enc);
        assert_eq!(GroupHello::read(&mut c).unwrap(), h);
    }

    #[test]
    fn tokened_group_hello_roundtrip() {
        let h = GroupHello {
            streams: 8,
            stream_id: 5,
            token: 0xDEAD_BEEF_CAFE_F00D,
        };
        let enc = h.encode();
        assert_eq!(enc.len(), GROUP_HELLO_TOKENED_LEN);
        assert_eq!(enc[2], GROUP_VERSION_TOKENED);
        let mut c = Cursor::new(enc);
        assert_eq!(GroupHello::read(&mut c).unwrap(), h);
    }

    #[test]
    fn truncated_tokened_hello_is_error() {
        let h = GroupHello {
            streams: 2,
            stream_id: 0,
            token: 42,
        };
        let enc = h.encode();
        // Cut inside the token field: the reader must not misparse.
        let mut c = Cursor::new(enc[..GROUP_HELLO_LEN + 3].to_vec());
        assert!(GroupHello::read(&mut c).is_err());
    }

    #[test]
    fn session_hello_roundtrip_via_read_hello() {
        let h = SessionHello {
            streams: 3,
            stream_id: 2,
            token: 0x1122_3344_5566_7788,
            kind: SessionKind::Resume,
            session_id: 77,
            expires_us: 1_000_000,
            mac: [0xAB; 16],
        };
        let enc = h.encode();
        assert_eq!(enc.len(), SESSION_HELLO_LEN);
        let mut c = Cursor::new(enc.to_vec());
        assert_eq!(read_hello(&mut c).unwrap(), Hello::Session(h));
        // Legacy hellos still parse through the same entry point.
        let legacy = GroupHello {
            streams: 2,
            stream_id: 1,
            token: 99,
        };
        let mut c = Cursor::new(legacy.encode());
        assert_eq!(read_hello(&mut c).unwrap(), Hello::Group(legacy));
    }

    #[test]
    fn session_hello_rejects_truncation_and_bad_kind() {
        let h = SessionHello {
            streams: 2,
            stream_id: 0,
            token: 1,
            kind: SessionKind::New,
            session_id: 0,
            expires_us: 0,
            mac: [0u8; 16],
        };
        let enc = h.encode();
        for cut in [6, 13, 20, 45] {
            let mut c = Cursor::new(enc[..cut].to_vec());
            assert!(read_hello(&mut c).is_err(), "cut {cut}");
        }
        let mut bad = enc;
        bad[13] = 9; // unknown kind byte
        assert!(read_hello(&mut Cursor::new(bad.to_vec())).is_err());
    }

    #[test]
    fn session_accept_roundtrip_and_reject() {
        let a = SessionAccept {
            status: session_status::OK,
            resumed: 1,
            session_id: 5,
            expires_us: 123,
            mac: [0x5C; 16],
            next_seq: 17,
            delivered_raw: 3_400_000,
        };
        let enc = a.encode();
        assert_eq!(enc.len(), SESSION_ACCEPT_LEN);
        let mut c = Cursor::new(enc.to_vec());
        assert_eq!(SessionAccept::read(&mut c).unwrap(), a);
        let r = SessionAccept::reject(session_status::AUTH_FAILED);
        let mut c = Cursor::new(r.encode().to_vec());
        assert_eq!(SessionAccept::read(&mut c).unwrap().status, 1);
        let mut bad = a.encode();
        bad[1] = b'X';
        assert!(SessionAccept::parse(&bad).is_err());
    }

    #[test]
    fn group_hello_rejects_v1_traffic_and_bad_version() {
        // A v1 message header where a hello is expected must error, not
        // be misparsed.
        let msg = encode_msg_header(MsgKind::Direct, 99);
        assert!(GroupHello::read(&mut Cursor::new(msg.to_vec())).is_err());
        let mut bad = GroupHello::new(2, 0).encode();
        bad[2] = 4; // future version
        assert!(GroupHello::read(&mut Cursor::new(bad)).is_err());
        let mut zero = GroupHello::new(2, 0).encode();
        zero[3] = 0;
        assert!(GroupHello::read(&mut Cursor::new(zero)).is_err());
        // Zero streams is rejected in the tokened form too.
        let mut zero3 = GroupHello {
            streams: 2,
            stream_id: 0,
            token: 7,
        }
        .encode();
        zero3[3] = 0;
        assert!(GroupHello::read(&mut Cursor::new(zero3)).is_err());
    }
}
