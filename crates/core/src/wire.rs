//! AdOC wire protocol (little-endian throughout).
//!
//! ```text
//! Message      := MsgHeader Body
//! MsgHeader    := magic:u8 = 0xAD   kind:u8   raw_len:u64
//! Direct body  := raw bytes [raw_len]
//! Adaptive body:= probe_len:u32  probe-bytes[probe_len]  Frame*
//!                 (probe_len + Σ frame.raw_len == raw_len)
//! Frame        := level:u8  raw_len:u32  payload_len:u32  payload
//! ```
//!
//! `Direct` carries small messages (< 512 KB) and messages sent with
//! compression disabled; `Adaptive` carries the probe prefix plus one
//! frame per 200 KB compression buffer.

use std::io::{self, Read, Write};

/// Message header magic byte.
pub const MAGIC: u8 = 0xAD;

/// Size of an encoded message header.
pub const MSG_HEADER_LEN: usize = 10;
/// Size of an encoded frame header.
pub const FRAME_HEADER_LEN: usize = 9;

/// How a message's body is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Raw bytes, no threads involved.
    Direct,
    /// Probe prefix + compressed frames.
    Adaptive,
}

impl MsgKind {
    fn to_byte(self) -> u8 {
        match self {
            MsgKind::Direct => 0,
            MsgKind::Adaptive => 1,
        }
    }

    fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(MsgKind::Direct),
            1 => Ok(MsgKind::Adaptive),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown AdOC message kind {other}"),
            )),
        }
    }
}

/// Encodes a message header into a 10-byte array.
pub fn encode_msg_header(kind: MsgKind, raw_len: u64) -> [u8; MSG_HEADER_LEN] {
    let mut h = [0u8; MSG_HEADER_LEN];
    h[0] = MAGIC;
    h[1] = kind.to_byte();
    h[2..10].copy_from_slice(&raw_len.to_le_bytes());
    h
}

/// Reads a message header. Returns `Ok(None)` on clean EOF (no bytes at
/// all); a partial header is an error.
pub fn read_msg_header(r: &mut impl Read) -> io::Result<Option<(MsgKind, u64)>> {
    let mut h = [0u8; MSG_HEADER_LEN];
    // First byte decides between EOF and a real header.
    let mut got = 0usize;
    while got < 1 {
        let n = r.read(&mut h[..1])?;
        if n == 0 {
            return Ok(None);
        }
        got = n;
    }
    r.read_exact(&mut h[1..])?;
    if h[0] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad AdOC magic {:#04x}", h[0]),
        ));
    }
    let kind = MsgKind::from_byte(h[1])?;
    let raw_len = u64::from_le_bytes(h[2..10].try_into().expect("8 bytes"));
    Ok(Some((kind, raw_len)))
}

/// One compression buffer on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// AdOC level the payload was compressed at (0 = raw).
    pub level: u8,
    /// Decoded size of this frame.
    pub raw_len: u32,
    /// Encoded (on-wire) payload size.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Encodes into a 9-byte array.
    pub fn encode(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut h = [0u8; FRAME_HEADER_LEN];
        h[0] = self.level;
        h[1..5].copy_from_slice(&self.raw_len.to_le_bytes());
        h[5..9].copy_from_slice(&self.payload_len.to_le_bytes());
        h
    }

    /// Reads and validates a frame header.
    pub fn read(r: &mut impl Read, max_level: u8) -> io::Result<FrameHeader> {
        let mut h = [0u8; FRAME_HEADER_LEN];
        r.read_exact(&mut h)?;
        let level = h[0];
        if level > max_level {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame level {level} exceeds protocol maximum {max_level}"),
            ));
        }
        let raw_len = u32::from_le_bytes(h[1..5].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(h[5..9].try_into().expect("4 bytes"));
        if level == 0 && raw_len != payload_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "raw frame with mismatched lengths",
            ));
        }
        Ok(FrameHeader {
            level,
            raw_len,
            payload_len,
        })
    }
}

/// Writes a `u32` length prefix (probe segment).
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` length prefix.
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn msg_header_roundtrip() {
        for (kind, len) in [(MsgKind::Direct, 0u64), (MsgKind::Adaptive, u64::MAX / 2)] {
            let enc = encode_msg_header(kind, len);
            let mut c = Cursor::new(enc.to_vec());
            let (k, l) = read_msg_header(&mut c).unwrap().unwrap();
            assert_eq!((k, l), (kind, len));
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let mut c = Cursor::new(Vec::<u8>::new());
        assert!(read_msg_header(&mut c).unwrap().is_none());
    }

    #[test]
    fn partial_header_is_error() {
        let enc = encode_msg_header(MsgKind::Direct, 42);
        let mut c = Cursor::new(enc[..4].to_vec());
        assert!(read_msg_header(&mut c).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = encode_msg_header(MsgKind::Direct, 1).to_vec();
        enc[0] = 0x00;
        assert!(read_msg_header(&mut Cursor::new(enc)).is_err());
    }

    #[test]
    fn bad_kind_rejected() {
        let mut enc = encode_msg_header(MsgKind::Direct, 1).to_vec();
        enc[1] = 9;
        assert!(read_msg_header(&mut Cursor::new(enc)).is_err());
    }

    #[test]
    fn frame_header_roundtrip() {
        let fh = FrameHeader {
            level: 7,
            raw_len: 204_800,
            payload_len: 31_337,
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert_eq!(FrameHeader::read(&mut c, 10).unwrap(), fh);
    }

    #[test]
    fn frame_level_out_of_range() {
        let fh = FrameHeader {
            level: 11,
            raw_len: 10,
            payload_len: 10,
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert!(FrameHeader::read(&mut c, 10).is_err());
    }

    #[test]
    fn raw_frame_length_mismatch_rejected() {
        let fh = FrameHeader {
            level: 0,
            raw_len: 10,
            payload_len: 9,
        };
        let mut c = Cursor::new(fh.encode().to_vec());
        assert!(FrameHeader::read(&mut c, 10).is_err());
    }
}
