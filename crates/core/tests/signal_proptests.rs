//! Property tests for the delay-gradient estimator: whatever garbage the
//! two timestamp domains produce — jitter, reordering, clock skew, clock
//! steps — the estimator must never panic and never publish a negative
//! (or baseline-exceeding) queueing delay.

use adoc::signals::{CongestionState, DelayGradientEstimator, SignalSource, BURST_WINDOW_US};
use proptest::prelude::*;
use std::time::Duration;

/// Asserts the estimator's published invariants after any input stream.
fn assert_invariants(est: &DelayGradientEstimator) {
    let q = est.queue_delay_us();
    let b = est.baseline_us();
    assert!(
        b <= q || est.groups() == 0,
        "baseline {b} exceeds queue delay {q}"
    );
    assert!(est.gradient().is_finite(), "gradient not finite");
    if let Some(r) = est.delivery_bps() {
        assert!(r.is_finite() && r >= 0.0, "rate {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (departure, arrival) pairs — including wrap-around
    /// magnitudes — must be digested without panicking, and the
    /// queueing delay stays non-negative by construction (it is
    /// returned as u64 from an i64 difference that would wrap visibly
    /// if it ever went negative).
    #[test]
    fn arbitrary_timestamps_never_panic(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>(), 1usize..65_536), 0..256)
    ) {
        let mut est = DelayGradientEstimator::new();
        for (dep, arr, bytes) in pairs {
            est.on_packet(dep, arr, bytes);
            assert_invariants(&est);
            assert!(
                est.queue_delay_us() <= i64::MAX as u64,
                "queue delay wrapped negative"
            );
        }
    }

    /// A well-paced flow with bounded arrival jitter: the estimator must
    /// not read jitter as congestion (no overuse verdict) and the
    /// baseline must absorb the noise floor.
    #[test]
    fn bounded_jitter_is_not_congestion(
        jitters in proptest::collection::vec(0u64..400, 30..120),
        spacing in (BURST_WINDOW_US + 500)..(BURST_WINDOW_US + 5_000),
    ) {
        let mut est = DelayGradientEstimator::new();
        let mut dep = 0u64;
        for j in jitters {
            // Arrival = departure + propagation (1 ms) + jitter < 400 µs.
            est.on_packet(dep, dep + 1_000 + j, 8_192);
            assert_invariants(&est);
            dep += spacing;
        }
        assert!(
            est.state() != CongestionState::Overuse,
            "jitter misread as overuse (gradient {})",
            est.gradient()
        );
    }

    /// Reordered arrivals inside and across groups: feeding packets
    /// whose departure order disagrees with arrival order must not
    /// panic nor break the invariants.
    #[test]
    fn reordered_groups_keep_invariants(
        base in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 10..80),
        swap_seed in any::<u64>(),
    ) {
        let mut pairs = base;
        // Deterministically swap some adjacent pairs to force reordering.
        let mut s = swap_seed;
        for i in 1..pairs.len() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s & 1 == 1 {
                pairs.swap(i - 1, i);
            }
        }
        let mut est = DelayGradientEstimator::new();
        for (dep, arr) in pairs {
            est.on_packet(dep, arr, 1_500);
            assert_invariants(&est);
        }
    }

    /// Sender/receiver clock skew: a constant offset between the two
    /// clock domains (either sign, up to days) must cancel entirely —
    /// the verdict and the queueing delay match the offset-free run.
    #[test]
    fn constant_clock_skew_cancels(
        offset in 0u64..(86_400u64 * 1_000_000),
        ahead in any::<bool>(),
        n in 20usize..80,
    ) {
        let mut plain = DelayGradientEstimator::new();
        let mut skewed = DelayGradientEstimator::new();
        let mut dep = 1_000_000_000u64; // 1000 s in, so "behind" skew never underflows
        for _ in 0..n {
            let arr = dep + 2_000;
            let skewed_arr = if ahead { arr + offset } else { arr - offset.min(arr) };
            plain.on_packet(dep, arr, 4_096);
            skewed.on_packet(dep, skewed_arr, 4_096);
            dep += BURST_WINDOW_US + 2_000;
        }
        // With `ahead == false` and a huge offset the subtraction is
        // clamped at zero for every arrival equally, so deltas still
        // cancel; either way the two runs agree.
        prop_assert_eq!(plain.state(), skewed.state());
        prop_assert_eq!(plain.queue_delay_us(), skewed.queue_delay_us());
        prop_assert_eq!(plain.baseline_us(), skewed.baseline_us());
    }

    /// Snapshots built from any estimator state expose the same
    /// non-negativity guarantees through the public struct.
    #[test]
    fn snapshots_never_go_negative(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..128)
    ) {
        let mut est = DelayGradientEstimator::new();
        for (dep, arr) in pairs {
            est.on_packet(dep, arr, 1_000);
        }
        let snap = est.snapshot(SignalSource::Local, Duration::ZERO);
        prop_assert!(snap.baseline_us <= snap.queue_delay_us || snap.groups == 0);
        prop_assert!(snap.gradient.is_finite());
        prop_assert!(snap.above_baseline_us() <= snap.queue_delay_us);
    }
}
