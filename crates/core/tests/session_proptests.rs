//! Property tests for session tickets: minting, wire roundtrip,
//! tampering, truncation and expiry. Whatever a peer puts on the wire,
//! a ticket must only verify when it is byte-identical to one this key
//! minted *and* its expiry has not passed.

use adoc::{SessionTicket, TicketError, TicketKey, TICKET_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity, and a decoded ticket verifies
    /// under the minting key at any instant before its expiry.
    #[test]
    fn mint_roundtrips_and_verifies(
        secret in proptest::collection::vec(any::<u8>(), 0..64),
        session_id in any::<u64>(),
        expires_us in 1u64..u64::MAX,
        now_off in 1u64..1_000_000_000,
    ) {
        let key = TicketKey::from_secret(&secret);
        let t = key.mint(session_id, expires_us);
        let decoded = SessionTicket::decode(&t.encode()).expect("full-length ticket parses");
        prop_assert_eq!(decoded, t);
        let now = expires_us.saturating_sub(now_off);
        prop_assert!(key.verify(&decoded, now).is_ok());
    }

    /// Flipping any single bit anywhere in the 32-byte wire form makes
    /// verification fail — in the MAC bytes it is a direct mismatch, in
    /// the id/expiry bytes the tag no longer covers the fields.
    #[test]
    fn any_single_bitflip_is_rejected(
        secret in proptest::collection::vec(any::<u8>(), 1..64),
        session_id in any::<u64>(),
        expires_us in 1u64..u64::MAX,
        byte in 0usize..TICKET_LEN,
        bit in 0u8..8,
    ) {
        let key = TicketKey::from_secret(&secret);
        let mut wire = key.mint(session_id, expires_us).encode();
        wire[byte] ^= 1 << bit;
        let t = SessionTicket::decode(&wire).expect("length unchanged");
        prop_assert!(key.verify(&t, 0).is_err());
    }

    /// A ticket minted under one secret never verifies under a
    /// different secret.
    #[test]
    fn wrong_key_is_rejected(
        a in proptest::collection::vec(any::<u8>(), 0..48),
        b in proptest::collection::vec(any::<u8>(), 0..48),
        session_id in any::<u64>(),
        expires_us in 1u64..u64::MAX,
    ) {
        prop_assume!(a != b);
        let t = TicketKey::from_secret(&a).mint(session_id, expires_us);
        prop_assert_eq!(
            TicketKey::from_secret(&b).verify(&t, 0),
            Err(TicketError::BadMac)
        );
    }

    /// Truncated (or over-long) byte strings never parse into a ticket.
    #[test]
    fn wrong_length_never_parses(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        prop_assume!(bytes.len() != TICKET_LEN);
        prop_assert!(SessionTicket::decode(&bytes).is_err());
    }

    /// An authentic ticket observed at or past its expiry reports
    /// `Expired` (not `BadMac`): the MAC still checks out.
    #[test]
    fn expiry_is_enforced(
        secret in proptest::collection::vec(any::<u8>(), 0..64),
        session_id in any::<u64>(),
        expires_us in any::<u64>(),
        late in 0u64..1_000_000_000,
    ) {
        let key = TicketKey::from_secret(&secret);
        let t = key.mint(session_id, expires_us);
        let now = expires_us.saturating_add(late);
        prop_assert_eq!(key.verify(&t, now), Err(TicketError::Expired));
    }

    /// Key derivation is deterministic: the same secret always yields a
    /// key minting identical tickets, across processes and restarts.
    #[test]
    fn derivation_is_deterministic(
        secret in proptest::collection::vec(any::<u8>(), 0..64),
        session_id in any::<u64>(),
        expires_us in any::<u64>(),
    ) {
        let t1 = TicketKey::from_secret(&secret).mint(session_id, expires_us);
        let t2 = TicketKey::from_secret(&secret).mint(session_id, expires_us);
        prop_assert_eq!(t1, t2);
    }
}
