//! Message-size axes for the bandwidth figures.
//!
//! The paper sweeps 1 B – 32 MB on a log scale. Full-paper-scale sweeps
//! over slow simulated WANs take real wall-clock minutes, so the harness
//! supports a cap.

/// Log-spaced sizes from 1 byte up to `max` (powers of 4, always
/// including the 512 KB compression threshold's neighborhood and `max`
/// itself).
pub fn sizes_up_to(max: usize) -> Vec<usize> {
    assert!(max >= 1);
    let mut v = Vec::new();
    let mut s = 1usize;
    while s <= max {
        v.push(s);
        s = s.saturating_mul(4);
    }
    // The interesting region around the 512 KB probe threshold.
    for extra in [256 * 1024, 512 * 1024, 768 * 1024] {
        if extra <= max {
            v.push(extra);
        }
    }
    if *v.last().expect("non-empty") != max {
        v.push(max);
    }
    v.sort_unstable();
    v.dedup();
    v
}

/// The paper's full sweep: 1 B – 32 MB.
pub fn paper_sizes() -> Vec<usize> {
    sizes_up_to(32 << 20)
}

/// Matrix sizes for the NetSolve figures (paper: up to 2048; the harness
/// default stops earlier to keep dgemm wall time sane).
pub fn matrix_sizes(max_n: usize) -> Vec<usize> {
    [128usize, 256, 384, 512, 768, 1024, 1536, 2048]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_sorted_unique_and_bounded() {
        for max in [1usize, 100, 512 * 1024, 32 << 20] {
            let v = sizes_up_to(max);
            assert!(!v.is_empty());
            assert!(
                v.windows(2).all(|w| w[0] < w[1]),
                "not strictly sorted for {max}"
            );
            assert_eq!(*v.last().unwrap(), max);
            assert_eq!(v[0], 1);
        }
    }

    #[test]
    fn paper_sweep_includes_probe_threshold() {
        let v = paper_sizes();
        assert!(v.contains(&(512 * 1024)));
        assert!(v.contains(&(32 << 20)));
    }

    #[test]
    fn matrix_sizes_respect_cap() {
        assert_eq!(matrix_sizes(512), vec![128, 256, 384, 512]);
        assert_eq!(matrix_sizes(2048).last(), Some(&2048));
    }
}
