//! Synthetic stand-ins for the paper's Table 1 bench files:
//!
//! * `oilpann.hb` — a sparse matrix in Harwell–Boeing format (structured
//!   ASCII; gzip ratios 4.9 → 7.0 across levels 1→9, LZF 3.26);
//! * `bin.tar` — a tarball of executables (gzip ratios ≈ 2.2–2.5,
//!   LZF 1.68).
//!
//! The generators aim at the same compressibility profile, not the exact
//! bytes (the originals are not distributed with the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Harwell–Boeing-style sparse matrix file of roughly
/// `target_bytes` (within one line of it).
///
/// Layout follows the HB fixed-width card format: a header, a block of
/// column pointers, a block of row indices, then right-padded scientific-
/// notation values. Indices are small and monotone, values have few
/// significant digits — which is what makes real `.hb` files compress so
/// well.
pub fn harwell_boeing(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11B0_E111);
    let mut out = Vec::with_capacity(target_bytes + 128);

    out.extend_from_slice(
        b"oilpan-like sparse matrix (synthetic, AdOC reproduction)        synth001\n",
    );
    out.extend_from_slice(
        b"        rsa                                                             \n",
    );

    // Column-pointer card images: monotone integers, 8 per line, width 10.
    let mut col_ptr = 1u64;
    let ptr_budget = target_bytes / 8;
    while out.len() < ptr_budget {
        for _ in 0..8 {
            out.extend_from_slice(format!("{col_ptr:>10}").as_bytes());
            col_ptr += u64::from(rng.gen_range(1..=9u8));
        }
        out.push(b'\n');
    }

    // Row-index cards: bounded integers, 8 per line. Real row indices are
    // locally clustered; model that with a random walk.
    let idx_budget = target_bytes * 3 / 8;
    let mut row = 1i64;
    while out.len() < idx_budget {
        for _ in 0..8 {
            row += i64::from(rng.gen_range(-40..=60i8));
            row = row.clamp(1, 66_000);
            out.extend_from_slice(format!("{row:>10}").as_bytes());
        }
        out.push(b'\n');
    }

    // Value cards: 4 values per line, fixed width, ~4 significant digits
    // then zero padding (HB files store limited precision).
    while out.len() < target_bytes {
        for _ in 0..4 {
            let m1 = rng.gen_range(1..=9u8);
            let mrest = rng.gen_range(0..1000u32);
            let exp = rng.gen_range(0..=6u8);
            let sign = if rng.gen_bool(0.2) { '-' } else { ' ' };
            out.extend_from_slice(format!("  {sign}{m1}.{mrest:03}000000000E+0{exp}").as_bytes());
        }
        out.push(b'\n');
    }
    out.truncate(target_bytes);
    out
}

/// Generates a tar-of-executables-style binary of roughly `target_bytes`.
///
/// Alternates 512-byte-aligned tar-ish headers, machine-code-like sections
/// (random words drawn from a skewed opcode pool with repeated idioms),
/// symbol/string tables with shared prefixes, and zero padding — matching
/// the ≈2.2–2.5 gzip ratio of real `bin.tar`.
pub fn bin_tarball(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB1_7A48A1);
    let mut out = Vec::with_capacity(target_bytes + 4096);

    // Idiom pool: short byte sequences that recur, as real code does.
    let idioms: Vec<Vec<u8>> = (0..64)
        .map(|_| {
            let len = rng.gen_range(3..=12usize);
            (0..len).map(|_| rng.gen()).collect()
        })
        .collect();
    let syllables = [
        "lib", "get", "set", "init", "str", "mem", "sys", "net", "buf", "ctl",
    ];

    while out.len() < target_bytes {
        // tar-like header: name + mode/uid fields + zero fill to 512.
        let hdr_start = out.len();
        out.extend_from_slice(b"usr/bin/");
        for _ in 0..3 {
            out.extend_from_slice(syllables[rng.gen_range(0..syllables.len())].as_bytes());
        }
        out.extend_from_slice(b"\x000000755\x000001750\x000001750\x00");
        while (out.len() - hdr_start) % 512 != 0 {
            out.push(0);
        }

        // "Text" section: mixture of fresh random words and idioms.
        let text_len = rng.gen_range(4096..16_384usize);
        let text_end = out.len() + text_len;
        while out.len() < text_end {
            if rng.gen_bool(0.55) {
                let mut w = [0u8; 4];
                rng.fill(&mut w);
                out.extend_from_slice(&w);
            } else {
                let idiom = &idioms[rng.gen_range(0..idioms.len())];
                out.extend_from_slice(idiom);
            }
        }

        // String-table section: NUL-separated symbols with shared prefixes.
        let strtab_end = out.len() + rng.gen_range(512..2048usize);
        while out.len() < strtab_end {
            out.push(b'_');
            for _ in 0..rng.gen_range(2..5usize) {
                out.extend_from_slice(syllables[rng.gen_range(0..syllables.len())].as_bytes());
            }
            out.extend_from_slice(format!("{}", rng.gen_range(0..100u8)).as_bytes());
            out.push(0);
        }

        // Zero padding to the next 512 boundary plus an occasional hole.
        while out.len() % 512 != 0 {
            out.push(0);
        }
        if rng.gen_bool(0.25) {
            out.extend(std::iter::repeat_n(0u8, 512));
        }
    }
    out.truncate(target_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio_at(data: &[u8], gzip_level: u8) -> f64 {
        let mut c = Vec::new();
        adoc_codec::deflate::deflate(data, gzip_level, &mut c);
        data.len() as f64 / c.len() as f64
    }

    fn lzf_ratio(data: &[u8]) -> f64 {
        let mut c = Vec::new();
        adoc_codec::lzf::compress(data, &mut c);
        data.len() as f64 / c.len() as f64
    }

    #[test]
    fn hb_matches_table1_profile() {
        let data = harwell_boeing(1 << 20, 5);
        assert_eq!(data.len(), 1 << 20);
        let g1 = ratio_at(&data, 1);
        let g6 = ratio_at(&data, 6);
        let g9 = ratio_at(&data, 9);
        let lz = lzf_ratio(&data);
        // Table 1 (oilpann.hb): lzf 3.26, gzip1 4.88, gzip6 6.64, gzip9 7.02.
        assert!((2.2..4.8).contains(&lz), "lzf ratio {lz:.2}");
        assert!((3.5..6.5).contains(&g1), "gzip1 ratio {g1:.2}");
        assert!(g6 > g1, "gzip6 {g6:.2} ≤ gzip1 {g1:.2}");
        assert!(g9 >= g6 * 0.98, "gzip9 {g9:.2} < gzip6 {g6:.2}");
    }

    #[test]
    fn tarball_matches_table1_profile() {
        let data = bin_tarball(1 << 20, 6);
        assert_eq!(data.len(), 1 << 20);
        let g1 = ratio_at(&data, 1);
        let g9 = ratio_at(&data, 9);
        let lz = lzf_ratio(&data);
        // Table 1 (bin.tar): lzf 1.68, gzip1 2.23, gzip9 2.46.
        assert!((1.3..2.2).contains(&lz), "lzf ratio {lz:.2}");
        assert!((1.8..2.9).contains(&g1), "gzip1 ratio {g1:.2}");
        assert!(g9 >= g1, "gzip9 {g9:.2} < gzip1 {g1:.2}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(harwell_boeing(65_536, 9), harwell_boeing(65_536, 9));
        assert_eq!(bin_tarball(65_536, 9), bin_tarball(65_536, 9));
    }

    #[test]
    fn hb_is_ascii() {
        let data = harwell_boeing(100_000, 1);
        assert!(data
            .iter()
            .all(|&b| b == b'\n' || (0x20..0x7f).contains(&b)));
    }
}
