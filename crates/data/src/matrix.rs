//! Matrices for the NetSolve experiments (paper §6.2).
//!
//! Two kinds, exactly as the paper defines them:
//!
//! * **sparse** — "matrix full of zero", still shipped densely (that is
//!   why compression wins so big);
//! * **dense** — "13 significant digits … and an exponent between 1e-20
//!   and 1e+20", the worst realistic case.
//!
//! Wire encodings: ASCII scientific notation (13 significant digits — the
//! format whose ≈2.6× compressibility reproduces the paper's dense-matrix
//! speedups) and raw little-endian f64.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A square row-major f64 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows = number of columns.
    pub n: usize,
    /// Row-major values, `n * n` of them.
    pub data: Vec<f64>,
}

impl Matrix {
    /// The all-zero "sparse" matrix of the paper.
    pub fn sparse(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The paper's dense matrix: 13 significant digits, exponent in
    /// `[-20, 20]`, random sign.
    pub fn dense(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15E_CAFE);
        let data = (0..n * n)
            .map(|_| {
                let mantissa: f64 = rng.gen_range(1.0..10.0);
                let exp: i32 = rng.gen_range(-20..=20);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * mantissa * 10f64.powi(exp)
            })
            .collect();
        Matrix { n, data }
    }

    /// Identity matrix (tests).
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::sparse(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Element access.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        &mut self.data[row * self.n + col]
    }

    /// Maximum absolute element difference (test tolerance checks).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Serializes values in the NetSolve-era ASCII format: 13 significant
/// digits of scientific notation, one value per field.
pub fn values_to_ascii(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 21);
    for v in values {
        out.extend_from_slice(format!("{v:.12e} ").as_bytes());
    }
    out
}

/// Parses [`values_to_ascii`] output.
pub fn values_from_ascii(data: &[u8], expected: usize) -> Result<Vec<f64>, String> {
    let text = std::str::from_utf8(data).map_err(|e| e.to_string())?;
    let vals: Result<Vec<f64>, _> = text.split_whitespace().map(str::parse::<f64>).collect();
    let vals = vals.map_err(|e| e.to_string())?;
    if vals.len() != expected {
        return Err(format!("expected {expected} values, got {}", vals.len()));
    }
    Ok(vals)
}

/// Serializes values as raw little-endian f64.
pub fn values_to_binary(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses [`values_to_binary`] output.
pub fn values_from_binary(data: &[u8], expected: usize) -> Result<Vec<f64>, String> {
    if data.len() != expected * 8 {
        return Err(format!(
            "expected {} bytes, got {}",
            expected * 8,
            data.len()
        ));
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_is_all_zero() {
        let m = Matrix::sparse(64);
        assert_eq!(m.data.len(), 64 * 64);
        assert!(m.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dense_values_in_spec_range() {
        let m = Matrix::dense(50, 3);
        for &v in &m.data {
            let a = v.abs();
            assert!((1e-20..1e21).contains(&a), "value {v} outside paper range");
        }
        // Deterministic per seed.
        assert_eq!(Matrix::dense(50, 3), Matrix::dense(50, 3));
        assert_ne!(Matrix::dense(50, 3), Matrix::dense(50, 4));
    }

    #[test]
    fn ascii_roundtrip_preserves_13_digits() {
        let m = Matrix::dense(20, 5);
        let wire = values_to_ascii(&m.data);
        let back = values_from_ascii(&wire, m.data.len()).unwrap();
        for (a, b) in m.data.iter().zip(&back) {
            let rel = ((a - b) / a).abs();
            assert!(rel < 1e-12, "{a} vs {b} rel err {rel}");
        }
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let m = Matrix::dense(20, 6);
        let wire = values_to_binary(&m.data);
        let back = values_from_binary(&wire, m.data.len()).unwrap();
        assert_eq!(back, m.data);
    }

    #[test]
    fn ascii_dense_compresses_about_2_6x() {
        // The property behind Fig. 9's dense-matrix speedup.
        let m = Matrix::dense(128, 7);
        let wire = values_to_ascii(&m.data);
        let mut c = Vec::new();
        adoc_codec::deflate::deflate(&wire, 6, &mut c);
        let ratio = wire.len() as f64 / c.len() as f64;
        assert!(
            (1.8..3.4).contains(&ratio),
            "dense ASCII gzip-6 ratio {ratio:.2}"
        );
    }

    #[test]
    fn ascii_sparse_compresses_enormously() {
        let m = Matrix::sparse(128);
        let wire = values_to_ascii(&m.data);
        let mut c = Vec::new();
        adoc_codec::deflate::deflate(&wire, 6, &mut c);
        let ratio = wire.len() as f64 / c.len() as f64;
        assert!(ratio > 50.0, "sparse ASCII gzip-6 ratio {ratio:.1}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(values_from_ascii(b"1.0 banana", 2).is_err());
        assert!(values_from_ascii(b"1.0 2.0 3.0", 2).is_err());
        assert!(values_from_binary(&[0u8; 9], 1).is_err());
    }

    #[test]
    fn identity_multiplicative_property_setup() {
        let m = Matrix::identity(8);
        assert_eq!(m.at(3, 3), 1.0);
        assert_eq!(m.at(3, 4), 0.0);
    }
}
