//! The paper's three transfer data types (§6.1): ASCII (gzip-6 ratio ≈ 5),
//! binary (ratio ≈ 2) and incompressible. "These data were generated
//! randomly, the randomness being set accordingly to the desired
//! compression ratio" — we do the same: a seeded mixture of
//! high-entropy tokens and template text, with the mixture fraction
//! calibrated against our own gzip-6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three payload families of Figures 3–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Compresses ≈5× at gzip level 6 (sparse-matrix-file-like ASCII).
    Ascii,
    /// Compresses ≈2× at gzip level 6 (executable-like binary).
    Binary,
    /// Does not compress (random bytes).
    Incompressible,
}

impl DataKind {
    /// All kinds, in the order the paper's figure legends list them.
    pub const ALL: [DataKind; 3] = [DataKind::Ascii, DataKind::Binary, DataKind::Incompressible];

    /// Legend label.
    pub fn name(self) -> &'static str {
        match self {
            DataKind::Ascii => "ASCII",
            DataKind::Binary => "binary",
            DataKind::Incompressible => "incompressible",
        }
    }

    /// The gzip-6 compression ratio this generator is calibrated to.
    pub fn nominal_ratio(self) -> f64 {
        match self {
            DataKind::Ascii => 5.0,
            DataKind::Binary => 2.0,
            DataKind::Incompressible => 1.0,
        }
    }
}

/// Generates `n` bytes of the given kind, deterministically from `seed`.
pub fn generate(kind: DataKind, n: usize, seed: u64) -> Vec<u8> {
    match kind {
        DataKind::Ascii => ascii(n, seed),
        DataKind::Binary => binary(n, seed),
        DataKind::Incompressible => incompressible(n, seed),
    }
}

/// Fully random bytes: gzip cannot compress this (ratio ≤ 1).
pub fn incompressible(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1C0D_E5EED);
    let mut v = vec![0u8; n];
    rng.fill(&mut v[..]);
    v
}

/// ASCII with gzip-6 ratio ≈ 5. The stream mimics a numeric data file:
/// repetitive field structure with a controlled dose of random digits.
pub fn ascii(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5C1_1234);
    let mut out = Vec::with_capacity(n + 32);
    while out.len() < n {
        // One "record": a line of fixed-format fields where only a few
        // digits per field are random (≈14 bits of entropy in 15 bytes);
        // the padding and shared formatting amortize to ≈ ratio 5.
        for _ in 0..4 {
            let d0 = rng.gen_range(1..=9u8);
            let frac: u32 = rng.gen_range(0..100);
            let exp = rng.gen_range(0..=9u8);
            let sign = if rng.gen_bool(0.5) { '+' } else { '-' };
            out.extend_from_slice(format!("  {d0}.{frac:02}00000E{sign}0{exp}").as_bytes());
        }
        out.push(b'\n');
    }
    out.truncate(n);
    out
}

/// Binary with gzip-6 ratio ≈ 2: interleaves random machine-word-like
/// groups with repetitive structure, like an executable image.
pub fn binary(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB17A_5678);
    let mut out = Vec::with_capacity(n + 64);
    // A small pool of "instruction templates" reused throughout.
    let templates: Vec<[u8; 8]> = (0..32)
        .map(|_| {
            let mut t = [0u8; 8];
            rng.fill(&mut t);
            t
        })
        .collect();
    while out.len() < n {
        if rng.gen_bool(0.42) {
            // Fresh random word: incompressible content.
            let mut w = [0u8; 8];
            rng.fill(&mut w);
            out.extend_from_slice(&w);
        } else {
            // Re-used template word: compressible content.
            let t = templates[rng.gen_range(0..templates.len())];
            out.extend_from_slice(&t);
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gzip6_ratio(data: &[u8]) -> f64 {
        let mut c = Vec::new();
        adoc_codec::deflate::deflate(data, 6, &mut c);
        data.len() as f64 / c.len() as f64
    }

    #[test]
    fn deterministic_given_seed() {
        for kind in DataKind::ALL {
            assert_eq!(generate(kind, 10_000, 7), generate(kind, 10_000, 7));
            assert_ne!(
                generate(kind, 10_000, 7),
                generate(kind, 10_000, 8),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn exact_sizes() {
        for kind in DataKind::ALL {
            for n in [0usize, 1, 13, 4096, 100_001] {
                assert_eq!(generate(kind, n, 1).len(), n, "{kind:?} n={n}");
            }
        }
    }

    #[test]
    fn ascii_is_printable() {
        let data = ascii(50_000, 3);
        assert!(data
            .iter()
            .all(|&b| b == b'\n' || (0x20..0x7f).contains(&b)));
    }

    #[test]
    fn ascii_ratio_calibrated_near_5() {
        let r = gzip6_ratio(&ascii(1 << 20, 11));
        assert!(
            (3.8..6.5).contains(&r),
            "ASCII gzip-6 ratio {r:.2}, want ≈5"
        );
    }

    #[test]
    fn binary_ratio_calibrated_near_2() {
        let r = gzip6_ratio(&binary(1 << 20, 12));
        assert!(
            (1.6..2.6).contains(&r),
            "binary gzip-6 ratio {r:.2}, want ≈2"
        );
    }

    #[test]
    fn incompressible_does_not_compress() {
        let r = gzip6_ratio(&incompressible(1 << 20, 13));
        assert!(r <= 1.01, "incompressible ratio {r:.3}");
    }

    #[test]
    fn ratio_ordering_matches_paper() {
        let a = gzip6_ratio(&ascii(1 << 19, 21));
        let b = gzip6_ratio(&binary(1 << 19, 21));
        let i = gzip6_ratio(&incompressible(1 << 19, 21));
        assert!(a > b && b > i, "ratios not ordered: {a:.2} {b:.2} {i:.2}");
    }
}
