//! # adoc-data — workload generators calibrated to the AdOC paper
//!
//! Seeded, deterministic generators for every payload the evaluation
//! needs:
//!
//! * [`gen`] — the three transfer data types of Figures 3–7
//!   (ASCII ≈ 5×, binary ≈ 2×, incompressible);
//! * [`corpus`] — Table 1's bench files (`oilpann.hb`-like Harwell–Boeing
//!   ASCII, `bin.tar`-like executable tarball);
//! * [`matrix`] — the NetSolve dense/sparse matrices and their ASCII /
//!   binary wire encodings (Figs. 8–9);
//! * [`sweep`] — message-size axes matching the figures' log-scale sweeps.

#![warn(missing_docs)]
pub mod corpus;
pub mod gen;
pub mod matrix;
pub mod sweep;

pub use gen::{generate, DataKind};
pub use matrix::Matrix;
