//! DEFLATE decoder (RFC 1951): stored, fixed and dynamic blocks, with
//! strict validation and an output-size limit against corrupt streams.

use crate::bitio::BitReader;
use crate::error::{CodecError, Result};
use crate::huffman::HuffDecoder;
use crate::tables::*;
use std::sync::OnceLock;

fn fixed_decoders() -> &'static (HuffDecoder, HuffDecoder) {
    static FIXED: OnceLock<(HuffDecoder, HuffDecoder)> = OnceLock::new();
    FIXED.get_or_init(|| {
        let lit = HuffDecoder::from_lengths(&fixed_litlen_lengths(), false)
            .expect("fixed litlen tree is complete");
        let dist = HuffDecoder::from_lengths(&fixed_dist_lengths(), false)
            .expect("fixed dist tree is complete");
        (lit, dist)
    })
}

/// Decodes a raw DEFLATE stream, appending to `out`. At most `max_out`
/// bytes are produced beyond the existing contents of `out`.
///
/// Trailing bytes after the final block are ignored (containers read them
/// separately); use [`inflate_exact`] when the stream must end cleanly.
pub fn inflate(data: &[u8], out: &mut Vec<u8>, max_out: usize) -> Result<usize> {
    let mut r = BitReader::new(data);
    let consumed = inflate_from_reader(&mut r, out, max_out)?;
    Ok(consumed)
}

/// Like [`inflate`] but runs off an existing bit reader and returns the
/// number of bytes produced.
pub fn inflate_from_reader(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    max_out: usize,
) -> Result<usize> {
    let base = out.len();
    loop {
        let last = r.read_bits(1)? == 1;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => inflate_stored(r, out, base, max_out)?,
            0b01 => {
                let (lit, dist) = fixed_decoders();
                inflate_huffman(r, out, base, max_out, lit, Some(dist))?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_header(r)?;
                inflate_huffman(r, out, base, max_out, &lit, dist.as_ref())?;
            }
            _ => return Err(CodecError::Corrupt("reserved block type 11")),
        }
        if last {
            break;
        }
    }
    Ok(out.len() - base)
}

fn inflate_stored(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    base: usize,
    max_out: usize,
) -> Result<()> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(CodecError::Corrupt("stored block LEN/NLEN mismatch"));
    }
    if out.len() - base + len as usize > max_out {
        return Err(CodecError::OutputLimitExceeded { limit: max_out });
    }
    let bytes = r.read_aligned_bytes(len as usize)?;
    out.extend_from_slice(bytes);
    Ok(())
}

/// Reads an RFC 1951 §3.2.7 dynamic block header and builds the two
/// decoders.
fn read_dynamic_header(r: &mut BitReader<'_>) -> Result<(HuffDecoder, Option<HuffDecoder>)> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > NUM_LITLEN {
        return Err(CodecError::Corrupt("HLIT exceeds 286"));
    }
    if hdist > NUM_DIST {
        return Err(CodecError::Corrupt("HDIST exceeds 30"));
    }

    let mut clen_lengths = [0u8; NUM_CLEN];
    for &sym in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[sym] = r.read_bits(3)? as u8;
    }
    let clen_dec = HuffDecoder::from_lengths(&clen_lengths, false)
        .map_err(|_| CodecError::Corrupt("bad code-length code"))?;

    // Decode hlit + hdist code lengths as one sequence (runs may cross the
    // boundary).
    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let sym = clen_dec.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths
                    .last()
                    .ok_or(CodecError::Corrupt("repeat with no previous length"))?;
                let n = 3 + r.read_bits(2)? as usize;
                if lengths.len() + n > total {
                    return Err(CodecError::Corrupt("code-length repeat overruns header"));
                }
                lengths.extend(std::iter::repeat_n(prev, n));
            }
            17 => {
                let n = 3 + r.read_bits(3)? as usize;
                if lengths.len() + n > total {
                    return Err(CodecError::Corrupt("zero-run overruns header"));
                }
                lengths.extend(std::iter::repeat_n(0u8, n));
            }
            18 => {
                let n = 11 + r.read_bits(7)? as usize;
                if lengths.len() + n > total {
                    return Err(CodecError::Corrupt("zero-run overruns header"));
                }
                lengths.extend(std::iter::repeat_n(0u8, n));
            }
            _ => unreachable!("code-length alphabet has 19 symbols"),
        }
    }

    let (lit_lengths, dist_lengths) = lengths.split_at(hlit);
    if lit_lengths[EOB] == 0 {
        return Err(CodecError::Corrupt("no end-of-block code"));
    }
    let lit = HuffDecoder::from_lengths(lit_lengths, false)?;
    // Distance trees may be incomplete (single-code streams) or entirely
    // absent (all-literal blocks); an absent tree only errors if a length
    // code actually appears.
    let dist = if dist_lengths.iter().all(|&l| l == 0) {
        None
    } else {
        Some(
            HuffDecoder::from_lengths(dist_lengths, true)
                .or(Err(CodecError::Corrupt("bad distance code")))?,
        )
    };
    Ok((lit, dist))
}

fn inflate_huffman(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    base: usize,
    max_out: usize,
    lit: &HuffDecoder,
    dist_dec: Option<&HuffDecoder>,
) -> Result<()> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() - base >= max_out {
                    return Err(CodecError::OutputLimitExceeded { limit: max_out });
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let idx = sym - 257;
                let len =
                    LENGTH_BASE[idx] as usize + r.read_bits(u32::from(LENGTH_EXTRA[idx]))? as usize;

                let dsym = dist_dec
                    .ok_or(CodecError::Corrupt(
                        "length code in block with no distance tree",
                    ))?
                    .decode(r)?;
                if dsym >= NUM_DIST {
                    return Err(CodecError::Corrupt("distance code 30/31 in stream"));
                }
                let dist =
                    DIST_BASE[dsym] as usize + r.read_bits(u32::from(DIST_EXTRA[dsym]))? as usize;

                let produced = out.len() - base;
                if dist > produced {
                    return Err(CodecError::BadDistance {
                        dist,
                        have: produced,
                    });
                }
                if produced + len > max_out {
                    return Err(CodecError::OutputLimitExceeded { limit: max_out });
                }
                // Overlapping copies are the RLE idiom; copy byte-wise when
                // ranges overlap, chunk-wise otherwise.
                let start = out.len() - dist;
                if dist >= len {
                    out.extend_from_within(start..start + len);
                } else {
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
            _ => return Err(CodecError::Corrupt("literal/length symbol out of range")),
        }
    }
}

/// One-shot inflate with an exact expected size: errors if the stream
/// produces more or fewer bytes.
pub fn inflate_exact(data: &[u8], expected: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    inflate(data, &mut out, expected)?;
    if out.len() != expected {
        return Err(CodecError::Corrupt("stream shorter than expected size"));
    }
    Ok(out)
}

/// One-shot inflate with a size hint used both as capacity and output cap.
pub fn inflate_to_vec(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(max_out.min(1 << 24));
    inflate(data, &mut out, max_out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::deflate_to_vec;

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let data = [0b0000_0111u8];
        assert!(matches!(
            inflate_to_vec(&data, 100),
            Err(CodecError::Corrupt("reserved block type 11"))
        ));
    }

    #[test]
    fn rejects_len_nlen_mismatch() {
        let mut data = vec![0b0000_0001u8]; // final, stored
        data.extend_from_slice(&5u16.to_le_bytes());
        data.extend_from_slice(&5u16.to_le_bytes()); // should be !5
        data.extend_from_slice(b"hello");
        assert!(inflate_to_vec(&data, 100).is_err());
    }

    #[test]
    fn decodes_fixed_block_from_spec() {
        // Hand-assembled fixed block containing "abc": codes for a,b,c are
        // 8-bit (0x30 + byte - wait, easier to trust our encoder for fixed
        // trees and check a known-zlib byte stream instead):
        // `printf 'abc' | pigz -z -` deflate payload: 4b 4c 4a 06 00
        let data = [0x4b, 0x4c, 0x4a, 0x06, 0x00];
        let out = inflate_to_vec(&data, 16).unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn decodes_zlib_produced_fixed_stream_with_matches() {
        // deflate payload of zlib level 9 for 200 bytes of "ab":
        // python3: zlib.compress(b'ab'*100, 9)[2:-4]
        let data = [0x4b, 0x4c, 0x4a, 0x1c, 0x16, 0x10, 0x00];
        let out = inflate_to_vec(&data, 256).unwrap();
        assert_eq!(out, b"ab".repeat(100));
    }

    #[test]
    fn decodes_zlib_produced_text_stream() {
        // python3: zlib.compress(b'the quick brown fox jumps over the lazy dog. '*8, 6)[2:-4]
        let data = [
            0x2b, 0xc9, 0x48, 0x55, 0x28, 0x2c, 0xcd, 0x4c, 0xce, 0x56, 0x48, 0x2a, 0xca, 0x2f,
            0xcf, 0x53, 0x48, 0xcb, 0xaf, 0x50, 0xc8, 0x2a, 0xcd, 0x2d, 0x28, 0x56, 0xc8, 0x2f,
            0x4b, 0x2d, 0x52, 0x28, 0x01, 0x4a, 0xe7, 0x24, 0x56, 0x55, 0x2a, 0xa4, 0xe4, 0xa7,
            0xeb, 0x81, 0x79, 0xa3, 0x8a, 0xc9, 0x52, 0x0c, 0x00,
        ];
        let expect = b"the quick brown fox jumps over the lazy dog. ".repeat(8);
        let out = inflate_to_vec(&data, expect.len()).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn truncated_streams_error_not_panic() {
        let comp = deflate_to_vec(b"some reasonably long input for truncation testing", 6);
        for cut in 0..comp.len() {
            let _ = inflate_to_vec(&comp[..cut], 1024); // must not panic
        }
    }

    #[test]
    fn bitflip_corruption_detected_or_bounded() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let comp = deflate_to_vec(&data, 6);
        let mut bad_outputs = 0;
        for byte in 0..comp.len().min(200) {
            let mut c = comp.clone();
            c[byte] ^= 0x40;
            // Either an error or output bounded by the cap — never a panic.
            if let Ok(out) = inflate_to_vec(&c, data.len()) {
                assert!(out.len() <= data.len());
                bad_outputs += 1;
            }
        }
        // Some corruptions decode "successfully"; that's fine — containers
        // catch them by checksum. Just ensure the decoder survived all.
        let _ = bad_outputs;
    }

    #[test]
    fn output_cap_stops_zip_bombs() {
        let bomb_src = vec![0u8; 10 << 20];
        let comp = deflate_to_vec(&bomb_src, 9);
        assert!(comp.len() < 40_000);
        let err = inflate_to_vec(&comp, 1 << 16).unwrap_err();
        assert!(matches!(err, CodecError::OutputLimitExceeded { .. }));
    }

    #[test]
    fn inflate_exact_rejects_short_streams() {
        let comp = deflate_to_vec(b"12345", 6);
        assert!(inflate_exact(&comp, 5).is_ok());
        assert!(inflate_exact(&comp, 6).is_err());
        assert!(inflate_exact(&comp, 4).is_err());
    }

    #[test]
    fn multiple_sequential_streams_report_consumption() {
        let a = deflate_to_vec(b"first stream", 6);
        let b = deflate_to_vec(b"second stream", 6);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let mut out = Vec::new();
        inflate(&joined, &mut out, 64).unwrap();
        assert_eq!(out, b"first stream");
    }
}
