//! gzip container (RFC 1952): the format the paper's Table 1 benchmarks
//! with `gzip 1` … `gzip 9`.

use crate::checksum::Crc32;
use crate::error::{CodecError, Result};
use crate::inflate::inflate;

const MAGIC: [u8; 2] = [0x1f, 0x8b];
const CM_DEFLATE: u8 = 8;
const OS_UNKNOWN: u8 = 255;

// FLG bits.
const FTEXT: u8 = 0x01;
const FHCRC: u8 = 0x02;
const FEXTRA: u8 = 0x04;
const FNAME: u8 = 0x08;
const FCOMMENT: u8 = 0x10;

/// Compresses `data` into a gzip member appended to `out`, reusing the
/// caller's [`DeflateEncoder`] state — the allocation-free streaming form
/// of [`gzip_compress`].
pub fn gzip_compress_with(
    enc: &mut crate::deflate::DeflateEncoder,
    data: &[u8],
    level: u8,
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no name/comment/extra
    out.extend_from_slice(&0u32.to_le_bytes()); // MTIME unknown

    // XFL: 2 = max compression, 4 = fastest (RFC 1952).
    out.push(match level {
        9 => 2,
        1 => 4,
        _ => 0,
    });
    out.push(OS_UNKNOWN);
    enc.deflate(data, level, out);
    out.extend_from_slice(&Crc32::oneshot(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
}

/// Compresses `data` into a gzip member at the given deflate level (0–9).
pub fn gzip_compress(data: &[u8], level: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    gzip_compress_with(
        &mut crate::deflate::DeflateEncoder::new(),
        data,
        level,
        &mut out,
    );
    out
}

/// Decompresses a single gzip member, verifying CRC-32 and ISIZE.
/// `max_out` caps the decoded size.
pub fn gzip_decompress(stream: &[u8], max_out: usize) -> Result<Vec<u8>> {
    if stream.len() < 18 {
        return Err(CodecError::UnexpectedEof);
    }
    if stream[0..2] != MAGIC {
        return Err(CodecError::BadContainer("gzip: bad magic"));
    }
    if stream[2] != CM_DEFLATE {
        return Err(CodecError::BadContainer(
            "gzip: compression method is not deflate",
        ));
    }
    let flg = stream[3];
    let mut pos = 10usize;

    if flg & FEXTRA != 0 {
        if stream.len() < pos + 2 {
            return Err(CodecError::UnexpectedEof);
        }
        let xlen = u16::from_le_bytes([stream[pos], stream[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flg & flag != 0 {
            let end = stream[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(CodecError::UnexpectedEof)?;
            pos += end + 1;
        }
    }
    if flg & FHCRC != 0 {
        pos += 2;
    }
    let _ = flg & FTEXT; // advisory only
    if pos + 8 > stream.len() {
        return Err(CodecError::UnexpectedEof);
    }

    let body = &stream[pos..stream.len() - 8];
    let mut out = Vec::new();
    inflate(body, &mut out, max_out)?;

    let tail = &stream[stream.len() - 8..];
    let expected_crc = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let actual_crc = Crc32::oneshot(&out);
    if expected_crc != actual_crc {
        return Err(CodecError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    let expected_isize = u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]);
    if expected_isize != out.len() as u32 {
        return Err(CodecError::BadContainer("gzip: ISIZE mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_levels() {
        let data = b"gzip container roundtrip, compressible text text text. ".repeat(64);
        for level in 0..=9 {
            let g = gzip_compress(&data, level);
            assert_eq!(
                gzip_decompress(&g, data.len()).unwrap(),
                data,
                "level {level}"
            );
        }
    }

    #[test]
    fn decodes_python_gzip_stream() {
        // python3: gzip.compress(b'hello world') — MTIME varies, zeroed here
        // is fine because we skip it.
        let stream = [
            0x1f, 0x8b, 0x08, 0x00, 0x87, 0x4b, 0x2a, 0x6a, 0x00, 0xff, 0xcb, 0x48, 0xcd, 0xc9,
            0xc9, 0x57, 0x28, 0xcf, 0x2f, 0xca, 0x49, 0x01, 0x00, 0x85, 0x11, 0x4a, 0x0d, 0x0b,
            0x00, 0x00, 0x00,
        ];
        assert_eq!(gzip_decompress(&stream, 64).unwrap(), b"hello world");
    }

    #[test]
    fn crc_corruption_detected() {
        let mut g = gzip_compress(b"check me check me check me", 6);
        let n = g.len();
        g[n - 6] ^= 0x01; // flip a CRC byte
        assert!(matches!(
            gzip_decompress(&g, 1024),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn isize_mismatch_detected() {
        let mut g = gzip_compress(b"isize check payload", 6);
        let n = g.len();
        g[n - 1] ^= 0x01; // flip an ISIZE byte
        assert!(gzip_decompress(&g, 1024).is_err());
    }

    #[test]
    fn skips_fname_field() {
        // Hand-build a member with FNAME, body "hi" stored.
        let mut g = Vec::new();
        g.extend_from_slice(&MAGIC);
        g.push(CM_DEFLATE);
        g.push(FNAME);
        g.extend_from_slice(&[0; 4]); // mtime
        g.push(0);
        g.push(OS_UNKNOWN);
        g.extend_from_slice(b"file.txt\0");
        crate::deflate::deflate(b"hi", 1, &mut g);
        g.extend_from_slice(&Crc32::oneshot(b"hi").to_le_bytes());
        g.extend_from_slice(&2u32.to_le_bytes());
        assert_eq!(gzip_decompress(&g, 16).unwrap(), b"hi");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut g = gzip_compress(b"x", 1);
        g[0] = 0x1e;
        assert!(matches!(
            gzip_decompress(&g, 16),
            Err(CodecError::BadContainer(_))
        ));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let g = gzip_compress(b"", 6);
        assert_eq!(gzip_decompress(&g, 16).unwrap(), b"");
    }
}
