//! Bit-level I/O in DEFLATE order (RFC 1951 §3.1.1).
//!
//! Bits are packed into bytes starting from the least-significant bit.
//! Huffman codes are transmitted most-significant-code-bit first, which the
//! encoder handles by bit-reversing codes before calling
//! [`BitWriter::write_bits`].

use crate::error::{CodecError, Result};

/// Accumulates bits LSB-first and flushes whole bytes into a `Vec<u8>`.
pub struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    /// Pending bits, low bits are the oldest.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `spill`).
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    /// Starts writing at the current end of `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the `n` low bits of `value` (n ≤ 32).
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || u64::from(value) < (1u64 << n));
        self.acc |= u64::from(value) << self.nbits;
        self.nbits += n;
        self.spill();
    }

    #[inline]
    fn spill(&mut self) {
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Pads with zero bits to the next byte boundary (used before stored
    /// blocks and at end of stream).
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Flushes any partial byte and returns the underlying buffer length.
    pub fn finish(mut self) -> usize {
        self.align_byte();
        self.out.len()
    }

    /// Number of bits written so far modulo 8 (for cost accounting in tests).
    pub fn pending_bits(&self) -> u32 {
        self.nbits
    }
}

/// Reads bits LSB-first from a byte slice.
///
/// The reader deliberately allows peeking past the end of input (padding
/// with zeros) because DEFLATE decoders routinely over-peek during table
/// lookups; consuming past the end is an error.
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load into the accumulator.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Ensures at least `n` bits are in the accumulator (zero-padding past
    /// the end of input).
    #[inline]
    fn fill(&mut self, n: u32) {
        while self.nbits < n && self.pos < self.data.len() {
            self.acc |= u64::from(self.data[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Returns the next `n` bits without consuming them, zero-padded if the
    /// stream is shorter.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        self.fill(n);
        (self.acc & ((1u64 << n) - 1)) as u32
    }

    /// Consumes `n` bits previously peeked. Errors if fewer than `n` bits of
    /// real input remain.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        self.fill(n);
        if self.nbits < n {
            return Err(CodecError::UnexpectedEof);
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Reads and consumes `n` bits (n ≤ 32).
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32> {
        let v = self.peek_bits(n);
        self.consume(n)?;
        Ok(v)
    }

    /// Discards bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Reads `len` whole bytes after an `align_byte` (stored blocks).
    pub fn read_aligned_bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        debug_assert_eq!(self.nbits % 8, 0, "must be byte-aligned");
        // Return buffered bytes to the stream: they were loaded whole.
        let buffered = (self.nbits / 8) as usize;
        let start = self.pos - buffered;
        if self.data.len() - start < len {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.data[start..start + len];
        self.pos = start + len;
        self.acc = 0;
        self.nbits = 0;
        Ok(slice)
    }

    /// True if every real input bit has been consumed (ignores zero padding).
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.data.len() && self.nbits == 0
    }

    /// Number of whole input bytes not yet consumed (buffered bits count).
    pub fn remaining_bytes(&self) -> usize {
        self.data.len() - self.pos + (self.nbits / 8) as usize
    }
}

/// Reverses the low `n` bits of `code` — converts an MSB-first Huffman code
/// into the LSB-first order `BitWriter` expects.
#[inline]
pub fn reverse_bits(code: u16, n: u8) -> u16 {
    code.reverse_bits() >> (16 - u16::from(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut buf = Vec::new();
        {
            let mut w = BitWriter::new(&mut buf);
            w.write_bits(0b1, 1);
            w.write_bits(0b1010, 4);
            w.write_bits(0x3FFF, 14);
            w.write_bits(0xDEADBEEF, 32);
            w.write_bits(0, 3);
            w.finish();
        }
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(3).unwrap(), 0);
    }

    #[test]
    fn lsb_first_bit_order() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        // Writing 1,0,1,1 as single bits must produce 0b...1101 = 0x0D.
        for bit in [1u32, 0, 1, 1] {
            w.write_bits(bit, 1);
        }
        w.finish();
        assert_eq!(buf, vec![0b0000_1101]);
    }

    #[test]
    fn align_and_stored_bytes() {
        let mut buf = Vec::new();
        {
            let mut w = BitWriter::new(&mut buf);
            w.write_bits(0b101, 3);
            w.align_byte();
            w.finish();
        }
        buf.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        r.align_byte();
        let bytes = r.read_aligned_bytes(3).unwrap();
        assert_eq!(bytes, &[0xAA, 0xBB, 0xCC]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn align_with_buffered_bytes_returns_them() {
        // Force the reader to buffer more than one byte, then align and read
        // stored data: the buffered bytes must be handed back in order.
        let data = [0b0000_0001u8, 0x11, 0x22, 0x33];
        let mut r = BitReader::new(&data);
        // peek 20 bits loads 3 bytes into the accumulator
        let _ = r.peek_bits(20);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        r.align_byte();
        assert_eq!(r.read_aligned_bytes(3).unwrap(), &[0x11, 0x22, 0x33]);
    }

    #[test]
    fn over_read_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn peek_past_end_is_zero_padded() {
        let mut r = BitReader::new(&[0x01]);
        assert_eq!(r.peek_bits(16), 0x0001);
        r.consume(8).unwrap();
        assert!(r.consume(1).is_err());
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b10000000, 8), 0b00000001);
        assert_eq!(reverse_bits(0x0001, 15), 0x4000);
    }
}
