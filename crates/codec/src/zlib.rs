//! zlib container (RFC 1950): 2-byte header, raw DEFLATE body, big-endian
//! Adler-32 trailer.

use crate::checksum::Adler32;
use crate::deflate::DeflateEncoder;
use crate::error::{CodecError, Result};
use crate::inflate::inflate;

/// Compresses `data` into a zlib stream appended to `out`, reusing the
/// caller's [`DeflateEncoder`] state — the allocation-free streaming form
/// of [`zlib_compress`].
pub fn zlib_compress_with(enc: &mut DeflateEncoder, data: &[u8], level: u8, out: &mut Vec<u8>) {
    // CMF: CM=8 (deflate), CINFO=7 (32 KiB window).
    let cmf: u8 = 0x78;
    // FLEVEL advertises the effort tier (decoder-irrelevant, but emitted
    // for fidelity with zlib).
    let flevel: u8 = match level {
        0..=1 => 0,
        2..=5 => 1,
        6 => 2,
        _ => 3,
    };
    let mut flg = flevel << 6;
    // FCHECK makes (CMF<<8 | FLG) a multiple of 31.
    let rem = ((u16::from(cmf) << 8) | u16::from(flg)) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(cmf);
    out.push(flg);
    enc.deflate(data, level, out);
    out.extend_from_slice(&Adler32::oneshot(data).to_be_bytes());
}

/// Compresses `data` into a zlib stream at the given deflate level (0–9).
pub fn zlib_compress(data: &[u8], level: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    zlib_compress_with(&mut DeflateEncoder::new(), data, level, &mut out);
    out
}

/// Decompresses a zlib stream, appending the decoded bytes to `out` —
/// no intermediate vector. `max_out` caps the decoded size; the header
/// and Adler-32 trailer are verified.
pub fn zlib_decompress_into(stream: &[u8], max_out: usize, out: &mut Vec<u8>) -> Result<()> {
    if stream.len() < 6 {
        return Err(CodecError::UnexpectedEof);
    }
    let cmf = stream[0];
    let flg = stream[1];
    if cmf & 0x0F != 8 {
        return Err(CodecError::BadContainer(
            "zlib: compression method is not deflate",
        ));
    }
    if (cmf >> 4) > 7 {
        return Err(CodecError::BadContainer("zlib: window size exceeds 32 KiB"));
    }
    if ((u16::from(cmf) << 8) | u16::from(flg)) % 31 != 0 {
        return Err(CodecError::BadContainer("zlib: FCHECK failed"));
    }
    if flg & 0x20 != 0 {
        return Err(CodecError::BadContainer(
            "zlib: preset dictionaries unsupported",
        ));
    }

    let body = &stream[2..stream.len() - 4];
    let before = out.len();
    inflate(body, out, max_out)?;

    let trailer = &stream[stream.len() - 4..];
    let expected = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let actual = Adler32::oneshot(&out[before..]);
    if expected != actual {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok(())
}

/// Decompresses a zlib stream, verifying header and Adler-32 trailer.
/// `max_out` caps the decoded size.
pub fn zlib_decompress(stream: &[u8], max_out: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    zlib_decompress_into(stream, max_out, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_levels() {
        let data = b"zlib container roundtrip test data, repeated a bit. ".repeat(40);
        for level in 0..=9 {
            let z = zlib_compress(&data, level);
            let out = zlib_decompress(&z, data.len()).unwrap();
            assert_eq!(out, data, "level {level}");
        }
    }

    #[test]
    fn header_check_bits_valid() {
        for level in 0..=9 {
            let z = zlib_compress(b"x", level);
            assert_eq!(
                ((u16::from(z[0]) << 8) | u16::from(z[1])) % 31,
                0,
                "level {level}"
            );
            assert_eq!(z[0], 0x78);
        }
    }

    #[test]
    fn decodes_python_zlib_stream() {
        // python3: zlib.compress(b'hello world', 6)
        let stream = [
            0x78, 0x9c, 0xcb, 0x48, 0xcd, 0xc9, 0xc9, 0x57, 0x28, 0xcf, 0x2f, 0xca, 0x49, 0x01,
            0x00, 0x1a, 0x0b, 0x04, 0x5d,
        ];
        assert_eq!(zlib_decompress(&stream, 64).unwrap(), b"hello world");
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut z = zlib_compress(b"payload payload payload", 6);
        let n = z.len();
        z[n - 1] ^= 0xFF;
        assert!(matches!(
            zlib_decompress(&z, 1024),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_method_rejected() {
        let mut z = zlib_compress(b"x", 6);
        z[0] = 0x79; // CM = 9

        // Fix FCHECK so we specifically hit the method test.
        let rem = ((u16::from(z[0]) << 8) | u16::from(z[1] & 0xE0)) % 31;
        z[1] = (z[1] & 0xE0) + if rem == 0 { 0 } else { (31 - rem) as u8 };
        assert!(matches!(
            zlib_decompress(&z, 16),
            Err(CodecError::BadContainer(_))
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let z = zlib_compress(b"some data worth compressing some data", 6);
        assert!(zlib_decompress(&z[..5], 64).is_err());
        assert!(zlib_decompress(&[], 64).is_err());
    }
}
