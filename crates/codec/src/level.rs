//! The AdOC compression-level ladder (paper §2, end):
//!
//! * level **0** — no compression;
//! * level **1** — LZF (very fast, ratio < 2);
//! * levels **2..=10** — gzip/DEFLATE levels 1..=9.
//!
//! Every level is a strictly-costlier, usually-tighter codec than the one
//! below it, which is the monotonicity the adaptation algorithm relies on.

use crate::deflate::DeflateEncoder;
use crate::error::{CodecError, Result};
use crate::{lzf, zlib};

/// Lowest level: no compression.
pub const ADOC_MIN_LEVEL: u8 = 0;
/// Highest level: DEFLATE level 9.
pub const ADOC_MAX_LEVEL: u8 = 10;

/// The codec behind an AdOC level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Bytes pass through untouched.
    Store,
    /// LZF.
    Lzf,
    /// zlib-wrapped DEFLATE at the contained level (1..=9). The container
    /// costs 6 bytes per buffer and buys an Adler-32 integrity check —
    /// exactly what the original AdOC got from linking zlib.
    Deflate(u8),
}

/// Maps an AdOC level (0..=10) to its codec.
pub fn algo_for_level(level: u8) -> Algo {
    match level {
        0 => Algo::Store,
        1 => Algo::Lzf,
        2..=10 => Algo::Deflate(level - 1),
        _ => panic!("AdOC level must be 0..=10, got {level}"),
    }
}

/// Reusable per-connection codec state: the DEFLATE dictionary and token
/// staging persist across buffers, so the steady-state compression of a
/// long transfer allocates nothing (the paper's C library got this for
/// free from zlib's `deflateReset`).
#[derive(Default)]
pub struct Codec {
    deflate: DeflateEncoder,
}

impl Codec {
    /// Creates codec state; heavy tables are built lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `input` at an AdOC level, appending to `out`, reusing
    /// this codec's encoder state.
    pub fn compress_at(&mut self, level: u8, input: &[u8], out: &mut Vec<u8>) {
        match algo_for_level(level) {
            Algo::Store => out.extend_from_slice(input),
            Algo::Lzf => lzf::compress(input, out),
            Algo::Deflate(l) => zlib::zlib_compress_with(&mut self.deflate, input, l, out),
        }
    }
}

/// Compresses `input` at an AdOC level, appending to `out`.
///
/// One-shot convenience over [`Codec::compress_at`]: allocates fresh
/// encoder state per call. Streaming callers should hold a [`Codec`].
pub fn compress_at(level: u8, input: &[u8], out: &mut Vec<u8>) {
    Codec::new().compress_at(level, input, out);
}

/// Decompresses a payload produced by [`compress_at`] at the same level.
/// `raw_len` is the exact expected decoded size (AdOC frames carry it).
/// Decoded bytes are appended to `out` directly — no intermediate vector.
pub fn decompress_at(level: u8, input: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()> {
    let before = out.len();
    match algo_for_level(level) {
        Algo::Store => {
            if input.len() != raw_len {
                return Err(CodecError::Corrupt("stored payload length mismatch"));
            }
            out.extend_from_slice(input);
        }
        Algo::Lzf => lzf::decompress(input, out, raw_len)?,
        Algo::Deflate(_) => zlib::zlib_decompress_into(input, raw_len, out)?,
    }
    if out.len() - before != raw_len {
        return Err(CodecError::Corrupt(
            "decoded size differs from frame raw_len",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut v = b"adaptive online compression level ladder ".repeat(300);
        v.extend((0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8));
        v
    }

    #[test]
    fn every_level_roundtrips() {
        let data = sample();
        for level in ADOC_MIN_LEVEL..=ADOC_MAX_LEVEL {
            let mut comp = Vec::new();
            compress_at(level, &data, &mut comp);
            let mut out = Vec::new();
            decompress_at(level, &comp, data.len(), &mut out).unwrap();
            assert_eq!(out, data, "level {level}");
        }
    }

    #[test]
    fn level_zero_is_identity() {
        let data = sample();
        let mut comp = Vec::new();
        compress_at(0, &data, &mut comp);
        assert_eq!(comp, data);
    }

    #[test]
    fn ladder_is_monotone_in_ratio_on_text() {
        // The paper's premise: higher level ⇒ same or better ratio on
        // compressible data (allowing tiny noise between adjacent gzip
        // levels, the trend must hold across the ladder).
        let data = b"In this article, we present the AdOC library. It is a user-level set of functions that enables data transmission with compression. ".repeat(200);
        let size = |lvl: u8| {
            let mut c = Vec::new();
            compress_at(lvl, &data, &mut c);
            c.len()
        };
        let lzf = size(1);
        let gz1 = size(2);
        let gz6 = size(7);
        let gz9 = size(10);
        assert!(lzf < data.len(), "lzf must compress text");
        assert!(gz1 < lzf, "gzip-1 must beat lzf on ratio");
        assert!(gz6 <= gz1);
        assert!(gz9 <= gz6 + gz6 / 100);
    }

    #[test]
    fn wrong_level_decode_fails_or_differs() {
        let data = sample();
        let mut comp = Vec::new();
        compress_at(5, &data, &mut comp);
        let mut out = Vec::new();
        // Decoding deflate bytes as LZF must error or produce different data.
        if let Ok(()) = decompress_at(1, &comp, data.len(), &mut out) {
            assert_ne!(out, data);
        }
    }

    #[test]
    fn raw_len_mismatch_detected() {
        let data = sample();
        let mut comp = Vec::new();
        compress_at(6, &data, &mut comp);
        let mut out = Vec::new();
        assert!(decompress_at(6, &comp, data.len() - 1, &mut out).is_err());
    }

    #[test]
    #[should_panic(expected = "AdOC level")]
    fn out_of_range_level_panics() {
        compress_at(11, b"x", &mut Vec::new());
    }

    #[test]
    fn reused_codec_is_byte_identical_to_one_shot() {
        let mut codec = Codec::new();
        let data = sample();
        for round in 0..3 {
            for level in ADOC_MIN_LEVEL..=ADOC_MAX_LEVEL {
                let mut reused = Vec::new();
                codec.compress_at(level, &data, &mut reused);
                let mut fresh = Vec::new();
                compress_at(level, &data, &mut fresh);
                assert_eq!(reused, fresh, "round {round} level {level}");
                let mut out = Vec::new();
                decompress_at(level, &reused, data.len(), &mut out).unwrap();
                assert_eq!(out, data);
            }
        }
    }
}
