//! Error type shared by every codec in this crate.

use std::fmt;

/// Errors produced while decoding (and occasionally encoding) streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a structure.
    UnexpectedEof,
    /// A DEFLATE block header or Huffman structure is malformed.
    Corrupt(&'static str),
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// The offending back-reference distance.
        dist: usize,
        /// Output bytes produced so far.
        have: usize,
    },
    /// Decoded output exceeded the caller-supplied limit.
    OutputLimitExceeded {
        /// The caller-supplied output cap in bytes.
        limit: usize,
    },
    /// A container checksum did not match the decoded payload.
    ChecksumMismatch {
        /// Checksum stored in the stream.
        expected: u32,
        /// Checksum of the decoded bytes.
        actual: u32,
    },
    /// Container magic/flags are not what the format requires.
    BadContainer(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed input"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::BadDistance { dist, have } => {
                write!(
                    f,
                    "back-reference distance {dist} exceeds produced output {have}"
                )
            }
            CodecError::OutputLimitExceeded { limit } => {
                write!(f, "decoded output exceeds limit of {limit} bytes")
            }
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            CodecError::BadContainer(what) => write!(f, "bad container: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodecError>;
