//! # adoc-codec — the compression substrate of the AdOC reproduction
//!
//! Everything AdOC compresses with, implemented from scratch:
//!
//! * [`lzf`] — the very fast/low-ratio codec used as compression level 1
//!   (liblzf-compatible format);
//! * [`deflate`] / [`inflate`] — a full RFC 1951 DEFLATE implementation
//!   with zlib's level-1..9 effort ladder;
//! * [`zlib`] / [`gzip`] — RFC 1950/1952 containers (what the paper's
//!   Table 1 measures as "gzip N");
//! * [`checksum`] — Adler-32 and CRC-32;
//! * [`level`] — the AdOC level ladder: 0 = none, 1 = LZF,
//!   2..=10 = DEFLATE 1..=9.
//!
//! The crate is `no_std`-adjacent in spirit (no I/O, no threads): it turns
//! byte slices into byte vectors and back, deterministically.
//!
//! ## Quick example
//!
//! ```
//! let data = b"example example example example".repeat(10);
//! let mut compressed = Vec::new();
//! adoc_codec::level::compress_at(6, &data, &mut compressed); // gzip level 5
//! assert!(compressed.len() < data.len());
//!
//! let mut restored = Vec::new();
//! adoc_codec::level::decompress_at(6, &compressed, data.len(), &mut restored).unwrap();
//! assert_eq!(restored, data);
//! ```

#![warn(missing_docs)]
pub mod bitio;
pub mod checksum;
pub mod deflate;
pub mod error;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod level;
pub mod lz77;
pub mod lzf;
pub mod tables;
pub mod zlib;

pub use deflate::DeflateEncoder;
pub use error::{CodecError, Result};
pub use level::{compress_at, decompress_at, Algo, Codec, ADOC_MAX_LEVEL, ADOC_MIN_LEVEL};
pub use lz77::Lz77Encoder;
