//! Canonical Huffman coding: optimal length-limited code construction
//! (package-merge), canonical code assignment (RFC 1951 §3.2.2), and a
//! table-driven decoder.

use crate::bitio::{reverse_bits, BitReader};
use crate::error::{CodecError, Result};

/// Computes optimal code lengths for `freqs` limited to `max_len` bits using
/// the package-merge algorithm. Symbols with zero frequency get length 0.
///
/// Returns a vector of code lengths, one per symbol. The resulting lengths
/// always satisfy the Kraft equality when two or more symbols are used, and
/// assign length 1 to a lone symbol.
pub fn limited_code_lengths(freqs: &[u32], max_len: u8) -> Vec<u8> {
    let used: Vec<(u32, usize)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(sym, &f)| (f, sym))
        .collect();

    let mut lengths = vec![0u8; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0].1] = 1;
            return lengths;
        }
        n => assert!(
            n <= 1usize << max_len,
            "cannot code {n} symbols in {max_len} bits"
        ),
    }

    // Package-merge. A "package" is a weight plus the multiset of leaves it
    // contains; we track leaf membership as per-symbol counts local to the
    // used-symbol indexing (0..n).
    let n = used.len();
    let mut sorted = used.clone();
    sorted.sort_unstable();

    // Each package: (weight, counts over used-leaf index)
    type Pkg = (u64, Vec<u16>);
    let leaf_pkgs: Vec<Pkg> = sorted
        .iter()
        .enumerate()
        .map(|(i, &(f, _))| {
            let mut counts = vec![0u16; n];
            counts[i] = 1;
            (u64::from(f), counts)
        })
        .collect();

    let mut prev: Vec<Pkg> = leaf_pkgs.clone();
    for _ in 1..max_len {
        // Pair up adjacent packages from the previous list…
        let mut merged: Vec<Pkg> = prev
            .chunks_exact(2)
            .map(|pair| {
                let mut counts = pair[0].1.clone();
                for (c, &d) in counts.iter_mut().zip(&pair[1].1) {
                    *c += d;
                }
                (pair[0].0 + pair[1].0, counts)
            })
            .collect();
        // …then merge with the fresh leaves, keeping the list sorted.
        merged.extend(leaf_pkgs.iter().cloned());
        merged.sort_by_key(|p| p.0);
        prev = merged;
    }

    // Take the first 2n-2 packages; each occurrence of a leaf adds one bit
    // to that symbol's code length.
    let mut depth = vec![0u16; n];
    for pkg in prev.iter().take(2 * n - 2) {
        for (d, &c) in depth.iter_mut().zip(&pkg.1) {
            *d += c;
        }
    }
    for (i, &(_, sym)) in sorted.iter().enumerate() {
        debug_assert!(depth[i] >= 1 && depth[i] <= u16::from(max_len));
        lengths[sym] = depth[i] as u8;
    }
    lengths
}

/// Assigns canonical codes to `lengths` per RFC 1951: shorter codes first,
/// ties broken by symbol order. Returns MSB-first code values.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u16; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u16; max_len + 2];
    let mut code = 0u16;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// Verifies the Kraft sum of a length assignment.
///
/// Returns `Ordering::Equal` for a complete code, `Less` for an incomplete
/// (under-subscribed) code and `Greater` for an over-subscribed (invalid)
/// one.
pub fn kraft(lengths: &[u8]) -> std::cmp::Ordering {
    let mut sum: u64 = 0;
    const ONE: u64 = 1 << 32; // fixed-point 1.0
    for &l in lengths {
        if l > 0 {
            sum += ONE >> l;
        }
    }
    sum.cmp(&ONE)
}

/// Encoder-side table: per symbol, the LSB-first (pre-reversed) code and its
/// length, ready for `BitWriter::write_bits`.
#[derive(Debug, Clone)]
pub struct HuffEncoder {
    codes: Vec<u16>,
    lengths: Vec<u8>,
}

impl HuffEncoder {
    /// Builds an encoder from canonical code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let canonical = canonical_codes(lengths);
        let codes = canonical
            .iter()
            .zip(lengths)
            .map(|(&c, &l)| if l == 0 { 0 } else { reverse_bits(c, l) })
            .collect();
        HuffEncoder {
            codes,
            lengths: lengths.to_vec(),
        }
    }

    /// Emits `sym` through the writer.
    #[inline]
    pub fn write(&self, w: &mut crate::bitio::BitWriter<'_>, sym: usize) {
        let len = self.lengths[sym];
        debug_assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(u32::from(self.codes[sym]), u32::from(len));
    }

    /// Code length of `sym` in bits (0 = unused symbol).
    #[inline]
    pub fn len(&self, sym: usize) -> u8 {
        self.lengths[sym]
    }
}

/// Decoder built as a single flat lookup table of `2^max_len` entries: the
/// next `max_len` bits index straight to `(symbol, code_len)`.
///
/// DEFLATE caps code lengths at 15 bits, so the table is at most 32 Ki
/// entries; it is rebuilt per dynamic block, which is amortized across the
/// tens of kilobytes each block spans.
#[derive(Debug, Clone)]
pub struct HuffDecoder {
    /// Entry layout: `(sym << 4) | len`; len 0 marks an invalid code.
    table: Vec<u32>,
    max_len: u8,
}

impl HuffDecoder {
    /// Builds a decoder from canonical code lengths.
    ///
    /// `allow_incomplete` accepts under-subscribed codes (needed for the
    /// one-distance-code streams zlib emits); over-subscribed codes are
    /// always rejected.
    pub fn from_lengths(lengths: &[u8], allow_incomplete: bool) -> Result<Self> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(CodecError::Corrupt("huffman code with no symbols"));
        }
        match kraft(lengths) {
            std::cmp::Ordering::Greater => {
                return Err(CodecError::Corrupt("over-subscribed huffman code"))
            }
            std::cmp::Ordering::Less => {
                let used = lengths.iter().filter(|&&l| l > 0).count();
                // RFC-tolerated special case: a single code of length 1.
                if !(allow_incomplete || (used == 1 && max_len == 1)) {
                    return Err(CodecError::Corrupt("incomplete huffman code"));
                }
            }
            std::cmp::Ordering::Equal => {}
        }

        let codes = canonical_codes(lengths);
        let mut table = vec![0u32; 1usize << max_len];
        for (sym, (&code, &len)) in codes.iter().zip(lengths).enumerate() {
            if len == 0 {
                continue;
            }
            // The code occupies every table slot whose low `len` bits equal
            // the bit-reversed code.
            let rev = reverse_bits(code, len) as usize;
            let step = 1usize << len;
            let entry = ((sym as u32) << 4) | u32::from(len);
            let mut idx = rev;
            while idx < table.len() {
                table[idx] = entry;
                idx += step;
            }
        }
        Ok(HuffDecoder { table, max_len })
    }

    /// Decodes one symbol from the reader.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize> {
        let bits = r.peek_bits(u32::from(self.max_len));
        let entry = self.table[bits as usize];
        let len = entry & 0xF;
        if len == 0 {
            return Err(CodecError::Corrupt("invalid huffman code in stream"));
        }
        r.consume(len)?;
        Ok((entry >> 4) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    #[test]
    fn single_symbol_gets_length_one() {
        let lengths = limited_code_lengths(&[0, 7, 0], 15);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn two_symbols() {
        let lengths = limited_code_lengths(&[3, 9], 15);
        assert_eq!(lengths, vec![1, 1]);
    }

    #[test]
    fn kraft_equality_holds() {
        let freqs = [5u32, 9, 12, 13, 16, 45, 0, 1, 1, 2];
        let lengths = limited_code_lengths(&freqs, 15);
        assert_eq!(kraft(&lengths), std::cmp::Ordering::Equal);
    }

    #[test]
    fn respects_length_limit() {
        // Fibonacci-ish frequencies force deep unbounded-Huffman trees.
        let freqs: Vec<u32> = {
            let mut v = vec![1u32, 1];
            for i in 2..20 {
                let next = v[i - 1] + v[i - 2];
                v.push(next);
            }
            v
        };
        for limit in [5u8, 7, 15] {
            let lengths = limited_code_lengths(&freqs, limit);
            assert!(lengths.iter().all(|&l| l <= limit), "limit {limit}");
            assert_eq!(kraft(&lengths), std::cmp::Ordering::Equal, "limit {limit}");
        }
    }

    #[test]
    fn limited_lengths_are_optimal_for_known_case() {
        // Classic example: freqs {A:1,B:1,C:2,D:4} → lengths 3,3,2,1.
        let lengths = limited_code_lengths(&[1, 1, 2, 4], 15);
        assert_eq!(lengths, vec![3, 3, 2, 1]);
    }

    #[test]
    fn canonical_codes_rfc_example() {
        // RFC 1951 §3.2.2 worked example: lengths (3,3,3,3,3,2,4,4)
        // → codes 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = [10u32, 1, 1, 5, 3, 0, 8, 2, 2, 40];
        let lengths = limited_code_lengths(&freqs, 15);
        let enc = HuffEncoder::from_lengths(&lengths);
        let dec = HuffDecoder::from_lengths(&lengths, false).unwrap();

        let symbols: Vec<usize> = (0..freqs.len())
            .flat_map(|s| std::iter::repeat_n(s, freqs[s] as usize))
            .collect();
        let mut buf = Vec::new();
        {
            let mut w = BitWriter::new(&mut buf);
            for &s in &symbols {
                enc.write(&mut w, s);
            }
            w.finish();
        }
        let mut r = BitReader::new(&buf);
        for &expect in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), expect);
        }
    }

    #[test]
    fn oversubscribed_rejected() {
        // Three codes of length 1 is over-subscribed.
        assert!(HuffDecoder::from_lengths(&[1, 1, 1], false).is_err());
        assert!(HuffDecoder::from_lengths(&[1, 1, 1], true).is_err());
    }

    #[test]
    fn incomplete_rejected_unless_allowed() {
        // One code of length 2 is incomplete (not the 1-bit special case).
        assert!(HuffDecoder::from_lengths(&[2, 0], false).is_err());
        assert!(HuffDecoder::from_lengths(&[2, 0], true).is_ok());
        // A single 1-bit code is always accepted (RFC special case).
        assert!(HuffDecoder::from_lengths(&[1, 0], false).is_ok());
    }

    #[test]
    fn decoding_garbage_under_incomplete_code_errors() {
        let dec = HuffDecoder::from_lengths(&[2, 0], true).unwrap();
        // Bits "11" do not map to any code (only "00" is assigned).
        let data = [0b0000_0011u8];
        let mut r = BitReader::new(&data);
        assert!(dec.decode(&mut r).is_err());
    }
}
