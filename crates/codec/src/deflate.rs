//! DEFLATE encoder (RFC 1951): turns LZ77 tokens into stored, fixed-Huffman
//! or dynamic-Huffman blocks, choosing whichever is smallest by exact bit
//! cost.

use crate::bitio::BitWriter;
use crate::huffman::{limited_code_lengths, HuffEncoder};
use crate::lz77::{Lz77Encoder, MatchParams, Token};
use crate::tables::*;

/// Maximum tokens per block: bounds the frequency-table skew on big inputs
/// and the memory held between header and body emission.
const TOKENS_PER_BLOCK: usize = 64 * 1024;

/// Maximum payload of one stored block (16-bit LEN field).
const STORED_MAX: usize = 65_535;

/// Reusable DEFLATE compressor state: the LZ77 dictionary and the token
/// staging buffer persist across calls, so compressing a stream of
/// buffers (the AdOC hot path) allocates nothing after warm-up.
#[derive(Default)]
pub struct DeflateEncoder {
    lz: Lz77Encoder,
    tokens: Vec<Token>,
}

impl DeflateEncoder {
    /// Creates an encoder; heavy state is built lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `data` as a raw DEFLATE stream appended to `out`,
    /// reusing this encoder's dictionary and token storage.
    ///
    /// `level` 0 emits stored (uncompressed) blocks; 1–9 mirror zlib's
    /// effort/ratio trade-off via [`MatchParams::for_level`].
    pub fn deflate(&mut self, data: &[u8], level: u8, out: &mut Vec<u8>) {
        if level == 0 {
            deflate_stored(data, out);
            return;
        }
        let params = MatchParams::for_level(level);

        let mut w = BitWriter::new(out);
        let tokens = &mut self.tokens;
        tokens.clear();
        let mut block_start = 0usize; // raw offset where the pending block began
        let mut raw_pos = 0usize; // raw bytes covered by tokens so far

        // Emit blocks as the tokenizer streams tokens; the final block is
        // flagged after tokenization completes.
        self.lz.tokenize(data, &params, |tok| {
            raw_pos += match tok.as_match() {
                Some((len, _)) => len,
                None => 1,
            };
            tokens.push(tok);
            if tokens.len() >= TOKENS_PER_BLOCK {
                emit_block(&mut w, tokens, &data[block_start..raw_pos], false);
                tokens.clear();
                block_start = raw_pos;
            }
        });
        debug_assert_eq!(raw_pos, data.len());
        emit_block(&mut w, tokens, &data[block_start..], true);
        w.finish();
    }
}

/// Compresses `data` as a raw DEFLATE stream appended to `out`.
///
/// One-shot convenience over [`DeflateEncoder::deflate`]: allocates fresh
/// encoder state per call. Streaming callers should hold an encoder.
pub fn deflate(data: &[u8], level: u8, out: &mut Vec<u8>) {
    DeflateEncoder::new().deflate(data, level, out);
}

/// Emits `data` as a sequence of stored blocks (deflate "level 0").
fn deflate_stored(data: &[u8], out: &mut Vec<u8>) {
    let mut w = BitWriter::new(out);
    let mut chunks = data.chunks(STORED_MAX).peekable();
    if chunks.peek().is_none() {
        // Empty input still needs one final (empty) block.
        write_stored_block(&mut w, &[], true);
    }
    while let Some(chunk) = chunks.next() {
        write_stored_block(&mut w, chunk, chunks.peek().is_none());
    }
    w.finish();
}

fn write_stored_block(w: &mut BitWriter<'_>, chunk: &[u8], last: bool) {
    w.write_bits(u32::from(last), 1);
    w.write_bits(0b00, 2);
    w.align_byte();
    // LEN / NLEN then raw bytes — append directly, the writer is aligned.
    let len = chunk.len() as u16;
    w.write_bits(u32::from(len), 16);
    w.write_bits(u32::from(!len), 16);
    for &b in chunk {
        w.write_bits(u32::from(b), 8);
    }
}

/// Frequency tables for one block.
struct BlockFreqs {
    litlen: [u32; NUM_LITLEN],
    dist: [u32; NUM_DIST],
}

impl BlockFreqs {
    fn count(tokens: &[Token]) -> Self {
        let mut f = BlockFreqs {
            litlen: [0; NUM_LITLEN],
            dist: [0; NUM_DIST],
        };
        for t in tokens {
            match t.as_match() {
                Some((len, dist)) => {
                    let (lc, _, _) = length_to_code(len);
                    f.litlen[257 + lc] += 1;
                    let (dc, _, _) = dist_to_code(dist);
                    f.dist[dc] += 1;
                }
                None => f.litlen[t.as_literal().unwrap() as usize] += 1,
            }
        }
        f.litlen[EOB] += 1;
        f
    }
}

/// Bit cost of the token body (symbols + extra bits) under the given code
/// lengths, including the end-of-block symbol.
fn body_cost(freqs: &BlockFreqs, lit_lengths: &[u8], dist_lengths: &[u8]) -> u64 {
    let mut bits = 0u64;
    for (sym, &f) in freqs.litlen.iter().enumerate() {
        if f == 0 {
            continue;
        }
        let mut per = u64::from(lit_lengths[sym]);
        if sym > EOB {
            per += u64::from(LENGTH_EXTRA[sym - 257]);
        }
        bits += u64::from(f) * per;
    }
    for (sym, &f) in freqs.dist.iter().enumerate() {
        if f == 0 {
            continue;
        }
        bits += u64::from(f) * (u64::from(dist_lengths[sym]) + u64::from(DIST_EXTRA[sym]));
    }
    bits
}

/// One op in the RLE encoding of the code-length sequence.
#[derive(Clone, Copy)]
enum ClenOp {
    /// Emit this literal code length (0..=15).
    Len(u8),
    /// Code 16: repeat previous length `n` times (3..=6).
    RepPrev(u8),
    /// Code 17: emit `n` zeros (3..=10).
    ZeroShort(u8),
    /// Code 18: emit `n` zeros (11..=138).
    ZeroLong(u8),
}

impl ClenOp {
    fn symbol(self) -> usize {
        match self {
            ClenOp::Len(l) => l as usize,
            ClenOp::RepPrev(_) => 16,
            ClenOp::ZeroShort(_) => 17,
            ClenOp::ZeroLong(_) => 18,
        }
    }

    fn extra(self) -> Option<(u32, u32)> {
        match self {
            ClenOp::Len(_) => None,
            ClenOp::RepPrev(n) => Some((u32::from(n) - 3, 2)),
            ClenOp::ZeroShort(n) => Some((u32::from(n) - 3, 3)),
            ClenOp::ZeroLong(n) => Some((u32::from(n) - 11, 7)),
        }
    }
}

/// RLE-encodes the concatenated code-length sequence (RFC 1951 §3.2.7).
fn rle_code_lengths(lengths: &[u8]) -> Vec<ClenOp> {
    let mut ops = Vec::new();
    let mut i = 0usize;
    while i < lengths.len() {
        let cur = lengths[i];
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == cur {
            run += 1;
        }
        if cur == 0 {
            let mut left = run;
            while left >= 11 {
                let n = left.min(138);
                ops.push(ClenOp::ZeroLong(n as u8));
                left -= n;
            }
            if left >= 3 {
                ops.push(ClenOp::ZeroShort(left as u8));
                left = 0;
            }
            for _ in 0..left {
                ops.push(ClenOp::Len(0));
            }
        } else {
            ops.push(ClenOp::Len(cur));
            let mut left = run - 1;
            while left >= 3 {
                let n = left.min(6);
                ops.push(ClenOp::RepPrev(n as u8));
                left -= n;
            }
            for _ in 0..left {
                ops.push(ClenOp::Len(cur));
            }
        }
        i += run;
    }
    ops
}

/// Everything needed to emit a dynamic header, plus its exact bit cost.
struct DynamicPlan {
    lit_lengths: Vec<u8>,
    dist_lengths: Vec<u8>,
    hlit: usize,
    hdist: usize,
    hclen: usize,
    clen_lengths: Vec<u8>,
    ops: Vec<ClenOp>,
    header_bits: u64,
}

fn plan_dynamic(freqs: &BlockFreqs) -> DynamicPlan {
    let mut lit_lengths = limited_code_lengths(&freqs.litlen, MAX_CODE_LEN);
    lit_lengths.resize(NUM_LITLEN, 0);

    let mut dist_lengths = if freqs.dist.iter().all(|&f| f == 0) {
        // No distances used: emit one dummy 1-bit code so the header stays
        // well-formed (zlib does the same).
        let mut l = vec![0u8; NUM_DIST];
        l[0] = 1;
        l
    } else {
        limited_code_lengths(&freqs.dist, MAX_CODE_LEN)
    };
    dist_lengths.resize(NUM_DIST, 0);

    let hlit = lit_lengths
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(257)
        .max(257);
    let hdist = dist_lengths
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(1)
        .max(1);

    let mut combined = Vec::with_capacity(hlit + hdist);
    combined.extend_from_slice(&lit_lengths[..hlit]);
    combined.extend_from_slice(&dist_lengths[..hdist]);
    let ops = rle_code_lengths(&combined);

    let mut clen_freqs = [0u32; NUM_CLEN];
    for op in &ops {
        clen_freqs[op.symbol()] += 1;
    }
    let mut clen_lengths = limited_code_lengths(&clen_freqs, MAX_CLEN_LEN);
    clen_lengths.resize(NUM_CLEN, 0);

    let hclen = CLEN_ORDER
        .iter()
        .rposition(|&sym| clen_lengths[sym] > 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);

    let mut header_bits = 5 + 5 + 4 + 3 * hclen as u64;
    for op in &ops {
        header_bits += u64::from(clen_lengths[op.symbol()]);
        if let Some((_, n)) = op.extra() {
            header_bits += u64::from(n);
        }
    }

    DynamicPlan {
        lit_lengths,
        dist_lengths,
        hlit,
        hdist,
        hclen,
        clen_lengths,
        ops,
        header_bits,
    }
}

fn write_tokens(
    w: &mut BitWriter<'_>,
    tokens: &[Token],
    lit_enc: &HuffEncoder,
    dist_enc: &HuffEncoder,
) {
    for t in tokens {
        match t.as_match() {
            None => lit_enc.write(w, t.as_literal().unwrap() as usize),
            Some((len, dist)) => {
                let (lc, lextra, lval) = length_to_code(len);
                lit_enc.write(w, 257 + lc);
                if lextra > 0 {
                    w.write_bits(u32::from(lval), u32::from(lextra));
                }
                let (dc, dextra, dval) = dist_to_code(dist);
                dist_enc.write(w, dc);
                if dextra > 0 {
                    w.write_bits(u32::from(dval), u32::from(dextra));
                }
            }
        }
    }
    lit_enc.write(w, EOB);
}

/// Emits one block, choosing stored / fixed / dynamic by exact cost.
/// `raw` is the uncompressed byte range the tokens cover.
fn emit_block(w: &mut BitWriter<'_>, tokens: &[Token], raw: &[u8], last: bool) {
    let freqs = BlockFreqs::count(tokens);

    let plan = plan_dynamic(&freqs);
    let dynamic_cost = plan.header_bits + body_cost(&freqs, &plan.lit_lengths, &plan.dist_lengths);

    let fixed_lit = fixed_litlen_lengths();
    let fixed_dist = fixed_dist_lengths();
    let fixed_cost = body_cost(&freqs, &fixed_lit, &fixed_dist);

    // Stored: per 65535-byte chunk, 3-bit header + ≤7 alignment + 32 bits of
    // LEN/NLEN + the bytes themselves.
    let stored_blocks = raw.len().div_ceil(STORED_MAX).max(1) as u64;
    let stored_cost = stored_blocks * (3 + 7 + 32) + 8 * raw.len() as u64;

    if stored_cost < dynamic_cost && stored_cost < fixed_cost {
        let mut chunks = raw.chunks(STORED_MAX).peekable();
        if chunks.peek().is_none() {
            write_stored_block(w, &[], last);
            return;
        }
        while let Some(chunk) = chunks.next() {
            let is_last_chunk = chunks.peek().is_none();
            write_stored_block(w, chunk, last && is_last_chunk);
        }
    } else if fixed_cost <= dynamic_cost {
        w.write_bits(u32::from(last), 1);
        w.write_bits(0b01, 2);
        let lit_enc = HuffEncoder::from_lengths(&fixed_lit);
        let dist_enc = HuffEncoder::from_lengths(&fixed_dist);
        write_tokens(w, tokens, &lit_enc, &dist_enc);
    } else {
        w.write_bits(u32::from(last), 1);
        w.write_bits(0b10, 2);
        w.write_bits((plan.hlit - 257) as u32, 5);
        w.write_bits((plan.hdist - 1) as u32, 5);
        w.write_bits((plan.hclen - 4) as u32, 4);
        for &sym in CLEN_ORDER.iter().take(plan.hclen) {
            w.write_bits(u32::from(plan.clen_lengths[sym]), 3);
        }
        let clen_enc = HuffEncoder::from_lengths(&plan.clen_lengths);
        for op in &plan.ops {
            clen_enc.write(w, op.symbol());
            if let Some((val, n)) = op.extra() {
                w.write_bits(val, n);
            }
        }
        let lit_enc = HuffEncoder::from_lengths(&plan.lit_lengths);
        let dist_enc = HuffEncoder::from_lengths(&plan.dist_lengths);
        write_tokens(w, tokens, &lit_enc, &dist_enc);
    }
}

/// Convenience: one-shot deflate returning a fresh vector.
pub fn deflate_to_vec(data: &[u8], level: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    deflate(data, level, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate_to_vec;

    fn roundtrip(data: &[u8], level: u8) -> Vec<u8> {
        let comp = deflate_to_vec(data, level);
        let dec = inflate_to_vec(&comp, data.len())
            .unwrap_or_else(|e| panic!("level {level}, len {}: inflate failed: {e}", data.len()));
        assert_eq!(dec, data, "level {level} roundtrip mismatch");
        comp
    }

    #[test]
    fn empty_input_all_levels() {
        for level in 0..=9 {
            roundtrip(b"", level);
        }
    }

    #[test]
    fn small_inputs_all_levels() {
        for level in 0..=9 {
            roundtrip(b"a", level);
            roundtrip(b"hello, world!", level);
            roundtrip(&[0u8; 300], level);
        }
    }

    #[test]
    fn text_compresses_and_levels_order_sensibly() {
        let data = include_str!("deflate.rs").as_bytes().repeat(4);
        let c1 = roundtrip(&data, 1).len();
        let c6 = roundtrip(&data, 6).len();
        let c9 = roundtrip(&data, 9).len();
        assert!(c1 < data.len() / 2, "level 1 got {} of {}", c1, data.len());
        assert!(c6 <= c1, "level 6 ({c6}) worse than level 1 ({c1})");
        assert!(
            c9 <= c6 + c6 / 50,
            "level 9 ({c9}) much worse than level 6 ({c6})"
        );
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        let mut state = 0xABCDEFu64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let comp = roundtrip(&data, 6);
        // Stored-block fallback bounds expansion to ~0.1%.
        assert!(
            comp.len() < data.len() + data.len() / 500 + 64,
            "expanded to {}",
            comp.len()
        );
    }

    #[test]
    fn highly_repetitive_data() {
        let data = vec![42u8; 1 << 20];
        let comp = roundtrip(&data, 6);
        assert!(comp.len() < 2048, "1 MiB of a single byte → {}", comp.len());
    }

    #[test]
    fn multi_block_inputs() {
        // Enough distinct tokens to force several blocks.
        let mut data = Vec::new();
        for i in 0..400_000u32 {
            data.push((i.wrapping_mul(2654435761) >> 24) as u8);
        }
        roundtrip(&data, 1);
        roundtrip(&data, 6);
    }

    #[test]
    fn stored_level_zero() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let comp = roundtrip(&data, 0);
        // 4 stored blocks → 5 bytes overhead each, plus final empty none.
        assert!(comp.len() >= data.len());
        assert!(comp.len() <= data.len() + 5 * 4 + 8);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect::<Vec<_>>().repeat(64);
        for level in [1u8, 4, 9] {
            roundtrip(&data, level);
        }
    }

    #[test]
    fn reused_encoder_is_byte_identical_to_one_shot() {
        let mut enc = DeflateEncoder::new();
        let inputs: Vec<Vec<u8>> = vec![
            include_str!("deflate.rs").as_bytes().repeat(2),
            vec![0u8; 70_000],
            (0..50_000u32).map(|i| (i * 31 % 253) as u8).collect(),
            Vec::new(),
        ];
        for (k, data) in inputs.iter().enumerate() {
            for level in [0u8, 1, 6, 9] {
                let mut reused = Vec::new();
                enc.deflate(data, level, &mut reused);
                assert_eq!(
                    reused,
                    deflate_to_vec(data, level),
                    "input {k} level {level}"
                );
                assert_eq!(inflate_to_vec(&reused, data.len()).unwrap(), *data);
            }
        }
    }

    #[test]
    fn structured_binary_like_payload() {
        // f64 little-endian values, the NetSolve matrix wire shape.
        let data: Vec<u8> = (0..20_000)
            .flat_map(|i| (f64::from(i) * 1.7382).to_le_bytes())
            .collect();
        for level in [1u8, 6, 9] {
            roundtrip(&data, level);
        }
    }
}
