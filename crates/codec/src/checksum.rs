//! Checksums used by the zlib and gzip containers: Adler-32 (RFC 1950) and
//! CRC-32 (IEEE 802.3, as used by RFC 1952).
//!
//! Both are incremental so streaming callers can feed data in chunks.

/// Largest number of bytes that can be summed into the Adler-32 `a`/`b`
/// accumulators before a modulo reduction is required (from zlib).
const ADLER_NMAX: usize = 5552;
const ADLER_MOD: u32 = 65_521;

/// Incremental Adler-32 checksum (RFC 1950 §2.2).
///
/// ```
/// use adoc_codec::checksum::Adler32;
/// let mut a = Adler32::new();
/// a.update(b"hello ");
/// a.update(b"world");
/// assert_eq!(a.finish(), Adler32::oneshot(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Creates a checksum in its initial state (value 1, per the RFC).
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        // Sum in NMAX-sized stretches so `b` cannot overflow a u32 between
        // modulo reductions.
        for chunk in data.chunks(ADLER_NMAX) {
            for &byte in chunk {
                self.a += u32::from(byte);
                self.b += self.a;
            }
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
        }
    }

    /// Returns the current checksum value.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }

    /// Convenience: checksum of a full buffer.
    pub fn oneshot(data: &[u8]) -> u32 {
        let mut c = Self::new();
        c.update(data);
        c.finish()
    }
}

/// CRC-32 lookup tables for slice-by-4 processing.
struct CrcTables {
    t: [[u32; 256]; 4],
}

fn crc_tables() -> &'static CrcTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<CrcTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 4];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i as usize] = c;
        }
        for i in 0..256usize {
            for k in 1..4 {
                t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xff) as usize];
            }
        }
        CrcTables { t }
    })
}

/// Incremental CRC-32 (polynomial 0xEDB88320, reflected), the checksum gzip
/// stores in its trailer.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a CRC in its initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the CRC using slice-by-4.
    pub fn update(&mut self, data: &[u8]) {
        let tabs = crc_tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(4);
        for four in &mut chunks {
            crc ^= u32::from_le_bytes([four[0], four[1], four[2], four[3]]);
            crc = tabs.t[3][(crc & 0xff) as usize]
                ^ tabs.t[2][((crc >> 8) & 0xff) as usize]
                ^ tabs.t[1][((crc >> 16) & 0xff) as usize]
                ^ tabs.t[0][(crc >> 24) as usize];
        }
        for &byte in chunks.remainder() {
            crc = tabs.t[0][((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Returns the final CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// Convenience: CRC of a full buffer.
    pub fn oneshot(data: &[u8]) -> u32 {
        let mut c = Self::new();
        c.update(data);
        c.finish()
    }
}

/// Constant-time equality for secret material (MAC tags, session
/// tickets). A byte-wise `==` short-circuits at the first mismatch, so
/// its running time leaks how long a forged prefix matched — the classic
/// MAC timing side channel. This fold touches every byte of both inputs
/// regardless of where they differ; only the *lengths* are allowed to
/// influence timing (lengths are public protocol constants here).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Reduce through a volatile-ish path: the comparison happens once, on
    // the accumulated difference, never per byte.
    std::hint::black_box(diff) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_agrees_with_plain_equality() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"same bytes", b"same bytes"));
        assert!(!ct_eq(b"same bytes", b"same bytez"));
        // First-byte and last-byte differences are both caught.
        assert!(!ct_eq(b"Xame bytes", b"same bytes"));
        assert!(!ct_eq(b"abc", b"abcd"), "length mismatch is unequal");
        assert!(!ct_eq(b"", b"x"));
        // Exhaustive single-byte check: every differing bit pattern.
        for x in 0..=255u8 {
            assert_eq!(ct_eq(&[x], &[0x5A]), x == 0x5A);
        }
    }

    #[test]
    fn adler32_known_vectors() {
        // Values cross-checked against zlib's adler32().
        assert_eq!(Adler32::oneshot(b""), 1);
        assert_eq!(Adler32::oneshot(b"a"), 0x0062_0062);
        assert_eq!(Adler32::oneshot(b"abc"), 0x024D_0127);
        assert_eq!(Adler32::oneshot(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(100_000).collect();
        let mut inc = Adler32::new();
        for chunk in data.chunks(977) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), Adler32::oneshot(&data));
    }

    #[test]
    fn adler32_no_overflow_on_long_0xff_runs() {
        let data = vec![0xFFu8; 1 << 20];
        // Must not panic in debug (overflow checks) and must match a slow
        // reference computation.
        let fast = Adler32::oneshot(&data);
        let (mut a, mut b) = (1u64, 0u64);
        for &x in &data {
            a = (a + u64::from(x)) % 65_521;
            b = (b + a) % 65_521;
        }
        assert_eq!(fast, ((b as u32) << 16) | a as u32);
    }

    #[test]
    fn crc32_known_vectors() {
        // Values cross-checked against zlib's crc32().
        assert_eq!(Crc32::oneshot(b""), 0);
        assert_eq!(Crc32::oneshot(b"a"), 0xE8B7_BE43);
        assert_eq!(Crc32::oneshot(b"abc"), 0x3524_41C2);
        assert_eq!(Crc32::oneshot(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            Crc32::oneshot(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
            .collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(313) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), Crc32::oneshot(&data));
    }

    #[test]
    fn crc32_unaligned_tails() {
        for n in 0..16 {
            let data: Vec<u8> = (0..n as u8).collect();
            let mut byte_at_a_time = Crc32::new();
            for b in &data {
                byte_at_a_time.update(std::slice::from_ref(b));
            }
            assert_eq!(byte_at_a_time.finish(), Crc32::oneshot(&data), "len {n}");
        }
    }
}
