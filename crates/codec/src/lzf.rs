//! LZF: the very fast, low-ratio compressor AdOC uses as its first
//! compression level (paper §5, "Fast Networks").
//!
//! The format is wire-compatible with Marc Lehmann's liblzf:
//!
//! * control byte `0..=31`: literal run of `ctrl + 1` bytes follows;
//! * control byte `>= 32`: back-reference; the top 3 bits hold
//!   `len - 2` (7 = escape to an extra length byte), the low 5 bits are the
//!   high bits of `offset = distance - 1`, and the next byte supplies the
//!   low 8 offset bits. Distances reach 8192, lengths reach 264.

use crate::error::{CodecError, Result};

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 2 + 7 + 255; // 264
const MAX_OFF: usize = 1 << 13; // distance - 1 < 8192
const MAX_LIT: usize = 32;

/// Hash table size; liblzf defaults to 2^16 entries in "fast" mode.
const HLOG: u32 = 16;
const HSIZE: usize = 1 << HLOG;

#[inline]
fn first3(data: &[u8], i: usize) -> u32 {
    (u32::from(data[i]) << 16) | (u32::from(data[i + 1]) << 8) | u32::from(data[i + 2])
}

#[inline]
fn hash(v: u32) -> usize {
    // liblzf's FRST/NEXT/IDX scheme boiled down: multiplicative hash of the
    // 3-byte group.
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HLOG)) as usize & (HSIZE - 1)
}

/// Compresses `input`, appending to `out`. Always succeeds; worst-case
/// expansion is 1 control byte per 32 literals (~3.1%).
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    out.reserve(input.len() + input.len() / 32 + 4);
    let n = input.len();
    if n < MIN_MATCH {
        emit_literals(input, out);
        return;
    }

    let mut table = vec![0u32; HSIZE]; // stores position + 1; 0 = empty
    let mut lit_start = 0usize;
    let mut i = 0usize;

    while i + MIN_MATCH <= n {
        let h = hash(first3(input, i));
        let candidate = table[h] as usize;
        table[h] = (i + 1) as u32;

        if candidate > 0 {
            let cand = candidate - 1;
            let dist = i - cand;
            if dist > 0
                && dist <= MAX_OFF
                && input[cand] == input[i]
                && input[cand + 1] == input[i + 1]
                && input[cand + 2] == input[i + 2]
            {
                // Extend the match.
                let mut len = MIN_MATCH;
                let limit = (n - i).min(MAX_MATCH);
                while len < limit && input[cand + len] == input[i + len] {
                    len += 1;
                }

                emit_literals(&input[lit_start..i], out);

                let off = dist - 1;
                let l = len - 2;
                if l < 7 {
                    out.push(((l as u8) << 5) | (off >> 8) as u8);
                } else {
                    out.push((7 << 5) | (off >> 8) as u8);
                    out.push((l - 7) as u8);
                }
                out.push((off & 0xff) as u8);

                // Index the positions we skip so later matches can land
                // inside this one.
                let end = i + len;
                i += 1;
                while i < end && i + MIN_MATCH <= n {
                    let h = hash(first3(input, i));
                    table[h] = (i + 1) as u32;
                    i += 1;
                }
                i = end;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }

    emit_literals(&input[lit_start..], out);
}

fn emit_literals(lits: &[u8], out: &mut Vec<u8>) {
    for run in lits.chunks(MAX_LIT) {
        out.push((run.len() - 1) as u8);
        out.extend_from_slice(run);
    }
}

/// Decompresses an LZF stream produced by [`compress`] (or liblzf),
/// appending to `out`. `max_out` bounds the decoded size to protect against
/// corrupt streams.
pub fn decompress(input: &[u8], out: &mut Vec<u8>, max_out: usize) -> Result<()> {
    let base = out.len();
    let mut i = 0usize;
    while i < input.len() {
        let ctrl = input[i] as usize;
        i += 1;
        if ctrl < 32 {
            let run = ctrl + 1;
            if i + run > input.len() {
                return Err(CodecError::UnexpectedEof);
            }
            if out.len() - base + run > max_out {
                return Err(CodecError::OutputLimitExceeded { limit: max_out });
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            let mut len = ctrl >> 5;
            let mut off = (ctrl & 0x1f) << 8;
            if len == 7 {
                if i >= input.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                len += input[i] as usize;
                i += 1;
            }
            len += 2;
            if i >= input.len() {
                return Err(CodecError::UnexpectedEof);
            }
            off |= input[i] as usize;
            i += 1;
            let dist = off + 1;
            let produced = out.len() - base;
            if dist > produced {
                return Err(CodecError::BadDistance {
                    dist,
                    have: produced,
                });
            }
            if produced + len > max_out {
                return Err(CodecError::OutputLimitExceeded { limit: max_out });
            }
            // Overlapping copy: must go byte-by-byte when dist < len.
            let start = out.len() - dist;
            for src in start..start + len {
                let b = out[src];
                out.push(b);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        compress(data, &mut comp);
        let mut dec = Vec::new();
        decompress(&comp, &mut dec, data.len()).unwrap();
        assert_eq!(dec, data, "roundtrip mismatch");
        comp
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(roundtrip(b"").is_empty());
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(100);
        let comp = roundtrip(&data);
        assert!(
            comp.len() < data.len() / 4,
            "{} vs {}",
            comp.len(),
            data.len()
        );
    }

    #[test]
    fn long_zero_run_uses_extended_lengths() {
        let data = vec![0u8; 10_000];
        let comp = roundtrip(&data);
        // 10000 bytes of zeros: first literals, then max-length matches
        // (264 each) → well under 200 bytes.
        assert!(comp.len() < 200, "got {}", comp.len());
    }

    #[test]
    fn worst_case_expansion_is_bounded() {
        // Pseudo-random bytes: no matches, pure literal runs.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        assert!(comp.len() <= data.len() + data.len() / 32 + 2);
        let mut dec = Vec::new();
        decompress(&comp, &mut dec, data.len()).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn overlapping_copy_rle_style() {
        // "aaaa..." forces dist=1 overlapping copies.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn matches_at_max_distance() {
        let mut data = vec![0u8; MAX_OFF + 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        // Plant an exact repeat at distance MAX_OFF.
        let pattern = b"XYZQWERTY123".to_vec();
        data[..pattern.len()].copy_from_slice(&pattern);
        data[MAX_OFF..MAX_OFF + pattern.len()].copy_from_slice(&pattern);
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = b"hello hello hello hello hello".repeat(10);
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        for cut in [1, comp.len() / 2, comp.len() - 1] {
            let mut out = Vec::new();
            assert!(
                decompress(&comp[..cut], &mut out, data.len()).is_err() || out.len() < data.len(),
                "cut {cut} silently produced full output"
            );
        }
    }

    #[test]
    fn bad_distance_rejected() {
        // Back-reference with distance 1 before any output.
        let stream = [0b0010_0000u8, 0x00]; // len=2+1? ctrl=0x20: len=(1)+2=3, off=0 → dist 1
        let mut out = Vec::new();
        let err = decompress(&stream, &mut out, 100).unwrap_err();
        assert!(matches!(err, CodecError::BadDistance { .. }));
    }

    #[test]
    fn output_limit_enforced() {
        let data = vec![7u8; 4096];
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        let mut out = Vec::new();
        let err = decompress(&comp, &mut out, 100).unwrap_err();
        assert!(matches!(err, CodecError::OutputLimitExceeded { .. }));
    }

    #[test]
    fn decompress_appends_after_existing_output() {
        let mut out = b"prefix-".to_vec();
        let data = b"payload payload payload".to_vec();
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        decompress(&comp, &mut out, data.len()).unwrap();
        assert_eq!(&out[..7], b"prefix-");
        assert_eq!(&out[7..], &data[..]);
    }
}
