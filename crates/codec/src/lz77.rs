//! LZ77 tokenization for DEFLATE: a hash-chain match finder with zlib's
//! per-level effort parameters and lazy matching.
//!
//! This is the component that makes "gzip level 1" cheap and "gzip level 9"
//! expensive — the cost/ratio ladder the AdOC adaptation climbs (paper
//! Table 1).

/// Shortest back-reference DEFLATE can encode.
pub const MIN_MATCH: usize = 3;
/// Longest back-reference DEFLATE can encode.
pub const MAX_MATCH: usize = 258;
/// Maximum back-reference distance allowed by DEFLATE.
pub const MAX_DIST: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const NIL: u32 = u32::MAX;

/// One output token: a literal byte or a (length, distance) back-reference.
///
/// Packed into a `u32`: bit 31 set = match, with length-3 in bits 16..24
/// and distance-1 in bits 0..16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token(u32);

impl Token {
    /// A literal byte token.
    #[inline]
    pub fn literal(byte: u8) -> Self {
        Token(u32::from(byte))
    }

    /// A back-reference token (`len` in 3..=258, `dist` in 1..=32768).
    ///
    /// Panics on out-of-range values in all build profiles: a masked
    /// distance would silently alias to a different (valid-looking)
    /// position and corrupt the stream.
    #[inline]
    pub fn reference(len: usize, dist: usize) -> Self {
        assert!(
            (MIN_MATCH..=MAX_MATCH).contains(&len),
            "match length {len} outside {MIN_MATCH}..={MAX_MATCH}"
        );
        assert!(
            (1..=MAX_DIST).contains(&dist),
            "match distance {dist} outside 1..={MAX_DIST}"
        );
        Token(0x8000_0000 | (((len - MIN_MATCH) as u32) << 16) | ((dist - 1) as u32))
    }

    /// `(length, distance)` if this token is a back-reference.
    #[inline]
    pub fn as_match(self) -> Option<(usize, usize)> {
        if self.0 & 0x8000_0000 != 0 {
            Some((
                (((self.0 >> 16) & 0xFF) as usize) + MIN_MATCH,
                ((self.0 & 0xFFFF) as usize) + 1,
            ))
        } else {
            None
        }
    }

    /// The literal byte, if this token is one.
    #[inline]
    pub fn as_literal(self) -> Option<u8> {
        if self.0 & 0x8000_0000 == 0 {
            Some(self.0 as u8)
        } else {
            None
        }
    }
}

/// Effort parameters, directly mirroring zlib's `configuration_table`.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// A current match at least this long halves further chain searches.
    pub good_length: usize,
    /// Do not bother with lazy evaluation if the previous match is at
    /// least this long (levels 4–9), or maximum insert length (1–3).
    pub max_lazy: usize,
    /// Stop searching once a match of this length is found.
    pub nice_length: usize,
    /// Maximum hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Whether to use lazy (one-byte-deferred) matching.
    pub lazy: bool,
}

impl MatchParams {
    /// zlib's tuning for compression levels 1..=9.
    pub fn for_level(level: u8) -> MatchParams {
        // (good, lazy, nice, chain) as in zlib deflate.c.
        match level {
            1 => Self::fast(4, 4, 8, 4),
            2 => Self::fast(4, 5, 16, 8),
            3 => Self::fast(4, 6, 32, 32),
            4 => Self::slow(4, 4, 16, 16),
            5 => Self::slow(8, 16, 32, 32),
            6 => Self::slow(8, 16, 128, 128),
            7 => Self::slow(8, 32, 128, 256),
            8 => Self::slow(32, 128, 258, 1024),
            9 => Self::slow(32, 258, 258, 4096),
            _ => panic!("deflate level must be 1..=9, got {level}"),
        }
    }

    fn fast(good: usize, lazy: usize, nice: usize, chain: usize) -> Self {
        MatchParams {
            good_length: good,
            max_lazy: lazy,
            nice_length: nice,
            max_chain: chain,
            lazy: false,
        }
    }

    fn slow(good: usize, lazy: usize, nice: usize, chain: usize) -> Self {
        MatchParams {
            good_length: good,
            max_lazy: lazy,
            nice_length: nice,
            max_chain: chain,
            lazy: true,
        }
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (u32::from(data[i]) << 16) | (u32::from(data[i + 1]) << 8) | u32::from(data[i + 2]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable hash-chain dictionary: the 32K-entry head table and the
/// per-position chain links persist across buffers, so tokenizing a
/// stream of 200 KB buffers costs no allocation and no table wipe after
/// the first call.
///
/// Staleness is handled by generation stamping instead of clearing:
/// positions are stored as `base + i`, and `base` jumps past every
/// previously stored value when a new buffer [`begin`](Self::begin)s.
/// A head or chain entry below the current `base` belongs to an earlier
/// buffer and reads as [`NIL`]. Only when `base` would overflow `u32`
/// (once per ~4 GB tokenized) is the head table actually wiped.
pub struct Lz77Encoder {
    head: Vec<u32>,
    prev: Vec<u32>,
    /// Stored value representing position 0 of the current buffer (≥ 1,
    /// so 0 is always "never written").
    base: u32,
    /// Length of the current (or last) buffer, advanced into `base` on
    /// the next `begin`.
    len: usize,
}

impl Default for Lz77Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Lz77Encoder {
    /// Creates an encoder with an empty dictionary. The head table is
    /// allocated once here; `prev` grows to the largest buffer seen.
    pub fn new() -> Self {
        Lz77Encoder {
            head: vec![0; HASH_SIZE],
            prev: Vec::new(),
            base: 1,
            len: 0,
        }
    }

    /// Starts a new buffer of `len` bytes: invalidates every stored
    /// position in O(1) (amortised) and sizes `prev`.
    fn begin(&mut self, len: usize) {
        if self.prev.len() < len {
            self.prev.resize(len, 0);
        }
        let next = u64::from(self.base) + self.len as u64;
        if next + len as u64 >= u64::from(u32::MAX) {
            self.head.fill(0);
            self.base = 1;
        } else {
            self.base = next as u32;
        }
        self.len = len;
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        let h = hash3(data, i);
        self.prev[i] = self.head[h];
        self.head[h] = self.base + i as u32;
    }

    /// Most recent prior position hashing like `i`, or [`NIL`].
    #[inline]
    fn candidates(&self, data: &[u8], i: usize) -> u32 {
        self.decode(self.head[hash3(data, i)])
    }

    /// Next older position on `c`'s chain, or [`NIL`].
    #[inline]
    fn chain_prev(&self, c: usize) -> u32 {
        self.decode(self.prev[c])
    }

    #[inline]
    fn decode(&self, stored: u32) -> u32 {
        if stored >= self.base {
            stored - self.base
        } else {
            NIL
        }
    }

    /// Tokenizes `data`, invoking `sink` for each token in order, reusing
    /// this encoder's dictionary storage. The concatenated expansion of
    /// the tokens equals `data` exactly.
    pub fn tokenize(&mut self, data: &[u8], params: &MatchParams, mut sink: impl FnMut(Token)) {
        let n = data.len();
        if n < MIN_MATCH + 1 {
            for &b in data {
                sink(Token::literal(b));
            }
            return;
        }

        self.begin(n);
        // Every position in [0, insert_end) may enter the dictionary,
        // exactly once, strictly before any later position is matched.
        let insert_end = n - MIN_MATCH + 1;

        if params.lazy {
            tokenize_lazy(data, params, self, insert_end, &mut sink);
        } else {
            tokenize_greedy(data, params, self, insert_end, &mut sink);
        }
    }
}

#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    // Compare 8 bytes at a time; `a < b` and both in-bounds for `max`.
    let mut n = 0;
    while n + 8 <= max {
        let x = u64::from_le_bytes(data[a + n..a + n + 8].try_into().unwrap());
        let y = u64::from_le_bytes(data[b + n..b + n + 8].try_into().unwrap());
        let xor = x ^ y;
        if xor != 0 {
            return n + (xor.trailing_zeros() / 8) as usize;
        }
        n += 8;
    }
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Finds the best match for position `i`, walking at most `depth` chain
/// links. Returns `(len, dist)` with `len >= MIN_MATCH`, or `None`.
fn best_match(
    data: &[u8],
    chains: &Lz77Encoder,
    i: usize,
    params: &MatchParams,
    prev_len: usize,
) -> Option<(usize, usize)> {
    let max = (data.len() - i).min(MAX_MATCH);
    if max < MIN_MATCH {
        return None;
    }
    let mut depth = if prev_len >= params.good_length {
        params.max_chain >> 2
    } else {
        params.max_chain
    };
    let nice = params.nice_length.min(max);

    let mut best_len = 0usize;
    let mut best_dist = 0usize;
    let mut cand = chains.candidates(data, i);
    while cand != NIL && depth > 0 {
        let c = cand as usize;
        debug_assert!(c < i);
        let dist = i - c;
        if dist > MAX_DIST {
            break; // chains are append-only; older entries are even farther
        }
        // Quick reject: check the byte that would extend the best match.
        if best_len == 0 || data[c + best_len] == data[i + best_len] {
            let len = match_len(data, c, i, max);
            if len > best_len {
                best_len = len;
                best_dist = dist;
                if len >= nice {
                    break;
                }
            }
        }
        cand = chains.chain_prev(c);
        depth -= 1;
    }

    // zlib's TOO_FAR heuristic: a 3-byte match far away costs more bits
    // than 3 literals.
    if best_len == MIN_MATCH && best_dist > 4096 {
        return None;
    }
    if best_len >= MIN_MATCH {
        Some((best_len, best_dist))
    } else {
        None
    }
}

/// Tokenizes `data` with the given effort parameters, invoking `sink` for
/// each token in order. The concatenated expansion of the tokens equals
/// `data` exactly.
///
/// One-shot convenience over [`Lz77Encoder::tokenize`]: allocates fresh
/// dictionary state per call. Streaming callers should hold an encoder.
pub fn tokenize(data: &[u8], params: &MatchParams, sink: impl FnMut(Token)) {
    Lz77Encoder::new().tokenize(data, params, sink);
}

/// Inserts all not-yet-indexed positions below `upto` into the chains.
#[inline]
fn index_upto(
    chains: &mut Lz77Encoder,
    data: &[u8],
    inserted: &mut usize,
    upto: usize,
    insert_end: usize,
) {
    let stop = upto.min(insert_end);
    while *inserted < stop {
        chains.insert(data, *inserted);
        *inserted += 1;
    }
}

fn tokenize_greedy(
    data: &[u8],
    params: &MatchParams,
    chains: &mut Lz77Encoder,
    insert_end: usize,
    sink: &mut impl FnMut(Token),
) {
    let n = data.len();
    let mut i = 0usize;
    let mut inserted = 0usize;
    while i < n {
        index_upto(chains, data, &mut inserted, i, insert_end);
        let found = if i < insert_end {
            best_match(data, chains, i, params, 0)
        } else {
            None
        };
        match found {
            Some((len, dist)) => {
                sink(Token::reference(len, dist));
                i += len;
            }
            None => {
                sink(Token::literal(data[i]));
                i += 1;
            }
        }
    }
}

fn tokenize_lazy(
    data: &[u8],
    params: &MatchParams,
    chains: &mut Lz77Encoder,
    insert_end: usize,
    sink: &mut impl FnMut(Token),
) {
    let n = data.len();
    let mut i = 0usize;
    let mut inserted = 0usize;
    // Pending match found at position i-1 awaiting lazy comparison.
    let mut pending: Option<(usize, usize)> = None;

    while i < n {
        index_upto(chains, data, &mut inserted, i, insert_end);
        let prev_len = pending.map_or(0, |(l, _)| l);
        let cur = if i < insert_end && prev_len < params.max_lazy {
            best_match(data, chains, i, params, prev_len)
        } else {
            None
        };

        match pending {
            Some((plen, pdist)) => {
                let cur_len = cur.map_or(0, |(l, _)| l);
                if cur_len > plen {
                    // The deferred match is beaten: emit the byte before it
                    // as a literal and defer the new match.
                    sink(Token::literal(data[i - 1]));
                    pending = cur;
                    i += 1;
                } else {
                    // Keep the previous match (it starts at i-1).
                    sink(Token::reference(plen, pdist));
                    i = i - 1 + plen;
                    pending = None;
                }
            }
            None => match cur {
                Some(m) => {
                    pending = Some(m);
                    i += 1;
                }
                None => {
                    sink(Token::literal(data[i]));
                    i += 1;
                }
            },
        }
    }
    if let Some((plen, pdist)) = pending {
        // Input ended while a match was deferred; it starts at the last
        // consumed position and fits entirely within the buffer.
        sink(Token::reference(plen, pdist));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference expansion of a token stream.
    fn expand(tokens: &[Token]) -> Vec<u8> {
        let mut out = Vec::new();
        for t in tokens {
            if let Some(b) = t.as_literal() {
                out.push(b);
            } else {
                let (len, dist) = t.as_match().unwrap();
                assert!(
                    dist <= out.len(),
                    "distance {dist} > produced {}",
                    out.len()
                );
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
        out
    }

    fn collect(data: &[u8], level: u8) -> Vec<Token> {
        let mut v = Vec::new();
        tokenize(data, &MatchParams::for_level(level), |t| v.push(t));
        v
    }

    #[test]
    fn token_packing_roundtrip() {
        let t = Token::reference(258, 32768);
        assert_eq!(t.as_match(), Some((258, 32768)));
        let t = Token::reference(3, 1);
        assert_eq!(t.as_match(), Some((3, 1)));
        let t = Token::literal(0xAB);
        assert_eq!(t.as_literal(), Some(0xAB));
        assert_eq!(t.as_match(), None);
    }

    #[test]
    fn all_levels_expand_exactly() {
        let mut data = b"the quick brown fox jumps over the lazy dog. ".repeat(50);
        data.extend_from_slice(&[0u8; 1000]);
        data.extend((0..2000u32).map(|i| (i * 37 % 251) as u8));
        for level in 1..=9 {
            let toks = collect(&data, level);
            assert_eq!(expand(&toks), data, "level {level}");
        }
    }

    #[test]
    fn repetitive_data_yields_matches() {
        let data = b"abcdefgh".repeat(200);
        for level in [1u8, 6, 9] {
            let toks = collect(&data, level);
            let matches = toks.iter().filter(|t| t.as_match().is_some()).count();
            assert!(matches > 0, "level {level} found no matches");
            // 1600 bytes of pure repetition should need far fewer tokens.
            assert!(toks.len() < 120, "level {level}: {} tokens", toks.len());
        }
    }

    #[test]
    fn higher_levels_do_not_find_fewer_bytes_in_matches() {
        // Lazy matching at level 9 should cover at least as many bytes via
        // matches as level 1 on text-like data.
        let data = b"It was the best of times, it was the worst of times, it was the age of wisdom, it was the age of foolishness".repeat(30);
        let covered = |lvl| {
            collect(&data, lvl)
                .iter()
                .filter_map(|t| t.as_match())
                .map(|(l, _)| l)
                .sum::<usize>()
        };
        assert!(covered(9) >= covered(1));
    }

    #[test]
    fn incompressible_data_is_all_literals_mostly() {
        let mut state = 0x9E3779B9u64;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let toks = collect(&data, 6);
        assert_eq!(expand(&toks), data);
        let match_bytes: usize = toks
            .iter()
            .filter_map(|t| t.as_match())
            .map(|(l, _)| l)
            .sum();
        assert!(
            match_bytes < data.len() / 10,
            "unexpected matches in noise: {match_bytes}"
        );
    }

    #[test]
    fn max_match_length_is_respected() {
        let data = vec![b'z'; 4096];
        for level in [1u8, 9] {
            for t in collect(&data, level) {
                if let Some((len, _)) = t.as_match() {
                    assert!(len <= MAX_MATCH);
                }
            }
        }
    }

    #[test]
    fn matches_never_exceed_max_dist() {
        // 100 KB with repeats spaced beyond 32 KB must not produce illegal
        // distances.
        let unit: Vec<u8> = (0..40_000u32).map(|i| (i % 256) as u8).collect();
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        data.extend_from_slice(&unit);
        for t in collect(&data, 6) {
            if let Some((_, dist)) = t.as_match() {
                assert!(dist <= MAX_DIST);
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        for len in 0..8usize {
            let data: Vec<u8> = (0..len as u8).collect();
            for level in [1u8, 5, 9] {
                assert_eq!(expand(&collect(&data, level)), data);
            }
        }
    }

    #[test]
    fn pending_match_at_end_is_emitted() {
        // Craft data where the lazy path holds a pending match when input
        // ends: "XYZ....XYZ" with the repeat at the very end.
        let mut data = b"XYZabcdefghijklmnop".to_vec();
        data.extend_from_slice(b"XYZ");
        let toks = collect(&data, 6);
        assert_eq!(expand(&toks), data);
    }

    #[test]
    #[should_panic(expected = "deflate level")]
    fn level_zero_params_panic() {
        let _ = MatchParams::for_level(0);
    }

    #[test]
    fn reference_accepts_the_32768_distance_boundary() {
        // The maximum legal distance must encode and decode exactly; the
        // old `& 0xFFFF` masking made 32769 alias to distance 1.
        let t = Token::reference(MIN_MATCH, MAX_DIST);
        assert_eq!(t.as_match(), Some((MIN_MATCH, MAX_DIST)));
    }

    #[test]
    #[should_panic(expected = "match distance 32769")]
    fn reference_rejects_distance_beyond_window() {
        let _ = Token::reference(MIN_MATCH, MAX_DIST + 1);
    }

    #[test]
    #[should_panic(expected = "match length 259")]
    fn reference_rejects_overlong_match() {
        let _ = Token::reference(MAX_MATCH + 1, 1);
    }

    #[test]
    fn reused_encoder_matches_fresh_encoder_output() {
        // Tokenizing a sequence of buffers through one encoder must give
        // exactly what fresh per-buffer encoders give: no match may cross
        // a buffer boundary via stale dictionary entries.
        let buffers: Vec<Vec<u8>> = vec![
            b"shared prefix shared prefix shared prefix".to_vec(),
            b"shared prefix shared prefix shared prefix".to_vec(), // same bytes again
            (0..5000u32).map(|i| (i % 7) as u8).collect(),
            b"tiny".to_vec(),
            vec![],
            b"shared prefix once more".to_vec(),
        ];
        let mut enc = Lz77Encoder::new();
        for (k, buf) in buffers.iter().enumerate() {
            for level in [1u8, 6, 9] {
                let params = MatchParams::for_level(level);
                let mut reused = Vec::new();
                enc.tokenize(buf, &params, |t| reused.push(t));
                let mut fresh = Vec::new();
                tokenize(buf, &params, |t| fresh.push(t));
                assert_eq!(reused, fresh, "buffer {k}, level {level}");
                assert_eq!(expand(&reused), *buf, "buffer {k}, level {level}");
            }
        }
    }

    #[test]
    fn encoder_generation_wrap_resets_cleanly() {
        // Force the base counter to the wrap threshold and check the wipe
        // path produces correct tokens afterwards.
        let mut enc = Lz77Encoder::new();
        enc.base = u32::MAX - 100;
        enc.len = 200;
        let data = b"wrap wrap wrap wrap wrap wrap wrap wrap".to_vec();
        let params = MatchParams::for_level(6);
        let mut toks = Vec::new();
        enc.tokenize(&data, &params, |t| toks.push(t));
        assert_eq!(expand(&toks), data);
        assert_eq!(enc.base, 1, "wrap must reset the generation base");
    }
}
