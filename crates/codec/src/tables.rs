//! Constant tables from RFC 1951 §3.2.5–§3.2.7, shared by the DEFLATE
//! encoder and decoder.

/// Length-code bases: code `257 + i` encodes lengths starting at
/// `LENGTH_BASE[i]` with `LENGTH_EXTRA[i]` extra bits.
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits carried by each length code.
pub const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Distance-code bases: code `i` encodes distances starting at
/// `DIST_BASE[i]` with `DIST_EXTRA[i]` extra bits.
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits carried by each distance code.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Transmission order of the code-length alphabet lengths (RFC 1951 §3.2.7).
pub const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// End-of-block symbol in the literal/length alphabet.
pub const EOB: usize = 256;

/// Number of literal/length symbols that can appear in a stream.
pub const NUM_LITLEN: usize = 286;
/// Number of distance symbols.
pub const NUM_DIST: usize = 30;
/// Number of code-length symbols.
pub const NUM_CLEN: usize = 19;

/// Maximum Huffman code length for literal/length and distance alphabets.
pub const MAX_CODE_LEN: u8 = 15;
/// Maximum code length for the code-length alphabet.
pub const MAX_CLEN_LEN: u8 = 7;

/// Code lengths of the fixed literal/length tree (RFC 1951 §3.2.6).
pub fn fixed_litlen_lengths() -> [u8; 288] {
    let mut l = [0u8; 288];
    for (i, item) in l.iter_mut().enumerate() {
        *item = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    l
}

/// Code lengths of the fixed distance tree: 32 five-bit codes. Codes 30 and
/// 31 never occur in valid data (RFC 1951 §3.2.6) but participate in the
/// code space, making the tree complete; the decoder rejects them if they
/// appear.
pub fn fixed_dist_lengths() -> [u8; 32] {
    [5u8; 32]
}

/// Maps a match length (3..=258) to `(code_index, extra_bits, extra_value)`
/// where the emitted symbol is `257 + code_index`.
#[inline]
pub fn length_to_code(len: usize) -> (usize, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    // Index table over len-3 (0..=255).
    let idx = LENGTH_TO_CODE_IDX[len - 3] as usize;
    let extra = LENGTH_EXTRA[idx];
    let val = (len - LENGTH_BASE[idx] as usize) as u16;
    (idx, extra, val)
}

/// Maps a distance (1..=32768) to `(code, extra_bits, extra_value)`.
#[inline]
pub fn dist_to_code(dist: usize) -> (usize, u8, u16) {
    debug_assert!((1..=32768).contains(&dist));
    let code = if dist <= 256 {
        DIST_TO_CODE_LO[dist - 1] as usize
    } else {
        DIST_TO_CODE_HI[(dist - 1) >> 7] as usize
    };
    let extra = DIST_EXTRA[code];
    let val = (dist - DIST_BASE[code] as usize) as u16;
    (code, extra, val)
}

/// len-3 → length code index, built at first use.
static LENGTH_TO_CODE_IDX: [u8; 256] = build_length_table();

const fn build_length_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut len = 3usize;
    while len <= 258 {
        // Find the greatest i with LENGTH_BASE[i] <= len; code 285 is the
        // dedicated code for 258.
        let mut i = 28usize;
        loop {
            if LENGTH_BASE[i] as usize <= len {
                break;
            }
            i -= 1;
        }
        if len == 258 {
            i = 28;
        } else if i == 28 {
            i = 27; // lengths 227..=257 use code 284, not the 258 code
        }
        t[len - 3] = i as u8;
        len += 1;
    }
    t
}

/// dist-1 (0..255) → distance code.
static DIST_TO_CODE_LO: [u8; 256] = build_dist_lo();
/// (dist-1)>>7 (2..255) → distance code for dist > 256.
static DIST_TO_CODE_HI: [u8; 256] = build_dist_hi();

const fn dist_code_of(dist: usize) -> u8 {
    let mut i = 29usize;
    loop {
        if DIST_BASE[i] as usize <= dist {
            return i as u8;
        }
        i -= 1;
    }
}

const fn build_dist_lo() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut d = 1usize;
    while d <= 256 {
        t[d - 1] = dist_code_of(d);
        d += 1;
    }
    t
}

const fn build_dist_hi() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut k = 2usize; // (dist-1)>>7 for dist=257.. starts at 2
    while k < 256 {
        let dist = (k << 7) + 1;
        t[k] = dist_code_of(dist);
        k += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_codes_cover_rfc_table() {
        // Spot-check the RFC 1951 length table.
        assert_eq!(length_to_code(3), (0, 0, 0)); // code 257
        assert_eq!(length_to_code(10), (7, 0, 0)); // code 264
        assert_eq!(length_to_code(11), (8, 1, 0)); // code 265
        assert_eq!(length_to_code(12), (8, 1, 1));
        assert_eq!(length_to_code(18), (11, 1, 1)); // code 268 covers 17,18
        assert_eq!(length_to_code(257), (27, 5, 30)); // code 284 covers 227..257
        assert_eq!(length_to_code(258), (28, 0, 0)); // code 285
    }

    #[test]
    fn every_length_reconstructs() {
        for len in 3..=258usize {
            let (idx, extra, val) = length_to_code(len);
            assert_eq!(LENGTH_BASE[idx] as usize + val as usize, len);
            assert!(val < (1 << extra) || (extra == 0 && val == 0), "len {len}");
        }
    }

    #[test]
    fn dist_codes_cover_rfc_table() {
        assert_eq!(dist_to_code(1), (0, 0, 0));
        assert_eq!(dist_to_code(4), (3, 0, 0));
        assert_eq!(dist_to_code(5), (4, 1, 0));
        assert_eq!(dist_to_code(8), (5, 1, 1));
        assert_eq!(dist_to_code(257), (16, 7, 0));
        assert_eq!(dist_to_code(24577), (29, 13, 0));
        assert_eq!(dist_to_code(32768), (29, 13, 8191));
    }

    #[test]
    fn every_distance_reconstructs() {
        for dist in 1..=32768usize {
            let (code, extra, val) = dist_to_code(dist);
            assert_eq!(DIST_BASE[code] as usize + val as usize, dist, "dist {dist}");
            assert!(u32::from(val) < (1u32 << extra) || (extra == 0 && val == 0));
        }
    }

    #[test]
    fn fixed_trees_are_complete() {
        use crate::huffman::kraft;
        assert_eq!(kraft(&fixed_litlen_lengths()), std::cmp::Ordering::Equal);
        assert_eq!(kraft(&fixed_dist_lengths()), std::cmp::Ordering::Equal);
    }
}
