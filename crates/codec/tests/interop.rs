//! Interoperability with the reference zlib implementation, via the host
//! Python interpreter. Our streams must decode with zlib/gzip, and
//! zlib/gzip streams must decode with us — both directions, all levels.
//!
//! Skipped (cleanly) when `python3` is unavailable.

use std::io::Write;
use std::process::{Command, Stdio};
use std::sync::OnceLock;

fn python_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        Command::new("python3")
            .arg("-c")
            .arg("import zlib, gzip")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

/// Pipes `input` through a short python3 program, returning stdout.
fn python_filter(program: &str, input: &[u8]) -> Vec<u8> {
    let mut child = Command::new("python3")
        .arg("-c")
        .arg(program)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn python3");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input)
        .expect("feed python");
    let out = child.wait_with_output().expect("python exit");
    assert!(out.status.success(), "python filter failed");
    out.stdout
}

fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("empty", Vec::new()),
        ("byte", vec![0x42]),
        (
            "text",
            b"the quick brown fox jumps over the lazy dog. ".repeat(300),
        ),
        ("zeros", vec![0u8; 100_000]),
        ("random", {
            let mut x = 0x1234_5678_9abc_def0u64;
            (0..50_000)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 32) as u8
                })
                .collect()
        }),
        ("structured", {
            let mut v = Vec::new();
            for i in 0..5_000u32 {
                v.extend_from_slice(
                    format!("record {:06} value {:.4}\n", i, f64::from(i) * 0.37).as_bytes(),
                );
            }
            v
        }),
    ]
}

#[test]
fn our_zlib_streams_decode_with_reference_zlib() {
    if !python_available() {
        eprintln!("skipping: python3 not available");
        return;
    }
    let prog =
        "import sys, zlib; sys.stdout.buffer.write(zlib.decompress(sys.stdin.buffer.read()))";
    for (name, data) in corpus() {
        for level in [1u8, 9] {
            let ours = adoc_codec::zlib::zlib_compress(&data, level);
            let back = python_filter(prog, &ours);
            assert_eq!(
                back, data,
                "{name} level {level}: reference zlib rejected our stream"
            );
        }
    }
}

#[test]
fn reference_zlib_streams_decode_with_us() {
    if !python_available() {
        eprintln!("skipping: python3 not available");
        return;
    }
    for (name, data) in corpus() {
        let level = 6u8;
        let prog = format!(
            "import sys, zlib; sys.stdout.buffer.write(zlib.compress(sys.stdin.buffer.read(), {level}))"
        );
        let theirs = python_filter(&prog, &data);
        let back = adoc_codec::zlib::zlib_decompress(&theirs, data.len())
            .unwrap_or_else(|e| panic!("{name} level {level}: we rejected zlib's stream: {e}"));
        assert_eq!(back, data, "{name} level {level}");
    }
}

#[test]
fn our_gzip_members_decode_with_reference_gzip() {
    if !python_available() {
        eprintln!("skipping: python3 not available");
        return;
    }
    let prog =
        "import sys, gzip; sys.stdout.buffer.write(gzip.decompress(sys.stdin.buffer.read()))";
    for (name, data) in corpus() {
        let level = 9u8;
        let ours = adoc_codec::gzip::gzip_compress(&data, level);
        let back = python_filter(prog, &ours);
        assert_eq!(
            back, data,
            "{name} level {level}: reference gzip rejected our member"
        );
    }
}

#[test]
fn reference_gzip_members_decode_with_us() {
    if !python_available() {
        eprintln!("skipping: python3 not available");
        return;
    }
    for (name, data) in corpus() {
        let prog =
            "import sys, gzip; sys.stdout.buffer.write(gzip.compress(sys.stdin.buffer.read(), 6))";
        let theirs = python_filter(prog, &data);
        let back = adoc_codec::gzip::gzip_decompress(&theirs, data.len())
            .unwrap_or_else(|e| panic!("{name}: we rejected gzip's member: {e}"));
        assert_eq!(back, data, "{name}");
    }
}

#[test]
fn checksums_match_reference() {
    if !python_available() {
        eprintln!("skipping: python3 not available");
        return;
    }
    for (name, data) in corpus() {
        let prog =
            "import sys, zlib; d = sys.stdin.buffer.read(); print(zlib.adler32(d), zlib.crc32(d))";
        let out = python_filter(prog, &data);
        let text = String::from_utf8(out).unwrap();
        let mut parts = text.split_whitespace();
        let adler: u32 = parts.next().unwrap().parse().unwrap();
        let crc: u32 = parts.next().unwrap().parse().unwrap();
        assert_eq!(
            adoc_codec::checksum::Adler32::oneshot(&data),
            adler,
            "{name} adler"
        );
        assert_eq!(
            adoc_codec::checksum::Crc32::oneshot(&data),
            crc,
            "{name} crc"
        );
    }
}
