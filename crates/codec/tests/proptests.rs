//! Property-based tests of the compression substrate: round-trips must
//! hold for *every* input at *every* level, containers must detect
//! corruption, and the canonical-code machinery must stay consistent.

use adoc_codec::bitio::{BitReader, BitWriter};
use adoc_codec::checksum::{Adler32, Crc32};
use adoc_codec::huffman::{canonical_codes, kraft, limited_code_lengths, HuffDecoder, HuffEncoder};
use adoc_codec::{compress_at, decompress_at, ADOC_MAX_LEVEL};
use proptest::prelude::*;

/// Structured generators: realistic payload families, not just noise —
/// LZ77 behaviour differs wildly between them.
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // arbitrary bytes
        proptest::collection::vec(any::<u8>(), 0..4096),
        // highly repetitive
        (any::<u8>(), 0..8192usize).prop_map(|(b, n)| vec![b; n]),
        // repeated phrases (textual)
        (proptest::collection::vec(any::<u8>(), 1..64), 1..200usize)
            .prop_map(|(unit, reps)| unit.repeat(reps)),
        // runs of zero interleaved with noise
        proptest::collection::vec(prop_oneof![Just(0u8), any::<u8>()], 0..4096),
        // low-entropy alphabet
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..4096),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_level_roundtrips(data in payload_strategy(), level in 0u8..=ADOC_MAX_LEVEL) {
        let mut comp = Vec::new();
        compress_at(level, &data, &mut comp);
        let mut out = Vec::new();
        decompress_at(level, &comp, data.len(), &mut out).expect("decode");
        prop_assert_eq!(out, data.clone());
    }

    #[test]
    fn deflate_roundtrips_all_levels(data in payload_strategy(), level in 0u8..=9) {
        let comp = adoc_codec::deflate::deflate_to_vec(&data, level);
        let out = adoc_codec::inflate::inflate_exact(&comp, data.len()).expect("inflate");
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lzf_roundtrips(data in payload_strategy()) {
        let mut comp = Vec::new();
        adoc_codec::lzf::compress(&data, &mut comp);
        let mut out = Vec::new();
        adoc_codec::lzf::decompress(&comp, &mut out, data.len()).expect("lzf");
        prop_assert_eq!(out, data.clone());
        // liblzf's worst-case bound: one control byte per 32 literals.
        prop_assert!(comp.len() <= data.len() + data.len() / 32 + 2);
    }

    #[test]
    fn zlib_container_roundtrips(data in payload_strategy(), level in 0u8..=9) {
        let z = adoc_codec::zlib::zlib_compress(&data, level);
        let out = adoc_codec::zlib::zlib_decompress(&z, data.len()).expect("zlib");
        prop_assert_eq!(out, data);
    }

    #[test]
    fn gzip_container_roundtrips(data in payload_strategy(), level in 0u8..=9) {
        let g = adoc_codec::gzip::gzip_compress(&data, level);
        let out = adoc_codec::gzip::gzip_decompress(&g, data.len()).expect("gzip");
        prop_assert_eq!(out, data);
    }

    #[test]
    fn zlib_detects_any_single_byte_corruption(
        data in proptest::collection::vec(any::<u8>(), 64..512),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let z = adoc_codec::zlib::zlib_compress(&data, 6);
        let mut bad = z.clone();
        let pos = pos_seed % bad.len();
        bad[pos] ^= flip;
        // Either an error, or (for bit flips in ignorable header bits)
        // identical output — never silently different data.
        if let Ok(out) = adoc_codec::zlib::zlib_decompress(&bad, data.len()) {
            prop_assert_eq!(out, data);
        }
    }

    #[test]
    fn inflate_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = adoc_codec::inflate::inflate_to_vec(&garbage, 1 << 16);
    }

    #[test]
    fn lzf_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut out = Vec::new();
        let _ = adoc_codec::lzf::decompress(&garbage, &mut out, 1 << 16);
    }

    #[test]
    fn adler_crc_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        split_seed in any::<usize>(),
    ) {
        let split = if data.is_empty() { 0 } else { split_seed % data.len() };
        let (a, b) = data.split_at(split);
        let mut adler = Adler32::new();
        adler.update(a);
        adler.update(b);
        prop_assert_eq!(adler.finish(), Adler32::oneshot(&data));
        let mut crc = Crc32::new();
        crc.update(a);
        crc.update(b);
        prop_assert_eq!(crc.finish(), Crc32::oneshot(&data));
    }

    #[test]
    fn package_merge_is_valid_and_bounded(
        freqs in proptest::collection::vec(0u32..10_000, 1..64),
        max_len in 6u8..=15,
    ) {
        let used = freqs.iter().filter(|&&f| f > 0).count();
        prop_assume!(used > 0);
        prop_assume!(used <= 1usize << max_len);
        let lengths = limited_code_lengths(&freqs, max_len);
        // Zero-frequency symbols get no code; the rest respect the limit.
        for (f, l) in freqs.iter().zip(&lengths) {
            prop_assert_eq!(*f > 0, *l > 0);
            prop_assert!(*l <= max_len);
        }
        if used >= 2 {
            prop_assert_eq!(kraft(&lengths), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn huffman_codes_decode_what_they_encode(
        freqs in proptest::collection::vec(0u32..64, 2..40),
        symbols_seed in proptest::collection::vec(any::<usize>(), 1..128),
    ) {
        let used: Vec<usize> = freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(i, _)| i).collect();
        prop_assume!(used.len() >= 2);
        let lengths = limited_code_lengths(&freqs, 15);
        let enc = HuffEncoder::from_lengths(&lengths);
        let dec = HuffDecoder::from_lengths(&lengths, false).expect("decoder");
        let symbols: Vec<usize> = symbols_seed.iter().map(|s| used[s % used.len()]).collect();
        let mut buf = Vec::new();
        {
            let mut w = BitWriter::new(&mut buf);
            for &s in &symbols {
                enc.write(&mut w, s);
            }
            w.finish();
        }
        let mut r = BitReader::new(&buf);
        for &expect in &symbols {
            prop_assert_eq!(dec.decode(&mut r).expect("symbol"), expect);
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free(freqs in proptest::collection::vec(0u32..64, 2..40)) {
        prop_assume!(freqs.iter().filter(|&&f| f > 0).count() >= 2);
        let lengths = limited_code_lengths(&freqs, 15);
        let codes = canonical_codes(&lengths);
        let coded: Vec<(u16, u8)> = codes
            .iter()
            .zip(&lengths)
            .filter(|(_, &l)| l > 0)
            .map(|(&c, &l)| (c, l))
            .collect();
        for (i, &(ca, la)) in coded.iter().enumerate() {
            for &(cb, lb) in coded.iter().skip(i + 1) {
                // Order so `short` has the smaller length; the shorter code
                // must not be a prefix of the longer one.
                let (short, slen, long, llen) =
                    if la <= lb { (ca, la, cb, lb) } else { (cb, lb, ca, la) };
                let shifted = long >> (llen - slen);
                prop_assert!(
                    shifted != short,
                    "code {short:0slen$b} prefixes {long:0llen$b}",
                    slen = slen as usize,
                    llen = llen as usize
                );
            }
        }
    }

    #[test]
    fn bitio_roundtrips_any_sequence(
        fields in proptest::collection::vec((any::<u32>(), 1u32..=32), 0..64),
    ) {
        let mut buf = Vec::new();
        {
            let mut w = BitWriter::new(&mut buf);
            for &(v, n) in &fields {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                w.write_bits(masked, n);
            }
            w.finish();
        }
        let mut r = BitReader::new(&buf);
        for &(v, n) in &fields {
            let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
            prop_assert_eq!(r.read_bits(n).expect("bits"), masked);
        }
    }

    #[test]
    fn higher_levels_never_much_worse(data in payload_strategy()) {
        prop_assume!(data.len() >= 256);
        // Monotonicity (with slack): gzip-9 output must not exceed gzip-1
        // output by more than the per-block overhead.
        let c1 = adoc_codec::deflate::deflate_to_vec(&data, 1).len();
        let c9 = adoc_codec::deflate::deflate_to_vec(&data, 9).len();
        prop_assert!(c9 <= c1 + 64, "gzip9 {} vs gzip1 {}", c9, c1);
    }
}
