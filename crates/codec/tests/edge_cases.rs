//! DEFLATE edge cases that unit tests' typical payloads do not reach:
//! format-limit distances and lengths, maximal dynamic headers, block
//! boundaries, and large multi-block streams.

use adoc_codec::deflate::deflate_to_vec;
use adoc_codec::inflate::{inflate_exact, inflate_to_vec};
use adoc_codec::lz77::{MAX_DIST, MAX_MATCH};

fn roundtrip(data: &[u8], level: u8) {
    let comp = deflate_to_vec(data, level);
    let out = inflate_exact(&comp, data.len())
        .unwrap_or_else(|e| panic!("level {level}, {} bytes: {e}", data.len()));
    assert_eq!(out, data, "level {level}");
}

#[test]
fn match_at_exactly_max_distance() {
    // A 24-byte pattern repeated exactly MAX_DIST apart, noise between.
    let pattern: Vec<u8> = (0..24u8)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    let mut data = pattern.clone();
    let mut x = 1u64;
    while data.len() < MAX_DIST {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        data.push((x >> 56) as u8);
    }
    data.truncate(MAX_DIST);
    data.extend_from_slice(&pattern); // second copy at distance exactly 32768
    for level in [1u8, 6, 9] {
        roundtrip(&data, level);
    }
}

#[test]
fn match_just_beyond_max_distance_still_correct() {
    let pattern = b"0123456789abcdefghijklmnop".to_vec();
    let mut data = pattern.clone();
    data.extend(std::iter::repeat_n(0xEEu8, MAX_DIST + 1 - pattern.len()));
    data.extend_from_slice(&pattern);
    roundtrip(&data, 9);
}

#[test]
fn runs_spanning_max_match_length() {
    for run in [MAX_MATCH - 1, MAX_MATCH, MAX_MATCH + 1, 4 * MAX_MATCH + 3] {
        let data = vec![b'R'; run];
        for level in [1u8, 6, 9] {
            roundtrip(&data, level);
        }
    }
}

#[test]
fn stored_block_boundary_sizes() {
    // Around the 65535-byte stored-block limit (level 0 path).
    for n in [65_534usize, 65_535, 65_536, 131_070, 131_071] {
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        roundtrip(&data, 0);
    }
}

#[test]
fn maximal_literal_alphabet_forces_wide_dynamic_header() {
    // All 256 literals present with skewed frequencies pushes HLIT to its
    // maximum and exercises deep code lengths.
    let mut data = Vec::new();
    for b in 0..=255u8 {
        let reps = 1 + (usize::from(b) * 7) % 97;
        data.extend(std::iter::repeat_n(b, reps));
    }
    // Scatter so matches don't swallow the alphabet.
    let mut scrambled = Vec::with_capacity(data.len());
    let mut idx = 0usize;
    let n = data.len();
    for _ in 0..n {
        idx = (idx + 104_729) % n; // prime stride visits every index once
        scrambled.push(data[idx]);
    }
    for level in [1u8, 6, 9] {
        roundtrip(&scrambled, level);
    }
}

#[test]
fn token_block_boundary_exactly_hit() {
    // The encoder flushes a block every 65536 tokens; all-literal noise
    // makes tokens == bytes, so craft sizes that straddle the boundary.
    let mut x = 7u64;
    for n in [65_535usize, 65_536, 65_537, 131_073] {
        let data: Vec<u8> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data, 1);
    }
}

#[test]
fn sixteen_megabyte_multi_block_stream() {
    // Large input: multiple dynamic blocks, window wrap-around many times.
    let mut data = Vec::with_capacity(16 << 20);
    let mut x = 99u64;
    while data.len() < 16 << 20 {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        if x % 5 < 2 {
            data.extend_from_slice(b"block after block of sliding window history ");
        } else {
            data.extend_from_slice(&x.to_le_bytes());
        }
    }
    data.truncate(16 << 20);
    roundtrip(&data, 6);
}

#[test]
fn alternating_compressible_incompressible_segments() {
    // Forces the encoder to alternate stored and huffman blocks.
    let mut data = Vec::new();
    let mut x = 3u64;
    for seg in 0..32 {
        if seg % 2 == 0 {
            data.extend(std::iter::repeat_n(b'c', 40_000));
        } else {
            for _ in 0..40_000 / 8 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                data.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    for level in [1u8, 6] {
        roundtrip(&data, level);
    }
}

#[test]
fn zlib_fdict_flag_rejected() {
    let mut z = adoc_codec::zlib::zlib_compress(b"data", 6);
    z[1] |= 0x20; // FDICT

    // Fix FCHECK.
    let rem = ((u16::from(z[0]) << 8) | u16::from(z[1] & 0xE0)) % 31;
    z[1] = (z[1] & 0xE0) | if rem == 0 { 0 } else { (31 - rem) as u8 };
    assert!(adoc_codec::zlib::zlib_decompress(&z, 16).is_err());
}

#[test]
fn inflate_rejects_hlit_hdist_overflow() {
    use adoc_codec::bitio::BitWriter;
    // Hand-build a dynamic header with HLIT = 31 (286+ codes → invalid).
    let mut buf = Vec::new();
    let mut w = BitWriter::new(&mut buf);
    w.write_bits(1, 1); // BFINAL
    w.write_bits(0b10, 2); // dynamic
    w.write_bits(31, 5); // HLIT → 288 > 286
    w.write_bits(0, 5);
    w.write_bits(0, 4);
    w.finish();
    assert!(inflate_to_vec(&buf, 64).is_err());
}

#[test]
fn deflate_of_every_small_size_roundtrips() {
    let mut x = 17u64;
    for n in 0..128usize {
        let data: Vec<u8> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 40) as u8
            })
            .collect();
        for level in [0u8, 1, 6, 9] {
            roundtrip(&data, level);
        }
    }
}
