//! # adoc-bench — the experiment harness
//!
//! One binary per table/figure of the paper (full-scale regeneration,
//! `cargo run --release -p adoc-bench --bin <exp>`) plus Criterion benches
//! (`cargo bench`) at reduced scale.
//!
//! The measurement methodology follows §6.1: application-level bandwidth
//! is "the amount of time required by the application to send and receive
//! back a buffer of the given size" — an echo round trip, reported as
//! `2 × size / time`.

pub mod figures;
pub mod runner;
pub mod table;

pub use runner::{
    echo_adoc, echo_posix, pingpong_latency, stream_group_pair, striped_oneway, EchoOutcome, Method,
};
pub use table::{fmt_mbits, Table};
