//! Transfer measurement primitives shared by every figure/table binary
//! and Criterion bench.

use adoc::{AdocConfig, AdocSocket, AdocStreamGroup};
use adoc_sim::link::{duplex, LinkCfg, LinkReader, LinkWriter};
use adoc_sim::stats::Samples;
use std::io::{Read, Write};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Which communication method a measurement exercises (the figures'
/// legend entries).
#[derive(Debug, Clone)]
pub enum Method {
    /// POSIX read/write.
    Posix,
    /// AdOC with default (adaptive) settings.
    Adoc,
    /// AdOC with explicit level bounds (forced or disabled compression).
    AdocLevels(u8, u8),
}

impl Method {
    /// Legend label.
    pub fn name(&self) -> String {
        match self {
            Method::Posix => "POSIX read/write".into(),
            Method::Adoc => "AdOC".into(),
            Method::AdocLevels(min, max) => format!("AdOC[{min},{max}]"),
        }
    }
}

/// Result of an echo measurement series.
#[derive(Debug, Clone)]
pub struct EchoOutcome {
    /// Per-repetition round-trip timings.
    pub samples: Samples,
    /// Payload size in bytes (one way).
    pub size: usize,
}

impl EchoOutcome {
    /// Paper-style application bandwidth from the best run: `2·S / T`.
    pub fn best_mbits(&self) -> f64 {
        adoc_sim::stats::mbits_per_sec(2 * self.size, self.samples.best())
    }

    /// Same from the mean (Fig. 4's "average timings").
    pub fn mean_mbits(&self) -> f64 {
        adoc_sim::stats::mbits_per_sec(2 * self.size, self.samples.mean())
    }
}

/// Echo `payload` across a fresh link per repetition using plain
/// read/write on both sides.
pub fn echo_posix(link: &LinkCfg, payload: &Arc<Vec<u8>>, reps: usize) -> EchoOutcome {
    let mut samples = Samples::default();
    for _ in 0..reps {
        let (mut a, mut b) = duplex(link.clone());
        let n = payload.len();
        let echo = thread::spawn(move || {
            let mut buf = vec![0u8; n];
            b.read_exact(&mut buf).expect("echo read");
            b.write_all(&buf).expect("echo write");
            b // hold the endpoint open until the measurement is done
        });
        let start = Instant::now();
        a.write_all(payload).expect("send");
        let mut back = vec![0u8; n];
        a.read_exact(&mut back).expect("recv echo");
        samples.push(start.elapsed());
        echo.join().unwrap();
        debug_assert_eq!(&back, &**payload);
    }
    EchoOutcome {
        samples,
        size: payload.len(),
    }
}

type AdocLinkSocket = AdocSocket<LinkReader, LinkWriter>;

fn adoc_pair_asym(
    link: &LinkCfg,
    local: &AdocConfig,
    remote: &AdocConfig,
) -> (AdocLinkSocket, AdocLinkSocket) {
    let (a, b) = duplex(link.clone());
    let (ar, aw) = a.split();
    let (br, bw) = b.split();
    (
        AdocSocket::with_config(ar, aw, local.clone()).expect("valid bench config"),
        AdocSocket::with_config(br, bw, remote.clone()).expect("valid bench config"),
    )
}

/// Echo `payload` across a fresh link per repetition through AdOC on both
/// sides.
pub fn echo_adoc(
    link: &LinkCfg,
    payload: &Arc<Vec<u8>>,
    reps: usize,
    method: &Method,
) -> EchoOutcome {
    let base = AdocConfig::default();
    echo_adoc_asym(link, payload, reps, method, &base, &base)
}

/// Like [`echo_adoc`] with distinct local/remote AdOC configurations
/// (heterogeneous hosts: the remote side may carry a CPU throttle).
pub fn echo_adoc_asym(
    link: &LinkCfg,
    payload: &Arc<Vec<u8>>,
    reps: usize,
    method: &Method,
    local: &AdocConfig,
    remote: &AdocConfig,
) -> EchoOutcome {
    let bounds = match method {
        Method::Posix => unreachable!("posix is not an adoc method"),
        Method::Adoc => None,
        Method::AdocLevels(min, max) => Some((*min, *max)),
    };
    let apply = |base: &AdocConfig| match bounds {
        Some((min, max)) => base.clone().with_levels(min, max),
        None => base.clone(),
    };
    let (local, remote) = (apply(local), apply(remote));
    let mut samples = Samples::default();
    for _ in 0..reps {
        let (mut a, mut b) = adoc_pair_asym(link, &local, &remote);
        let n = payload.len();
        let echo = thread::spawn(move || {
            let mut buf = vec![0u8; n];
            if n > 0 {
                b.read_exact(&mut buf).expect("echo adoc read");
            }
            b.write(&buf).expect("echo adoc write");
            b
        });
        let start = Instant::now();
        a.write(payload).expect("adoc send");
        let mut back = vec![0u8; n];
        if n > 0 {
            a.read_exact(&mut back).expect("adoc recv echo");
        }
        samples.push(start.elapsed());
        echo.join().unwrap();
        debug_assert_eq!(&back, &**payload);
    }
    EchoOutcome {
        samples,
        size: payload.len(),
    }
}

type LinkGroup = AdocStreamGroup<LinkReader, LinkWriter>;

/// Both ends of a `streams`-wide AdOC stream group, each stream on its
/// own freshly shaped link (parallel sockets get parallel congestion
/// windows; in the simulation, parallel line rates).
pub fn stream_group_pair(
    link: &LinkCfg,
    streams: usize,
    local: &AdocConfig,
    remote: &AdocConfig,
) -> (LinkGroup, LinkGroup) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for _ in 0..streams {
        let (a, b) = duplex(link.clone());
        left.push(a.split());
        right.push(b.split());
    }
    let (local, remote) = (local.clone(), remote.clone());
    thread::scope(|s| {
        let l = s.spawn(move || AdocStreamGroup::from_pairs(left, local).expect("group handshake"));
        let r = AdocStreamGroup::from_pairs(right, remote).expect("group handshake");
        (l.join().expect("group thread"), r)
    })
}

/// One-way striped transfer: `payload` goes through a fresh
/// `streams`-wide group per repetition; each sample is the wall time
/// until the receiver holds every byte (delivery is asserted
/// byte-exact). This is the scenario axis the stream sweep benches
/// measure — with a CPU throttle on the sending config, compression is
/// the bottleneck and throughput should scale with the stream count.
pub fn striped_oneway(
    link: &LinkCfg,
    payload: &Arc<Vec<u8>>,
    streams: usize,
    reps: usize,
    local: &AdocConfig,
    remote: &AdocConfig,
) -> EchoOutcome {
    let mut samples = Samples::default();
    for _ in 0..reps {
        let (mut tx, mut rx) = stream_group_pair(link, streams, local, remote);
        let n = payload.len();
        let p = Arc::clone(payload);
        let start = Instant::now();
        let sender = thread::spawn(move || {
            tx.write(&p).expect("striped send");
            tx
        });
        let mut got = vec![0u8; n];
        rx.read_exact(&mut got).expect("striped recv");
        samples.push(start.elapsed());
        sender.join().unwrap();
        assert_eq!(&got, &**payload, "striped delivery must be byte-exact");
    }
    EchoOutcome {
        samples,
        size: payload.len(),
    }
}

/// Table 2's measurement: a minimal ping-pong (1 byte — a genuinely empty
/// POSIX write is unobservable by the reader), returning per-rep round
/// trips.
pub fn pingpong_latency(link: &LinkCfg, method: &Method, reps: usize) -> Samples {
    let payload = Arc::new(vec![0u8; 1]);
    match method {
        Method::Posix => echo_posix(link, &payload, reps).samples,
        m => echo_adoc(link, &payload, reps, m).samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adoc_sim::mbit;
    use std::time::Duration;

    /// Timing assertions are noisy when the host is contended (e.g. the
    /// Criterion suite running in another process); retry a few times.
    fn retry(attempts: usize, mut f: impl FnMut() -> Result<(), String>) {
        let mut last = String::new();
        for _ in 0..attempts {
            match f() {
                Ok(()) => return,
                Err(e) => last = e,
            }
        }
        panic!("timing property failed {attempts} attempts; last: {last}");
    }

    #[test]
    fn echo_posix_measures_line_rate() {
        let link = LinkCfg::new(mbit(400.0), Duration::ZERO);
        let payload = Arc::new(vec![3u8; 1 << 20]);
        retry(4, || {
            let out = echo_posix(&link, &payload, 2);
            let bw = out.best_mbits();
            // 2 MB round trip at 400 Mbit with a 64 KB burst head start.
            if (220.0..650.0).contains(&bw) {
                Ok(())
            } else {
                Err(format!("measured {bw:.0} Mbit/s"))
            }
        });
    }

    #[test]
    fn echo_adoc_beats_posix_on_slow_link_with_text() {
        let link = LinkCfg::new(mbit(30.0), Duration::from_millis(1));
        let payload = Arc::new(adoc_data::generate(adoc_data::DataKind::Ascii, 1 << 20, 3));
        retry(4, || {
            let p = echo_posix(&link, &payload, 1);
            let a = echo_adoc(&link, &payload, 1, &Method::Adoc);
            if a.best_mbits() > p.best_mbits() * 1.3 {
                Ok(())
            } else {
                Err(format!(
                    "adoc {:.1} vs posix {:.1} Mbit/s",
                    a.best_mbits(),
                    p.best_mbits()
                ))
            }
        });
    }

    #[test]
    fn latency_pingpong_reflects_rtt() {
        let link = LinkCfg::new(mbit(100.0), Duration::from_millis(3));
        retry(4, || {
            let s = pingpong_latency(&link, &Method::Posix, 3);
            let ms = s.best() * 1e3;
            if (5.5..14.0).contains(&ms) {
                Ok(())
            } else {
                Err(format!("rtt {ms:.2} ms, expected ≈6"))
            }
        });
    }

    #[test]
    fn forced_levels_run_the_full_machinery() {
        let link = LinkCfg::new(mbit(1000.0), Duration::ZERO);
        let s = pingpong_latency(&link, &Method::AdocLevels(1, 10), 2);
        assert!(s.len() == 2 && s.best() > 0.0);
    }

    #[test]
    fn striped_transfer_scales_with_throttled_compression() {
        // The stream sweep's core claim: with compression throttled to be
        // the bottleneck, 4 streams (4 compression threads + 4 links)
        // move data faster than 1. Wall-clock ratios need an optimized
        // codec; debug builds assert the mechanism only (byte-exact
        // delivery and per-stream striping), mirroring the LAN tests.
        // 4 MiB at an 8× throttle: the compression stage is several
        // hundred ms, far above link/setup fixed costs, so the striping
        // effect is unambiguous even on a contended host.
        let link = LinkCfg::new(mbit(100.0), Duration::from_millis(1));
        let payload = Arc::new(adoc_data::generate(adoc_data::DataKind::Ascii, 4 << 20, 77));
        let throttled = AdocConfig::default()
            .with_levels(6, 6)
            .with_throttle(Arc::new(adoc::SleepThrottle::new(8.0)));
        let plain = AdocConfig::default();
        if cfg!(debug_assertions) {
            let out = striped_oneway(&link, &payload, 4, 1, &throttled, &plain);
            assert_eq!(out.size, payload.len());
            return;
        }
        retry(4, || {
            let one = striped_oneway(&link, &payload, 1, 1, &throttled, &plain);
            let four = striped_oneway(&link, &payload, 4, 1, &throttled, &plain);
            let speedup = one.samples.best() / four.samples.best();
            if speedup > 1.25 {
                Ok(())
            } else {
                Err(format!(
                    "4 streams {:.3}s vs 1 stream {:.3}s (speedup {speedup:.2})",
                    four.samples.best(),
                    one.samples.best()
                ))
            }
        });
    }
}
