//! Transfer measurement primitives shared by every figure/table binary
//! and Criterion bench.

use adoc::{AdocConfig, AdocSocket};
use adoc_sim::link::{duplex, LinkCfg, LinkReader, LinkWriter};
use adoc_sim::stats::Samples;
use std::io::{Read, Write};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Which communication method a measurement exercises (the figures'
/// legend entries).
#[derive(Debug, Clone)]
pub enum Method {
    /// POSIX read/write.
    Posix,
    /// AdOC with default (adaptive) settings.
    Adoc,
    /// AdOC with explicit level bounds (forced or disabled compression).
    AdocLevels(u8, u8),
}

impl Method {
    /// Legend label.
    pub fn name(&self) -> String {
        match self {
            Method::Posix => "POSIX read/write".into(),
            Method::Adoc => "AdOC".into(),
            Method::AdocLevels(min, max) => format!("AdOC[{min},{max}]"),
        }
    }
}

/// Result of an echo measurement series.
#[derive(Debug, Clone)]
pub struct EchoOutcome {
    /// Per-repetition round-trip timings.
    pub samples: Samples,
    /// Payload size in bytes (one way).
    pub size: usize,
}

impl EchoOutcome {
    /// Paper-style application bandwidth from the best run: `2·S / T`.
    pub fn best_mbits(&self) -> f64 {
        adoc_sim::stats::mbits_per_sec(2 * self.size, self.samples.best())
    }

    /// Same from the mean (Fig. 4's "average timings").
    pub fn mean_mbits(&self) -> f64 {
        adoc_sim::stats::mbits_per_sec(2 * self.size, self.samples.mean())
    }
}

/// Echo `payload` across a fresh link per repetition using plain
/// read/write on both sides.
pub fn echo_posix(link: &LinkCfg, payload: &Arc<Vec<u8>>, reps: usize) -> EchoOutcome {
    let mut samples = Samples::default();
    for _ in 0..reps {
        let (mut a, mut b) = duplex(link.clone());
        let n = payload.len();
        let echo = thread::spawn(move || {
            let mut buf = vec![0u8; n];
            b.read_exact(&mut buf).expect("echo read");
            b.write_all(&buf).expect("echo write");
            b // hold the endpoint open until the measurement is done
        });
        let start = Instant::now();
        a.write_all(payload).expect("send");
        let mut back = vec![0u8; n];
        a.read_exact(&mut back).expect("recv echo");
        samples.push(start.elapsed());
        echo.join().unwrap();
        debug_assert_eq!(&back, &**payload);
    }
    EchoOutcome {
        samples,
        size: payload.len(),
    }
}

type AdocLinkSocket = AdocSocket<LinkReader, LinkWriter>;

fn adoc_pair_asym(
    link: &LinkCfg,
    local: &AdocConfig,
    remote: &AdocConfig,
) -> (AdocLinkSocket, AdocLinkSocket) {
    let (a, b) = duplex(link.clone());
    let (ar, aw) = a.split();
    let (br, bw) = b.split();
    (
        AdocSocket::with_config(ar, aw, local.clone()),
        AdocSocket::with_config(br, bw, remote.clone()),
    )
}

/// Echo `payload` across a fresh link per repetition through AdOC on both
/// sides.
pub fn echo_adoc(
    link: &LinkCfg,
    payload: &Arc<Vec<u8>>,
    reps: usize,
    method: &Method,
) -> EchoOutcome {
    let base = AdocConfig::default();
    echo_adoc_asym(link, payload, reps, method, &base, &base)
}

/// Like [`echo_adoc`] with distinct local/remote AdOC configurations
/// (heterogeneous hosts: the remote side may carry a CPU throttle).
pub fn echo_adoc_asym(
    link: &LinkCfg,
    payload: &Arc<Vec<u8>>,
    reps: usize,
    method: &Method,
    local: &AdocConfig,
    remote: &AdocConfig,
) -> EchoOutcome {
    let bounds = match method {
        Method::Posix => unreachable!("posix is not an adoc method"),
        Method::Adoc => None,
        Method::AdocLevels(min, max) => Some((*min, *max)),
    };
    let apply = |base: &AdocConfig| match bounds {
        Some((min, max)) => base.clone().with_levels(min, max),
        None => base.clone(),
    };
    let (local, remote) = (apply(local), apply(remote));
    let mut samples = Samples::default();
    for _ in 0..reps {
        let (mut a, mut b) = adoc_pair_asym(link, &local, &remote);
        let n = payload.len();
        let echo = thread::spawn(move || {
            let mut buf = vec![0u8; n];
            if n > 0 {
                b.read_exact(&mut buf).expect("echo adoc read");
            }
            b.write(&buf).expect("echo adoc write");
            b
        });
        let start = Instant::now();
        a.write(payload).expect("adoc send");
        let mut back = vec![0u8; n];
        if n > 0 {
            a.read_exact(&mut back).expect("adoc recv echo");
        }
        samples.push(start.elapsed());
        echo.join().unwrap();
        debug_assert_eq!(&back, &**payload);
    }
    EchoOutcome {
        samples,
        size: payload.len(),
    }
}

/// Table 2's measurement: a minimal ping-pong (1 byte — a genuinely empty
/// POSIX write is unobservable by the reader), returning per-rep round
/// trips.
pub fn pingpong_latency(link: &LinkCfg, method: &Method, reps: usize) -> Samples {
    let payload = Arc::new(vec![0u8; 1]);
    match method {
        Method::Posix => echo_posix(link, &payload, reps).samples,
        m => echo_adoc(link, &payload, reps, m).samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adoc_sim::mbit;
    use std::time::Duration;

    /// Timing assertions are noisy when the host is contended (e.g. the
    /// Criterion suite running in another process); retry a few times.
    fn retry(attempts: usize, mut f: impl FnMut() -> Result<(), String>) {
        let mut last = String::new();
        for _ in 0..attempts {
            match f() {
                Ok(()) => return,
                Err(e) => last = e,
            }
        }
        panic!("timing property failed {attempts} attempts; last: {last}");
    }

    #[test]
    fn echo_posix_measures_line_rate() {
        let link = LinkCfg::new(mbit(400.0), Duration::ZERO);
        let payload = Arc::new(vec![3u8; 1 << 20]);
        retry(4, || {
            let out = echo_posix(&link, &payload, 2);
            let bw = out.best_mbits();
            // 2 MB round trip at 400 Mbit with a 64 KB burst head start.
            if (220.0..650.0).contains(&bw) {
                Ok(())
            } else {
                Err(format!("measured {bw:.0} Mbit/s"))
            }
        });
    }

    #[test]
    fn echo_adoc_beats_posix_on_slow_link_with_text() {
        let link = LinkCfg::new(mbit(30.0), Duration::from_millis(1));
        let payload = Arc::new(adoc_data::generate(adoc_data::DataKind::Ascii, 1 << 20, 3));
        retry(4, || {
            let p = echo_posix(&link, &payload, 1);
            let a = echo_adoc(&link, &payload, 1, &Method::Adoc);
            if a.best_mbits() > p.best_mbits() * 1.3 {
                Ok(())
            } else {
                Err(format!(
                    "adoc {:.1} vs posix {:.1} Mbit/s",
                    a.best_mbits(),
                    p.best_mbits()
                ))
            }
        });
    }

    #[test]
    fn latency_pingpong_reflects_rtt() {
        let link = LinkCfg::new(mbit(100.0), Duration::from_millis(3));
        retry(4, || {
            let s = pingpong_latency(&link, &Method::Posix, 3);
            let ms = s.best() * 1e3;
            if (5.5..14.0).contains(&ms) {
                Ok(())
            } else {
                Err(format!("rtt {ms:.2} ms, expected ≈6"))
            }
        });
    }

    #[test]
    fn forced_levels_run_the_full_machinery() {
        let link = LinkCfg::new(mbit(1000.0), Duration::ZERO);
        let s = pingpong_latency(&link, &Method::AdocLevels(1, 10), 2);
        assert!(s.len() == 2 && s.best() > 0.0);
    }
}
