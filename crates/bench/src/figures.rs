//! Shared experiment drivers for the figure/table binaries.

use crate::runner::{echo_adoc, echo_posix, Method};
use crate::table::{fmt_mbits, Table};
use adoc::AdocConfig;
use adoc_data::{generate, sweep, DataKind, Matrix};
use adoc_sim::link::LinkCfg;
use adoc_sim::netprofiles::NetProfile;
use netsolve::prelude::*;
use std::sync::Arc;

/// Which summary the figure plots (the paper shows both for Renater).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Summary {
    /// Best of N runs (Figs. 3, 5, 6, 7).
    Best,
    /// Average of N runs (Fig. 4).
    Average,
}

/// Minimal CLI flags shared by the experiment binaries:
/// `--max-size BYTES --reps N --csv --max-n N`.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Largest one-way payload for bandwidth sweeps.
    pub max_size: usize,
    /// Repetitions per point.
    pub reps: usize,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Largest matrix dimension for the NetSolve figures.
    pub max_n: usize,
}

impl Cli {
    /// Parses `std::env::args`, with experiment-specific defaults.
    pub fn parse(default_max_size: usize, default_reps: usize, default_max_n: usize) -> Cli {
        let mut cli = Cli {
            max_size: default_max_size,
            reps: default_reps,
            csv: false,
            max_n: default_max_n,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--max-size" => {
                    cli.max_size = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--max-size needs a byte count"));
                    i += 1;
                }
                "--reps" => {
                    cli.reps = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--reps needs a count"));
                    i += 1;
                }
                "--max-n" => {
                    cli.max_n = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--max-n needs a dimension"));
                    i += 1;
                }
                "--csv" => cli.csv = true,
                other => {
                    panic!("unknown flag {other} (supported: --max-size --reps --csv --max-n)")
                }
            }
            i += 1;
        }
        cli
    }

    /// Renders per the `--csv` flag.
    pub fn print(&self, t: &Table) {
        if self.csv {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.render());
        }
    }
}

/// Runs one bandwidth-vs-size figure: POSIX + AdOC × three data kinds.
pub fn bandwidth_figure(link: &LinkCfg, sizes: &[usize], reps: usize, summary: Summary) -> Table {
    let mut t = Table::new(&[
        "bytes",
        "POSIX Mbit/s",
        "AdOC ASCII",
        "AdOC binary",
        "AdOC incompressible",
    ]);
    for &size in sizes {
        let pick = |o: &crate::runner::EchoOutcome| match summary {
            Summary::Best => o.best_mbits(),
            Summary::Average => o.mean_mbits(),
        };
        let posix = {
            let payload = Arc::new(generate(DataKind::Ascii, size, 1000 + size as u64));
            pick(&echo_posix(link, &payload, reps))
        };
        let mut cells = vec![size.to_string(), fmt_mbits(posix)];
        for kind in DataKind::ALL {
            let payload = Arc::new(generate(kind, size, 2000 + size as u64));
            let out = echo_adoc(link, &payload, reps, &Method::Adoc);
            cells.push(fmt_mbits(pick(&out)));
        }
        t.row(cells);
        eprintln!("  measured {size} B");
    }
    t
}

/// Default size axes per network so full runs stay in wall-clock budget;
/// `--max-size` extends them to the paper's 32 MB.
pub fn default_sizes_for(profile: NetProfile, cap: usize) -> Vec<usize> {
    let _ = profile;
    sweep::sizes_up_to(cap)
}

/// One NetSolve dgemm point: total request time in seconds.
pub fn netsolve_point(
    link: &LinkCfg,
    mode: &TransportMode,
    n: usize,
    sparse: bool,
    threads: usize,
) -> f64 {
    let agent = Arc::new(Agent::new());
    let server = Server::new("bench-server", mode.clone())
        .with_service("dgemm", Arc::new(DgemmService { threads }));
    let names = server.service_names();
    let handle = server.start();
    agent.register(
        &names.iter().map(String::as_str).collect::<Vec<_>>(),
        handle,
    );
    let client = Client::new(agent, mode.clone(), sim_link_factory(link.clone()));

    let (a, b) = if sparse {
        (Matrix::sparse(n), Matrix::sparse(n))
    } else {
        (Matrix::dense(n, 77), Matrix::dense(n, 78))
    };
    let (_c, m) = client
        .dgemm(&a, &b, MatrixEncoding::Ascii)
        .expect("dgemm rpc");
    m.elapsed.as_secs_f64()
}

/// Runs a full Fig. 8/9-style table over matrix sizes.
pub fn netsolve_figure(link: &LinkCfg, max_n: usize, threads: usize) -> Table {
    let mut t = Table::new(&[
        "n",
        "NetSolve dense (s)",
        "NetSolve+AdOC dense (s)",
        "NetSolve sparse (s)",
        "NetSolve+AdOC sparse (s)",
    ]);
    let raw = TransportMode::Raw;
    let adoc = TransportMode::Adoc(AdocConfig::default());
    for n in sweep::matrix_sizes(max_n) {
        let dense_raw = netsolve_point(link, &raw, n, false, threads);
        let dense_adoc = netsolve_point(link, &adoc, n, false, threads);
        let sparse_raw = netsolve_point(link, &raw, n, true, threads);
        let sparse_adoc = netsolve_point(link, &adoc, n, true, threads);
        t.row(vec![
            n.to_string(),
            format!("{dense_raw:.3}"),
            format!("{dense_adoc:.3}"),
            format!("{sparse_raw:.3}"),
            format!("{sparse_adoc:.3}"),
        ]);
        eprintln!("  measured n={n}");
    }
    t
}
