//! Plain-text table output for the experiment binaries: aligned columns
//! on stdout, optional CSV for replotting.

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for gnuplot/matplotlib replots).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a bandwidth in Mbit/s with sensible precision.
pub fn fmt_mbits(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["size", "posix", "adoc"]);
        t.row(vec!["1KB".into(), "94".into(), "95".into()]);
        t.row(vec!["32MB".into(), "94".into(), "221".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[3].contains("32MB"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn mbits_formatting() {
        assert_eq!(fmt_mbits(940.23), "940");
        assert_eq!(fmt_mbits(94.023), "94.0");
        assert_eq!(fmt_mbits(9.4023), "9.40");
    }
}
