//! Ablations of AdOC's design choices (DESIGN.md §5):
//!
//! 1. compression-buffer size vs ratio degradation (the paper's
//!    200 KB / "< 6 %" claim, §3.2);
//! 2. the Fig. 2 adaptive policy vs fixed levels under congestion;
//! 3. the divergence guard on/off with a slow receiver (§5);
//! 4. the incompressible-data guard on/off on random data (§5);
//! 5. the fast-network threshold's effect on a Gbit link (§5).
//!
//! `cargo run --release -p adoc-bench --bin ablation_sweep`

use adoc::{AdocConfig, AdocSocket, SleepThrottle};
use adoc_bench::table::Table;
use adoc_data::{corpus, generate, DataKind};
use adoc_sim::link::{duplex, LinkCfg};
use adoc_sim::{mbit, BandwidthTrace};
use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One-way AdOC transfer time with given sender/receiver configs.
fn transfer_secs(
    link: &LinkCfg,
    data: &Arc<Vec<u8>>,
    tx_cfg: AdocConfig,
    rx_cfg: AdocConfig,
) -> (f64, adoc::TransferStats) {
    let (a, b) = duplex(link.clone());
    let (ar, aw) = a.split();
    let (br, bw) = b.split();
    let mut tx = AdocSocket::with_config(ar, aw, tx_cfg).expect("valid sweep config");
    let mut rx = AdocSocket::with_config(br, bw, rx_cfg).expect("valid sweep config");
    let n = data.len();
    let receiver = thread::spawn(move || {
        let mut buf = vec![0u8; n];
        rx.read_exact(&mut buf).expect("receive");
    });
    let start = Instant::now();
    tx.write(data).expect("send");
    receiver.join().unwrap();
    (start.elapsed().as_secs_f64(), tx.stats().clone())
}

fn ablation_buffer_size() {
    println!(
        "== Ablation 1: compression-buffer size vs ratio loss (paper §3.2: 200 KB ⇒ < 6 %) ==\n"
    );
    let data = corpus::harwell_boeing(4 << 20, 9);
    let whole = {
        let mut c = Vec::new();
        adoc_codec::compress_at(7, &data, &mut c); // gzip level 6
        c.len()
    };
    let mut t = Table::new(&["buffer", "compressed B", "ratio", "loss vs whole-file"]);
    for buf in [
        8 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        200 << 10,
        512 << 10,
        1 << 20,
        4 << 20,
    ] {
        let mut codec = adoc_codec::Codec::new();
        let mut c = Vec::new();
        let mut total = 0usize;
        for chunk in data.chunks(buf) {
            c.clear();
            codec.compress_at(7, chunk, &mut c);
            total += c.len();
        }
        let loss = (total as f64 / whole as f64 - 1.0) * 100.0;
        t.row(vec![
            adoc_sim::stats::fmt_size(buf),
            total.to_string(),
            format!("{:.2}", data.len() as f64 / total as f64),
            format!("{loss:+.2}%"),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn ablation_policy_vs_fixed() {
    println!("== Ablation 2: Fig. 2 adaptive policy vs fixed levels under congestion ==\n");
    // Congested middle phase: a fixed-high level wastes CPU when fast, a
    // fixed-low level wastes bandwidth when slow; adaptation rides both.
    let trace = BandwidthTrace::cyclic(vec![(0.5, mbit(250.0)), (0.5, mbit(12.0))]);
    let link = LinkCfg::new(mbit(250.0), Duration::from_millis(1)).with_trace(trace);
    let data = Arc::new(generate(DataKind::Ascii, 12 << 20, 17));
    let mut t = Table::new(&["policy", "time (s)", "wire MB", "max level used"]);
    let policies: Vec<(&str, AdocConfig)> = vec![
        ("adaptive (paper)", AdocConfig::default()),
        ("fixed lzf (1)", AdocConfig::default().with_levels(1, 1)),
        ("fixed gzip-6 (7)", AdocConfig::default().with_levels(7, 7)),
        ("no compression", AdocConfig::default().with_levels(0, 0)),
    ];
    for (name, cfg) in policies {
        let (secs, stats) = transfer_secs(&link, &data, cfg, AdocConfig::default());
        t.row(vec![
            name.to_string(),
            format!("{secs:.2}"),
            format!("{:.1}", stats.wire_bytes as f64 / 1e6),
            stats.max_level_used().to_string(),
        ]);
        eprintln!("  {name} done");
    }
    print!("{}", t.render());
    println!();
}

fn ablation_divergence_guard() {
    println!("== Ablation 3: divergence guard on/off with a 40× slower receiver (§5) ==\n");
    let link = LinkCfg::new(mbit(300.0), Duration::from_micros(300));
    let data = Arc::new(generate(DataKind::Ascii, 6 << 20, 18));
    let slow_rx = AdocConfig::default().with_throttle(Arc::new(SleepThrottle::new(40.0)));
    let mut t = Table::new(&["guard", "time (s)", "reverts", "max level used"]);
    for (name, margin) in [("on (paper)", 1.10f64), ("off", f64::INFINITY)] {
        let tx_cfg = AdocConfig {
            divergence_margin: margin,
            ..AdocConfig::default()
        };
        let (secs, stats) = transfer_secs(&link, &data, tx_cfg, slow_rx.clone());
        t.row(vec![
            name.to_string(),
            format!("{secs:.2}"),
            stats.divergence_reverts.to_string(),
            stats.max_level_used().to_string(),
        ]);
        eprintln!("  guard {name} done");
    }
    print!("{}", t.render());
    println!();
}

fn ablation_ratio_guard() {
    println!("== Ablation 4: incompressible-data guard on/off on random data (§5) ==\n");
    // A WAN-speed link plus a 2005-era CPU (8× slower at codec work than
    // this host): without the guard, the queue backs up on incompressible
    // data, Fig. 2 escalates the level, and compression becomes the
    // bottleneck. The guard pins the level to minimum after each failed
    // buffer, so the transfer stays wire-bound. (On modern CPUs the
    // comm/compress overlap hides the waste — the guard then saves CPU
    // cycles rather than seconds.)
    let link = LinkCfg::new(mbit(40.0), Duration::from_millis(1));
    let data = Arc::new(generate(DataKind::Incompressible, 4 << 20, 19));
    let mut t = Table::new(&["guard", "time (s)", "wire MB", "ratio trips"]);
    for (name, guard) in [("on (paper, 1.05)", 1.05f64), ("off (0.0)", 0.0)] {
        // Adaptive levels (the guard pins to the *minimum*, which forcing
        // would defeat) on a slow codec host.
        let mut tx_cfg = AdocConfig::default().with_throttle(Arc::new(SleepThrottle::new(8.0)));
        // Adaptive path for any size, but no probe bytes: studies the
        // guard in isolation.
        tx_cfg.probe_threshold = 0;
        tx_cfg.probe_size = 0;
        tx_cfg.ratio_guard = guard;
        let (secs, stats) = transfer_secs(&link, &data, tx_cfg, AdocConfig::default());
        t.row(vec![
            name.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}", stats.wire_bytes as f64 / 1e6),
            stats.ratio_trips.to_string(),
        ]);
        eprintln!("  ratio guard {name} done");
    }
    print!("{}", t.render());
    println!();
}

fn ablation_fast_threshold() {
    println!("== Ablation 5: fast-network threshold on a Gbit link (§5: 500 Mbit) ==\n");
    let link = LinkCfg::new(mbit(1000.0), Duration::from_micros(15));
    let data = Arc::new(generate(DataKind::Ascii, 8 << 20, 20));
    let mut t = Table::new(&["fast_bps threshold", "time (s)", "fast-path", "max level"]);
    for (name, thr) in [
        ("100 Mbit", 100e6),
        ("500 Mbit (paper)", 500e6),
        ("10 Gbit", 10e9),
    ] {
        let tx_cfg = AdocConfig {
            fast_bps: thr,
            ..AdocConfig::default()
        };
        let (secs, stats) = transfer_secs(&link, &data, tx_cfg, AdocConfig::default());
        t.row(vec![
            name.to_string(),
            format!("{secs:.3}"),
            (stats.fast_path_hits > 0).to_string(),
            stats.max_level_used().to_string(),
        ]);
        eprintln!("  threshold {name} done");
    }
    print!("{}", t.render());
    println!(
        "\nWith a 10 Gbit threshold the probe never disables compression, so the Gbit\n\
         link pays compression latency for nothing — the paper's argument for the probe."
    );
    std::io::stdout().flush().ok();
}

fn main() {
    ablation_buffer_size();
    ablation_policy_vs_fixed();
    ablation_divergence_guard();
    ablation_ratio_guard();
    ablation_fast_threshold();
}
