//! **Figure 4**: application bandwidth vs message size on the Renater
//! WAN — **average** of N runs (the paper's noisy-average companion to
//! Fig. 5).
//!
//! `cargo run --release -p adoc-bench --bin fig4_wan_avg [--max-size BYTES] [--reps N] [--csv]`

use adoc_bench::figures::{bandwidth_figure, default_sizes_for, Cli, Summary};
use adoc_sim::netprofiles::NetProfile;
use std::time::Duration;

fn main() {
    let cli = Cli::parse(2 << 20, 3, 0);
    let profile = NetProfile::Renater;
    // The paper's WAN is shared and jittery; Fig. 4 exists to show how
    // noisy averages are. Add jitter so the average/best distinction has
    // teeth.
    let link = profile
        .link_cfg()
        .with_jitter(Duration::from_millis(4), 0xF164);
    let sizes = default_sizes_for(profile, cli.max_size);
    println!(
        "Figure 4 — bandwidth on {} (AVERAGE of {} runs, jittered link; paper used 40 runs)\n",
        profile.name(),
        cli.reps
    );
    let t = bandwidth_figure(&link, &sizes, cli.reps, Summary::Average);
    cli.print(&t);
    println!("\nPaper shape: same ordering as Fig. 5 but visibly noisier after 8 KB.");
}
