//! **Table 1**: compression timings on the bench files using LZF and
//! gzip levels 1–9 — compression time, ratio, decompression time — for
//! the `oilpann.hb` analog (Harwell–Boeing ASCII) and the `bin.tar`
//! analog (executable tarball).
//!
//! `cargo run --release -p adoc-bench --bin table1 [--max-size BYTES] [--csv]`

use adoc_bench::figures::Cli;
use adoc_bench::table::Table;
use adoc_data::corpus::{bin_tarball, harwell_boeing};
use std::time::Instant;

fn measure(
    data: &[u8],
    level_label: &str,
    compress: impl Fn(&[u8]) -> Vec<u8>,
    decompress: impl Fn(&[u8], usize) -> Vec<u8>,
) -> (String, f64, f64, f64) {
    // Warm once, then time.
    let _warm = compress(data);
    let t0 = Instant::now();
    let comp = compress(data);
    let c_time = t0.elapsed().as_secs_f64();
    let ratio = data.len() as f64 / comp.len() as f64;
    let t1 = Instant::now();
    let dec = decompress(&comp, data.len());
    let d_time = t1.elapsed().as_secs_f64();
    assert_eq!(dec, data, "{level_label}: corrupted roundtrip");
    (level_label.to_string(), c_time, ratio, d_time)
}

fn rows_for(data: &[u8]) -> Vec<(String, f64, f64, f64)> {
    let mut rows = Vec::new();
    rows.push(measure(
        data,
        "lzf",
        |d| {
            let mut out = Vec::new();
            adoc_codec::lzf::compress(d, &mut out);
            out
        },
        |c, n| {
            let mut out = Vec::new();
            adoc_codec::lzf::decompress(c, &mut out, n).expect("lzf decode");
            out
        },
    ));
    for level in 1..=9u8 {
        rows.push(measure(
            data,
            &format!("gzip {level}"),
            move |d| adoc_codec::gzip::gzip_compress(d, level),
            move |c, n| adoc_codec::gzip::gzip_decompress(c, n).expect("gzip decode"),
        ));
    }
    rows
}

fn main() {
    let cli = Cli::parse(4 << 20, 1, 0);
    let size = cli.max_size;
    println!(
        "Table 1 — compression timings on bench files (size {} KB each)\n",
        size >> 10
    );

    let corpora = [
        ("oilpann.hb (synthetic HB)", harwell_boeing(size, 1)),
        ("bin.tar (synthetic tarball)", bin_tarball(size, 2)),
    ];

    let mut t = Table::new(&[
        "algo",
        "hb c.time(s)",
        "hb ratio",
        "hb d.time(s)",
        "tar c.time(s)",
        "tar ratio",
        "tar d.time(s)",
    ]);
    let hb_rows = rows_for(&corpora[0].1);
    let tar_rows = rows_for(&corpora[1].1);
    for (h, b) in hb_rows.iter().zip(&tar_rows) {
        t.row(vec![
            h.0.clone(),
            format!("{:.3}", h.1),
            format!("{:.2}", h.2),
            format!("{:.3}", h.3),
            format!("{:.3}", b.1),
            format!("{:.2}", b.2),
            format!("{:.3}", b.3),
        ]);
    }
    cli.print(&t);
    println!(
        "\nPaper shape: lzf fastest/lowest ratio; gzip c.time grows with level;\n\
         d.time roughly constant; ratio saturates after level 6."
    );
}
