//! **Figure 6**: application bandwidth vs message size on the
//! transatlantic Internet path (France ↔ Tennessee): 4 Mbit, 80 ms RTT,
//! and a slower remote machine (the paper notes the Tennessee host
//! dragged the gain down) — modeled with a 2× CPU throttle on the echo
//! peer's codec work.
//!
//! `cargo run --release -p adoc-bench --bin fig6_internet [--max-size BYTES] [--reps N] [--csv]`

use adoc::{AdocConfig, SleepThrottle};
use adoc_bench::figures::{default_sizes_for, Cli, Summary};
use adoc_bench::runner::{echo_adoc_asym, echo_posix, Method};
use adoc_bench::table::{fmt_mbits, Table};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use std::sync::Arc;

fn main() {
    let cli = Cli::parse(1 << 20, 3, 0);
    let profile = NetProfile::Internet;
    let link = profile.link_cfg();
    let sizes = default_sizes_for(profile, cli.max_size);
    println!(
        "Figure 6 — bandwidth on {} (best of {} runs; remote host 2× slower)\n",
        profile.name(),
        cli.reps
    );

    let remote_cfg = AdocConfig::default().with_throttle(Arc::new(SleepThrottle::new(2.0)));
    let local_cfg = AdocConfig::default();

    let mut t = Table::new(&[
        "bytes",
        "POSIX Mbit/s",
        "AdOC ASCII",
        "AdOC binary",
        "AdOC incompressible",
    ]);
    for &size in &sizes {
        let posix = {
            let payload = Arc::new(generate(DataKind::Ascii, size, 600 + size as u64));
            echo_posix(&link, &payload, cli.reps).best_mbits()
        };
        let mut cells = vec![size.to_string(), fmt_mbits(posix)];
        for kind in DataKind::ALL {
            let payload = Arc::new(generate(kind, size, 700 + size as u64));
            let out = echo_adoc_asym(
                &link,
                &payload,
                cli.reps,
                &Method::Adoc,
                &local_cfg,
                &remote_cfg,
            );
            cells.push(fmt_mbits(match Summary::Best {
                Summary::Best => out.best_mbits(),
                Summary::Average => out.mean_mbits(),
            }));
        }
        t.row(cells);
        eprintln!("  measured {size} B");
    }
    cli.print(&t);
    println!(
        "\nPaper shape: AdOC 5.5–6× POSIX at 32 MB; the slow remote host keeps the\n\
         gain below Renater's ratio-limited ceiling."
    );
}
