//! **Figure 7**: application bandwidth vs message size on a Gigabit
//! Ethernet LAN — the probe must disable compression, leaving AdOC within
//! tens of microseconds of POSIX at every size.
//!
//! `cargo run --release -p adoc-bench --bin fig7_gbit [--max-size BYTES] [--reps N] [--csv]`

use adoc_bench::figures::{bandwidth_figure, default_sizes_for, Cli, Summary};
use adoc_sim::netprofiles::NetProfile;

fn main() {
    let cli = Cli::parse(16 << 20, 3, 0);
    let profile = NetProfile::Gbit;
    let sizes = default_sizes_for(profile, cli.max_size);
    println!(
        "Figure 7 — bandwidth on a {} (best of {} runs)\n",
        profile.name(),
        cli.reps
    );
    let t = bandwidth_figure(&profile.link_cfg(), &sizes, cli.reps, Summary::Best);
    cli.print(&t);
    println!(
        "\nPaper shape: all four curves coincide — the probe classifies the link as\n\
         too fast and sends raw; overhead is a constant 10–20 µs, not size-dependent.\n\
         (Simulator timers floor out around 50–100 µs, so sub-millisecond points read\n\
         lower than physical hardware would.)"
    );
}
