//! **Figure 8**: NetSolve dgemm request time vs matrix size on a
//! 100 Mbit LAN — dense and sparse matrices, stock NetSolve vs
//! NetSolve+AdOC.
//!
//! `cargo run --release -p adoc-bench --bin fig8_netsolve_lan [--max-n N] [--csv]`
//! (paper goes to n = 2048; default stops at 1024 to keep wall time sane)

use adoc_bench::figures::{netsolve_figure, Cli};
use adoc_sim::netprofiles::NetProfile;

fn main() {
    let cli = Cli::parse(0, 1, 1024);
    let profile = NetProfile::Lan100;
    println!(
        "Figure 8 — NetSolve dgemm timings on a {} (ASCII matrix wire format)\n",
        profile.name()
    );
    let t = netsolve_figure(&profile.link_cfg(), cli.max_n, 4);
    cli.print(&t);
    println!(
        "\nPaper shape at n=2048: dense ≈5% faster with AdOC, sparse ≈5.6× faster;\n\
         never a degradation at any size."
    );
}
