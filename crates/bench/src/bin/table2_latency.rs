//! **Table 2**: minimal ping-pong latency of AdOC vs POSIX read/write on
//! the four networks, plus AdOC with forced compression (the cost of the
//! full thread/queue machinery).
//!
//! `cargo run --release -p adoc-bench --bin table2_latency [--reps N] [--csv]`

use adoc_bench::figures::Cli;
use adoc_bench::runner::{pingpong_latency, Method};
use adoc_bench::table::Table;
use adoc_sim::netprofiles::NetProfile;

fn main() {
    let cli = Cli::parse(0, 15, 0);
    println!(
        "Table 2 — ping-pong latency in milliseconds (best of {} runs; paper's values\n\
         in parentheses: Internet 80/80/225, Renater 9.2/9.2/25, LAN 0.18/0.20/1.8,\n\
         Gbit 0.030/0.045/1.6)\n",
        cli.reps
    );
    let mut t = Table::new(&[
        "network",
        "POSIX (ms)",
        "AdOC (ms)",
        "AdOC forced compression (ms)",
    ]);
    for profile in NetProfile::ALL {
        let link = profile.link_cfg();
        let posix = pingpong_latency(&link, &Method::Posix, cli.reps).best() * 1e3;
        let adoc = pingpong_latency(&link, &Method::Adoc, cli.reps).best() * 1e3;
        let forced = pingpong_latency(&link, &Method::AdocLevels(1, 10), cli.reps).best() * 1e3;
        t.row(vec![
            profile.name().to_string(),
            format!("{posix:.3}"),
            format!("{adoc:.3}"),
            format!("{forced:.3}"),
        ]);
        eprintln!("  measured {}", profile.name());
    }
    cli.print(&t);
    println!(
        "\nPaper shape: AdOC ≡ POSIX through 100 Mbit; slightly above on Gbit; forced\n\
         compression costs on the order of a millisecond everywhere (thread+queue+probe\n\
         machinery), which is why small messages bypass it."
    );
}
