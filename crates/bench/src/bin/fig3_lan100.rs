//! **Figure 3**: application bandwidth vs message size on a 100 Mbit
//! Fast Ethernet LAN — POSIX read/write vs AdOC with ASCII / binary /
//! incompressible data.
//!
//! `cargo run --release -p adoc-bench --bin fig3_lan100 [--max-size BYTES] [--reps N] [--csv]`

use adoc_bench::figures::{bandwidth_figure, default_sizes_for, Cli, Summary};
use adoc_sim::netprofiles::NetProfile;

fn main() {
    let cli = Cli::parse(8 << 20, 3, 0);
    let profile = NetProfile::Lan100;
    let sizes = default_sizes_for(profile, cli.max_size);
    println!(
        "Figure 3 — bandwidth on a {} (best of {} runs; paper sweeps to 32 MB, pass --max-size 33554432 for the full axis)\n",
        profile.name(),
        cli.reps
    );
    let t = bandwidth_figure(&profile.link_cfg(), &sizes, cli.reps, Summary::Best);
    cli.print(&t);
    println!(
        "\nPaper shape: identical to POSIX below 512 KB; above it AdOC pulls ahead\n\
         (1.85–2.36× at 32 MB), incompressible never loses."
    );
}
