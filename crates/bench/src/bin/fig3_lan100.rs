//! **Figure 3**: application bandwidth vs message size on a 100 Mbit
//! Fast Ethernet LAN — POSIX read/write vs AdOC with ASCII / binary /
//! incompressible data — plus the multi-stream scenario axis: a striped
//! transfer sweep over 1, 2 and 4 streams with compression throttled to
//! be the bottleneck.
//!
//! `cargo run --release -p adoc-bench --bin fig3_lan100 [--max-size BYTES] [--reps N] [--csv]`

use adoc::{AdocConfig, SleepThrottle};
use adoc_bench::figures::{bandwidth_figure, default_sizes_for, Cli, Summary};
use adoc_bench::runner::striped_oneway;
use adoc_bench::table::{fmt_mbits, Table};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use std::sync::Arc;

fn main() {
    let cli = Cli::parse(8 << 20, 3, 0);
    let profile = NetProfile::Lan100;
    let sizes = default_sizes_for(profile, cli.max_size);
    println!(
        "Figure 3 — bandwidth on a {} (best of {} runs; paper sweeps to 32 MB, pass --max-size 33554432 for the full axis)\n",
        profile.name(),
        cli.reps
    );
    let t = bandwidth_figure(&profile.link_cfg(), &sizes, cli.reps, Summary::Best);
    cli.print(&t);
    println!(
        "\nPaper shape: identical to POSIX below 512 KB; above it AdOC pulls ahead\n\
         (1.85–2.36× at 32 MB), incompressible never loses.\n"
    );

    // Stream sweep: one 100 Mbit link per stream, sender CPU throttled
    // 4× so compression is the bottleneck striping removes.
    println!("Stream sweep — 4 MiB ASCII, level 6, 4× CPU throttle, one-way:\n");
    let payload = Arc::new(generate(DataKind::Ascii, 4 << 20, 5));
    let throttled = AdocConfig::default()
        .with_levels(6, 6)
        .with_throttle(Arc::new(SleepThrottle::new(4.0)));
    let plain = AdocConfig::default();
    let mut sweep = Table::new(&["streams", "Mbit/s (one-way)"]);
    for streams in [1usize, 2, 4] {
        let out = striped_oneway(
            &profile.link_cfg(),
            &payload,
            streams,
            cli.reps,
            &throttled,
            &plain,
        );
        let mbits = adoc_sim::stats::mbits_per_sec(out.size, out.samples.best());
        sweep.row(vec![streams.to_string(), fmt_mbits(mbits)]);
        eprintln!("  measured {streams} stream(s)");
    }
    cli.print(&sweep);
}
