//! **Figure 9**: NetSolve dgemm request time vs matrix size over the
//! transatlantic Internet profile — dense and sparse, stock NetSolve vs
//! NetSolve+AdOC.
//!
//! `cargo run --release -p adoc-bench --bin fig9_netsolve_internet [--max-n N] [--csv]`

use adoc_bench::figures::{netsolve_figure, Cli};
use adoc_sim::netprofiles::NetProfile;

fn main() {
    let cli = Cli::parse(0, 1, 768);
    let profile = NetProfile::Internet;
    println!(
        "Figure 9 — NetSolve dgemm timings over {} (ASCII matrix wire format)\n",
        profile.name()
    );
    let t = netsolve_figure(&profile.link_cfg(), cli.max_n, 4);
    cli.print(&t);
    println!(
        "\nPaper shape at n=2048: dense 2.6× faster with AdOC, sparse 30.8× faster;\n\
         AdOC always wins because transfer dominates on a 4 Mbit path."
    );
}
