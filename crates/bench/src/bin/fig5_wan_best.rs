//! **Figure 5**: application bandwidth vs message size on the Renater
//! WAN — **best** of N runs (the paper's preferred, reproducible summary).
//!
//! `cargo run --release -p adoc-bench --bin fig5_wan_best [--max-size BYTES] [--reps N] [--csv]`

use adoc_bench::figures::{bandwidth_figure, default_sizes_for, Cli, Summary};
use adoc_sim::netprofiles::NetProfile;
use std::time::Duration;

fn main() {
    let cli = Cli::parse(2 << 20, 3, 0);
    let profile = NetProfile::Renater;
    let link = profile
        .link_cfg()
        .with_jitter(Duration::from_millis(4), 0xF165);
    let sizes = default_sizes_for(profile, cli.max_size);
    println!(
        "Figure 5 — bandwidth on {} (BEST of {} runs; paper used 40)\n",
        profile.name(),
        cli.reps
    );
    let t = bandwidth_figure(&link, &sizes, cli.reps, Summary::Best);
    cli.print(&t);
    println!(
        "\nPaper shape: POSIX plateaus ≈12 Mbit; AdOC ASCII reaches ≈6× that at 32 MB,\n\
         binary ≈2.6×, incompressible tracks POSIX."
    );
}
