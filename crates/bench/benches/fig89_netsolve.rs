//! Criterion companion to **Figures 8–9**: NetSolve dgemm request time,
//! dense/sparse × raw/AdOC, on the LAN and Internet profiles (small n;
//! the binaries sweep to paper scale).

use adoc::AdocConfig;
use adoc_bench::figures::netsolve_point;
use adoc_sim::netprofiles::NetProfile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use netsolve::prelude::TransportMode;
use std::time::Duration;

fn bench_netsolve(c: &mut Criterion, profile: NetProfile, group: &str, n: usize) {
    let link = profile.link_cfg();
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(10));

    for (label, mode) in [
        ("raw", TransportMode::Raw),
        ("adoc", TransportMode::Adoc(AdocConfig::default())),
    ] {
        for (kind, sparse) in [("dense", false), ("sparse", true)] {
            g.bench_function(BenchmarkId::new(format!("{label}_{kind}"), n), |b| {
                b.iter(|| netsolve_point(&link, &mode, n, sparse, 4))
            });
        }
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    bench_netsolve(c, NetProfile::Lan100, "fig8_netsolve_lan", 256);
}

fn bench_fig9(c: &mut Criterion) {
    bench_netsolve(c, NetProfile::Internet, "fig9_netsolve_internet", 128);
}

criterion_group!(benches, bench_fig8, bench_fig9);
criterion_main!(benches);
