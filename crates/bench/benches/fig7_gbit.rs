//! Criterion companion to **Figure 7**: on the Gbit profile AdOC must sit
//! on top of POSIX (probe-disabled compression, constant µs overhead).

use adoc_bench::runner::{echo_adoc, echo_posix, Method};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let link = NetProfile::Gbit.link_cfg();
    let mut g = c.benchmark_group("fig7_gbit");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(6));

    for size in [1 << 20, 8 << 20] {
        g.throughput(Throughput::Bytes(2 * size as u64));
        let ascii = Arc::new(generate(DataKind::Ascii, size, 7));
        g.bench_with_input(BenchmarkId::new("posix", size), &ascii, |b, p| {
            b.iter(|| echo_posix(&link, p, 1))
        });
        g.bench_with_input(BenchmarkId::new("adoc", size), &ascii, |b, p| {
            b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
