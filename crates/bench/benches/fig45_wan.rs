//! Criterion companion to **Figures 4–5**: echo bandwidth on the Renater
//! WAN profile (average and best summaries both derive from these
//! samples; the binaries print the full sweeps).

use adoc_bench::runner::{echo_adoc, echo_posix, Method};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_fig45(c: &mut Criterion) {
    let link = NetProfile::Renater.link_cfg();
    let mut g = c.benchmark_group("fig45_wan");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(12));

    for size in [256 << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(2 * size as u64));
        let ascii = Arc::new(generate(DataKind::Ascii, size, 3));
        let binary = Arc::new(generate(DataKind::Binary, size, 4));
        g.bench_with_input(BenchmarkId::new("posix", size), &ascii, |b, p| {
            b.iter(|| echo_posix(&link, p, 1))
        });
        g.bench_with_input(BenchmarkId::new("adoc_ascii", size), &ascii, |b, p| {
            b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc))
        });
        g.bench_with_input(BenchmarkId::new("adoc_binary", size), &binary, |b, p| {
            b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig45);
criterion_main!(benches);
