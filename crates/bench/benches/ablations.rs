//! Criterion micro-ablations:
//!
//! * LZF vs `memcpy` (the paper's §5 claim that LZF runs at roughly
//!   memcpy speed);
//! * per-buffer-size compression cost (the 200 KB choice);
//! * the Fig. 2 update function and the FIFO queue (they sit on the hot
//!   path between buffers, so they must be ~free).

use adoc::adapt::update_level;
use adoc::queue::{Packet, PacketQueue};
use adoc_data::{generate, DataKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_lzf_vs_memcpy(c: &mut Criterion) {
    let data = generate(DataKind::Ascii, 1 << 20, 1);
    let mut g = c.benchmark_group("ablation/lzf_vs_memcpy");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(20);
    g.bench_function("memcpy", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(data.len());
            out.extend_from_slice(black_box(&data));
            out
        })
    });
    g.bench_function("lzf", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            adoc_codec::lzf::compress(black_box(&data), &mut out);
            out
        })
    });
    g.bench_function("gzip1", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            adoc_codec::deflate::deflate(black_box(&data), 1, &mut out);
            out
        })
    });
    g.finish();
}

fn bench_buffer_size_cost(c: &mut Criterion) {
    let data = generate(DataKind::Ascii, 1 << 20, 2);
    let mut g = c.benchmark_group("ablation/buffer_size_gzip6");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(10);
    for buf in [8 << 10, 64 << 10, 200 << 10, 1 << 20] {
        g.bench_with_input(BenchmarkId::from_parameter(buf), &buf, |b, &buf| {
            // Streaming codec state, as the pipeline holds it per transfer.
            let mut codec = adoc_codec::Codec::new();
            let mut out = Vec::new();
            b.iter(|| {
                let mut total = 0usize;
                for chunk in data.chunks(buf) {
                    out.clear();
                    codec.compress_at(7, chunk, &mut out);
                    total += out.len();
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_adapt_fn(c: &mut Criterion) {
    c.bench_function("ablation/fig2_update_level", |b| {
        b.iter(|| {
            let mut l = 0u8;
            for n in 0..64usize {
                l = update_level(black_box(n), black_box(1), l, 0, 10, 10, 20, 30);
            }
            l
        })
    });
}

fn bench_queue_ops(c: &mut Criterion) {
    c.bench_function("ablation/queue_push_pop_1k", |b| {
        b.iter(|| {
            let q = PacketQueue::new(2048);
            for i in 0..1024u32 {
                q.push(Packet::from_vec(vec![0u8; 64], 0, i)).unwrap();
            }
            q.close();
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
}

criterion_group!(
    benches,
    bench_lzf_vs_memcpy,
    bench_buffer_size_cost,
    bench_adapt_fn,
    bench_queue_ops
);
criterion_main!(benches);
