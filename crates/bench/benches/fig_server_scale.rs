//! Server scalability: aggregate throughput of the `adoc-server` core as
//! concurrent clients grow (1 / 8 / 32 / 64).
//!
//! Each client gets its own 50 Mbit shaped link into the shared server
//! (per-client line rate, shared pool, shared fair-share scheduler),
//! sends one 1 MiB message and reads the echo. Sessions are
//! link-bound — wire time dwarfs per-client CPU — so the aggregate must
//! grow as clients overlap their waits, independent of core count
//! (CI runners are often single-core; a compression-bound fleet would
//! measure the codec, not the daemon). Two budget settings bracket the
//! scheduler's role:
//!
//! * `generous` (2 GiB/s): the scheduler is fully engaged (every wire
//!   byte passes admission) but never binding — aggregate throughput
//!   must rise monotonically from 1 → 8 → 32 clients;
//! * `capped` (64 Mbit/s aggregate): the fair-share budget *is* the
//!   bottleneck, so aggregate throughput plateaus near the budget no
//!   matter how many clients pile on — the no-starvation half of the
//!   scheduler's contract, measured.
//!
//! Compression-on serving at scale (mixed v1/v2 clients, adaptive
//! levels) is covered end-to-end by the `server_stress` integration
//! tests and `adoc-loadgen`; this sweep isolates the daemon's
//! concurrency and scheduling.

use adoc::{AdocConfig, AdocSocket};
use adoc_data::{generate, DataKind};
use adoc_server::{Server, ServerConfig};
use adoc_sim::link::{duplex, LinkCfg};
use adoc_sim::mbit;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn per_client_link() -> LinkCfg {
    LinkCfg::new(mbit(50.0), Duration::from_millis(1))
}

/// One full fleet round: `clients` concurrent echo sessions of one
/// `payload`-sized message each, against a fresh server core.
fn fleet_round(clients: usize, payload: &Arc<Vec<u8>>, budget_bytes_per_sec: Option<f64>) {
    // Transfer-daemon configuration: compression disabled on both sides
    // keeps each session wait-dominated (see the module docs); every
    // byte still flows through the pooled direct path and the
    // scheduler's admission.
    let plain = AdocConfig::default().with_levels(0, 0);
    let server = Server::new(ServerConfig {
        adoc: plain.clone(),
        budget_bytes_per_sec,
        max_conns: clients + 8,
        ..ServerConfig::default()
    })
    .expect("valid server config");

    thread::scope(|s| {
        for c in 0..clients {
            let server = Arc::clone(&server);
            let payload = Arc::clone(payload);
            let cfg = plain.clone();
            s.spawn(move || {
                let (client_end, server_end) = duplex(per_client_link());
                let (sr, sw) = server_end.split();
                let serving = thread::spawn(move || {
                    server
                        .serve_stream(sr, sw, &format!("bench-client-{c}"))
                        .expect("serve")
                });
                let (cr, cw) = client_end.split();
                let mut conn = AdocSocket::with_config(cr, cw, cfg).expect("client cfg");
                conn.write(&payload).expect("send");
                let mut back = vec![0u8; payload.len()];
                conn.read_exact(&mut back).expect("echo");
                assert_eq!(back, **payload, "echo must be byte-exact");
                drop(conn);
                assert_eq!(serving.join().expect("server thread"), 1);
            });
        }
    });
    assert_eq!(
        server.pool().stats().outstanding,
        0,
        "no pooled buffer may leak"
    );
}

fn bench_server_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_server_scale");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(12));

    let size = 1 << 20;
    let payload = Arc::new(generate(DataKind::Ascii, size, 42));
    for clients in [1usize, 8, 32, 64] {
        // Echo: every payload byte crosses the server twice.
        g.throughput(Throughput::Bytes((2 * size * clients) as u64));
        g.bench_with_input(
            BenchmarkId::new("echo_ascii_1MiB", clients),
            &payload,
            |b, p| b.iter(|| fleet_round(clients, p, Some(2.0 * 1024.0 * 1024.0 * 1024.0))),
        );
    }

    // The fairness cap: 64 Mbit/s aggregate shared by every client. More
    // clients must NOT mean more aggregate throughput here.
    for clients in [1usize, 8] {
        g.throughput(Throughput::Bytes((2 * size * clients) as u64));
        g.bench_with_input(
            BenchmarkId::new("echo_capped_64mbit", clients),
            &payload,
            |b, p| b.iter(|| fleet_round(clients, p, Some(64e6 / 8.0))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_server_scale);
criterion_main!(benches);
