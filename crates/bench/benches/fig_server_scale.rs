//! Server scalability: aggregate throughput of the `adoc-server` core as
//! concurrent clients grow (1 / 8 / 32 / 64 / 256).
//!
//! Each client runs at a 50 Mbit line rate into the shared server
//! (per-client pacing, shared pool, shared fair-share scheduler),
//! sends one 1 MiB message and reads the echo. Sessions are
//! line-bound — wire time dwarfs per-client CPU — so the aggregate must
//! grow as clients overlap their waits, independent of core count
//! (CI runners are often single-core; a compression-bound fleet would
//! measure the codec, not the daemon).
//!
//! The scale sweep drives the **real daemon over loopback TCP** — the
//! readiness-driven reactor path, where an idle or paced connection is
//! one registered fd, not a parked thread — with the 50 Mbit line rate
//! enforced by a client-side pacer (the sim crate's shaped links speak
//! `Read`/`Write` pairs, which the socket-owning reactor cannot
//! consume). Thread-per-session serving collapsed past its knee here:
//! its 256-client aggregate measured *below* the 64-client one, which
//! is exactly the cliff the sweep's top end now guards against. Two
//! budget settings bracket the scheduler's role:
//!
//! * `generous` (2 GiB/s): the scheduler is fully engaged (every wire
//!   byte passes admission) but never binding — aggregate throughput
//!   must rise monotonically from 1 → 8 → 32 clients and must not fall
//!   from 64 → 256 (gated in CI);
//! * `capped` (64 Mbit/s aggregate): the fair-share budget *is* the
//!   bottleneck, so aggregate throughput plateaus near the budget no
//!   matter how many clients pile on — the no-starvation half of the
//!   scheduler's contract, measured.
//!
//! Two further sweeps measure the **work-conserving weighted**
//! scheduler (these run over unshaped pipes — the budget is the only
//! bottleneck, so the scheduler's policy is what gets measured):
//!
//! * `skewed` (1 busy + N idle clients, 64 Mbit/s budget): the idle
//!   connections are registered but quiet, so a work-conserving
//!   scheduler must hand their share to the busy one — aggregate pins
//!   at the *budget* (≥ 90 % utilization asserted in CI), where fixed
//!   per-connection refills pin at `budget / (N + 1)`;
//! * `tiered` (1 Paid + 1 Bulk client, both saturating, 64 Mbit/s
//!   budget): aggregate still pins at the budget while the weighted
//!   split favours the paid client 2:1 (the split itself is asserted in
//!   the scheduler's tests; this sweep tracks the aggregate cost).
//!
//! Compression-on serving at scale (mixed v1/v2 clients, adaptive
//! levels) is covered end-to-end by the `server_stress` integration
//! tests and `adoc-loadgen`; this sweep isolates the daemon's
//! concurrency and scheduling.

use adoc::{AdocConfig, AdocSocket};
use adoc_data::{generate, DataKind};
use adoc_server::{daemon, Server, ServerConfig, Tier};
use adoc_sim::pipe::duplex_pipe;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// The per-client line rate of the scale sweep, in bytes per second
/// (50 Mbit/s — the same figure the sim-link version of this sweep
/// shaped each session to).
const LINE_RATE: f64 = 50e6 / 8.0;

/// Paces one direction of a client session at a fixed line rate:
/// after every chunk, sleeps until the cumulative byte count is back
/// under the rate. This is the client-side stand-in for the shaped sim
/// link, needed because the reactor owns real sockets.
struct Pacer {
    t0: Instant,
    bytes: u64,
    rate: f64,
}

impl Pacer {
    fn new(rate: f64) -> Self {
        Pacer {
            t0: Instant::now(),
            bytes: 0,
            rate,
        }
    }

    fn on(&mut self, n: usize) {
        self.bytes += n as u64;
        let due = self.t0 + Duration::from_secs_f64(self.bytes as f64 / self.rate);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            thread::sleep(wait);
        }
    }
}

/// One full fleet round against the real daemon (reactor path) over
/// loopback TCP: `clients` concurrent sessions, each sending one
/// `payload`-sized v1 direct message at a 50 Mbit line rate and
/// reading the echo at the same rate. The client side is a hand-rolled
/// wire exchange on a single `TcpStream` — no client-side pipeline
/// threads — so what the sweep measures is the daemon's concurrency.
fn fleet_round(
    clients: usize,
    payload: &Arc<Vec<u8>>,
    budget_bytes_per_sec: Option<f64>,
    instrument: bool,
) {
    use adoc::wire::{encode_msg_header, read_msg_header, MsgKind};

    // Compression disabled keeps each session wait-dominated (see the
    // module docs); every byte still flows through the reactor's pooled
    // direct path and the scheduler's admission.
    let plain = AdocConfig::default().with_levels(0, 0);
    let server = Server::new(
        ServerConfig::builder()
            .adoc(plain)
            .budget(budget_bytes_per_sec)
            .max_conns(clients + 8)
            .instrument(instrument)
            .build()
            .expect("valid server config"),
    )
    .expect("valid server config");
    let handle = daemon::spawn(server, "127.0.0.1:0").expect("bind daemon");
    let addr = handle.addr();

    const CHUNK: usize = 64 << 10;
    thread::scope(|s| {
        for _ in 0..clients {
            let payload = Arc::clone(payload);
            s.spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                sock.set_nodelay(true).ok();
                sock.write_all(&encode_msg_header(MsgKind::Direct, payload.len() as u64))
                    .expect("send header");
                let mut pace = Pacer::new(LINE_RATE);
                for chunk in payload.chunks(CHUNK) {
                    sock.write_all(chunk).expect("send body");
                    pace.on(chunk.len());
                }
                let (kind, raw_len) = read_msg_header(&mut sock)
                    .expect("reply header")
                    .expect("server closed early");
                assert_eq!(kind, MsgKind::Direct, "plain echo must come back direct");
                assert_eq!(raw_len, payload.len() as u64);
                let mut back = vec![0u8; payload.len()];
                let mut pace = Pacer::new(LINE_RATE);
                let mut at = 0;
                while at < back.len() {
                    let end = (at + CHUNK).min(back.len());
                    sock.read_exact(&mut back[at..end]).expect("echo");
                    pace.on(end - at);
                    at = end;
                }
                assert_eq!(back, **payload, "echo must be byte-exact");
            });
        }
    });
    let server = Arc::clone(handle.server());
    handle.shutdown().expect("drain");
    assert_eq!(
        server.pool().stats().outstanding,
        0,
        "no pooled buffer may leak"
    );
}

/// Sets the flag on drop — placed around the busy phase of a skewed
/// round so a panicking busy client still releases the idle spinner
/// threads (otherwise `thread::scope` would hang on them forever
/// instead of reporting the failure).
struct SetOnDrop<'a>(&'a AtomicBool);

impl Drop for SetOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// One echo session over an unshaped pipe against `server`, labelled
/// `peer` for tier resolution.
fn echo_once(server: &Arc<Server>, peer: &str, cfg: &AdocConfig, payload: &[u8]) {
    let (client_end, server_end) = duplex_pipe(1 << 20);
    let (sr, sw) = server_end.split();
    let s2 = Arc::clone(server);
    let label = peer.to_string();
    let serving = thread::spawn(move || s2.serve_stream(sr, sw, &label).expect("serve"));
    let (cr, cw) = client_end.split();
    let mut conn = AdocSocket::with_config(cr, cw, cfg.clone()).expect("client cfg");
    conn.write(payload).expect("send");
    let mut back = vec![0u8; payload.len()];
    conn.read_exact(&mut back).expect("echo");
    assert_eq!(back, payload, "echo must be byte-exact");
    drop(conn);
    assert_eq!(serving.join().expect("server thread"), 1);
}

/// Skewed-load round: `idle` clients register (one 1 KiB echo each) and
/// then sit idle holding their connections while one busy client echoes
/// `payload` under `budget_bytes_per_sec`. Work conservation is the
/// measurement: the busy client must run at ~the whole budget.
fn skewed_round(idle: usize, payload: &Arc<Vec<u8>>, budget_bytes_per_sec: f64) {
    let plain = AdocConfig::default().with_levels(0, 0);
    let server = Server::new(
        ServerConfig::builder()
            .adoc(plain.clone())
            .budget(Some(budget_bytes_per_sec))
            .max_conns(idle + 8)
            .build()
            .expect("valid server config"),
    )
    .expect("valid server config");

    let ready = Barrier::new(idle + 1);
    let done = AtomicBool::new(false);
    thread::scope(|s| {
        for c in 0..idle {
            let server = Arc::clone(&server);
            let cfg = plain.clone();
            let (ready, done) = (&ready, &done);
            s.spawn(move || {
                let (client_end, server_end) = duplex_pipe(1 << 20);
                let (sr, sw) = server_end.split();
                let s2 = Arc::clone(&server);
                let serving = thread::spawn(move || s2.serve_stream(sr, sw, &format!("idle-{c}")));
                let (cr, cw) = client_end.split();
                let mut conn = AdocSocket::with_config(cr, cw, cfg).expect("client cfg");
                let tiny = vec![0x2Au8; 1024];
                conn.write(&tiny).expect("idle send");
                let mut back = vec![0u8; tiny.len()];
                conn.read_exact(&mut back).expect("idle echo");
                ready.wait();
                while !done.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(5));
                }
                drop(conn);
                serving.join().expect("server thread").expect("idle serve");
            });
        }
        ready.wait();
        let _release_idles = SetOnDrop(&done);
        echo_once(&server, "busy-client", &plain, payload);
    });
    assert_eq!(server.pool().stats().outstanding, 0, "pooled buffer leak");
}

/// Tiered round: one Paid and one Bulk client, both saturating the same
/// budget; aggregate must pin at the budget while the weighted split
/// favours the paid client.
fn tiered_round(payload: &Arc<Vec<u8>>, budget_bytes_per_sec: f64) {
    let plain = AdocConfig::default().with_levels(0, 0);
    let server = Server::new(
        ServerConfig::builder()
            .adoc(plain.clone())
            .budget(Some(budget_bytes_per_sec))
            .max_conns(8)
            .tier_override("paid-", Tier::Paid)
            .build()
            .expect("valid server config"),
    )
    .expect("valid server config");
    thread::scope(|s| {
        for peer in ["paid-client", "bulk-client"] {
            let server = Arc::clone(&server);
            let cfg = plain.clone();
            let payload = Arc::clone(payload);
            s.spawn(move || echo_once(&server, peer, &cfg, &payload));
        }
    });
    assert_eq!(server.pool().stats().outstanding, 0, "pooled buffer leak");
}

fn bench_server_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_server_scale");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(12));

    let size = 1 << 20;
    let payload = Arc::new(generate(DataKind::Ascii, size, 42));
    // 256 is the "past the knee" point: with thread-per-session serving
    // the per-client throughput fell measurably from 32 → 64 clients,
    // so the sweep's top end guards the no-degradation claim at 4× that.
    for clients in [1usize, 8, 32, 64, 256] {
        // Echo: every payload byte crosses the server twice. The server
        // runs fully instrumented (MetricsSubscriber + EventLog
        // attached) — the production default.
        g.throughput(Throughput::Bytes((2 * size * clients) as u64));
        g.bench_with_input(
            BenchmarkId::new("echo_ascii_1MiB", clients),
            &payload,
            |b, p| b.iter(|| fleet_round(clients, p, Some(2.0 * 1024.0 * 1024.0 * 1024.0), true)),
        );
    }

    // The price of observation: the same 32-client round with the event
    // bus bare (no subscribers — emission is one branch). Comparing
    // against echo_ascii_1MiB/32 pins the instrumentation overhead; the
    // acceptance bar is < 3%.
    g.throughput(Throughput::Bytes((2 * size * 32) as u64));
    g.bench_with_input(
        BenchmarkId::new("echo_ascii_1MiB_bare", 32),
        &payload,
        |b, p| b.iter(|| fleet_round(32, p, Some(2.0 * 1024.0 * 1024.0 * 1024.0), false)),
    );

    // The fairness cap: 64 Mbit/s aggregate shared by every client. More
    // clients must NOT mean more aggregate throughput here.
    for clients in [1usize, 8] {
        g.throughput(Throughput::Bytes((2 * size * clients) as u64));
        g.bench_with_input(
            BenchmarkId::new("echo_capped_64mbit", clients),
            &payload,
            |b, p| b.iter(|| fleet_round(clients, p, Some(64e6 / 8.0), true)),
        );
    }

    // Work-conservation under skew: 1 busy + 31 idle clients, 64 Mbit/s
    // budget. Only the busy client's bytes count, so the reported
    // MiB/s *is* budget utilization (the budget is 7.63 MiB/s; CI
    // asserts >= 90% of it). A fixed budget/active refill pins this
    // sweep at ~0.24 MiB/s.
    let skew_payload = Arc::new(generate(DataKind::Ascii, 4 << 20, 43));
    for idle in [7usize, 31] {
        g.throughput(Throughput::Bytes((2 * (4 << 20)) as u64));
        g.bench_with_input(
            BenchmarkId::new("skewed_1busy_64mbit", idle + 1),
            &skew_payload,
            |b, p| b.iter(|| skewed_round(idle, p, 64e6 / 8.0)),
        );
    }

    // Weighted tiers under full load: Paid (2x) vs Bulk (1x), both
    // saturating a 64 Mbit/s budget. Aggregate stays pinned at the
    // budget; the 2:1 split itself is asserted in the scheduler tests.
    let tier_payload = Arc::new(generate(DataKind::Ascii, 3 << 20, 44));
    g.throughput(Throughput::Bytes((2 * 2 * (3 << 20)) as u64));
    g.bench_with_input(
        BenchmarkId::new("tiered_paid_vs_bulk_64mbit", 2),
        &tier_payload,
        |b, p| b.iter(|| tiered_round(p, 64e6 / 8.0)),
    );
    g.finish();
}

criterion_group!(benches, bench_server_scale);
criterion_main!(benches);
