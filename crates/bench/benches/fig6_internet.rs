//! Criterion companion to **Figure 6**: echo bandwidth on the
//! transatlantic Internet profile with a 2× slower remote host.

use adoc::{AdocConfig, SleepThrottle};
use adoc_bench::runner::{echo_adoc_asym, echo_posix, Method};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let link = NetProfile::Internet.link_cfg();
    let remote = AdocConfig::default().with_throttle(Arc::new(SleepThrottle::new(2.0)));
    let local = AdocConfig::default();

    let mut g = c.benchmark_group("fig6_internet");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(15));

    let size = 512 << 10;
    g.throughput(Throughput::Bytes(2 * size as u64));
    let ascii = Arc::new(generate(DataKind::Ascii, size, 5));
    let incompressible = Arc::new(generate(DataKind::Incompressible, size, 6));
    g.bench_with_input(BenchmarkId::new("posix", size), &ascii, |b, p| {
        b.iter(|| echo_posix(&link, p, 1))
    });
    g.bench_with_input(BenchmarkId::new("adoc_ascii", size), &ascii, |b, p| {
        b.iter(|| echo_adoc_asym(&link, p, 1, &Method::Adoc, &local, &remote))
    });
    g.bench_with_input(
        BenchmarkId::new("adoc_incompressible", size),
        &incompressible,
        |b, p| b.iter(|| echo_adoc_asym(&link, p, 1, &Method::Adoc, &local, &remote)),
    );
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
