//! Criterion companion to **Table 1**: compression/decompression
//! throughput of LZF and gzip levels on the two corpus files.

use adoc_data::corpus::{bin_tarball, harwell_boeing};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZE: usize = 1 << 20;

fn bench_compress(c: &mut Criterion) {
    let corpora = [
        ("hb", harwell_boeing(SIZE, 1)),
        ("tar", bin_tarball(SIZE, 2)),
    ];
    let mut g = c.benchmark_group("table1/compress");
    g.throughput(Throughput::Bytes(SIZE as u64));
    g.sample_size(10);
    for (name, data) in &corpora {
        g.bench_with_input(BenchmarkId::new("lzf", name), data, |b, d| {
            b.iter(|| {
                let mut out = Vec::new();
                adoc_codec::lzf::compress(d, &mut out);
                out
            })
        });
        for level in [1u8, 3, 6, 9] {
            g.bench_with_input(
                BenchmarkId::new(format!("gzip{level}"), name),
                data,
                |b, d| b.iter(|| adoc_codec::gzip::gzip_compress(d, level)),
            );
            // The streaming form the adaptive pipeline actually runs:
            // encoder state and output buffer reused across buffers.
            g.bench_with_input(
                BenchmarkId::new(format!("gzip{level}_stream"), name),
                data,
                |b, d| {
                    let mut enc = adoc_codec::DeflateEncoder::new();
                    let mut out = Vec::new();
                    b.iter(|| {
                        out.clear();
                        adoc_codec::gzip::gzip_compress_with(&mut enc, d, level, &mut out);
                        out.len()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let corpora = [
        ("hb", harwell_boeing(SIZE, 1)),
        ("tar", bin_tarball(SIZE, 2)),
    ];
    let mut g = c.benchmark_group("table1/decompress");
    g.throughput(Throughput::Bytes(SIZE as u64));
    g.sample_size(10);
    for (name, data) in &corpora {
        let lzf = {
            let mut out = Vec::new();
            adoc_codec::lzf::compress(data, &mut out);
            out
        };
        g.bench_with_input(BenchmarkId::new("lzf", name), &lzf, |b, comp| {
            b.iter(|| {
                let mut out = Vec::new();
                adoc_codec::lzf::decompress(comp, &mut out, SIZE).unwrap();
                out
            })
        });
        for level in [1u8, 6, 9] {
            let gz = adoc_codec::gzip::gzip_compress(data, level);
            g.bench_with_input(
                BenchmarkId::new(format!("gzip{level}"), name),
                &gz,
                |b, comp| b.iter(|| adoc_codec::gzip::gzip_decompress(comp, SIZE).unwrap()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
