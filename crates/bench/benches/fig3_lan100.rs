//! Criterion companion to **Figure 3**: echo bandwidth on the 100 Mbit
//! LAN profile at three representative sizes (the full sweep lives in the
//! `fig3_lan100` binary), plus the multi-stream scenario axis: a stream
//! sweep (`streams = 1, 2, 4`) with compression throttled to be the
//! bottleneck, where aggregate throughput should scale with the stream
//! count.

use adoc::{AdocConfig, SleepThrottle};
use adoc_bench::runner::{echo_adoc, echo_posix, striped_oneway, Method};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let link = NetProfile::Lan100.link_cfg();
    let mut g = c.benchmark_group("fig3_lan100");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(8));

    for size in [64 << 10, 1 << 20, 4 << 20] {
        g.throughput(Throughput::Bytes(2 * size as u64));
        let ascii = Arc::new(generate(DataKind::Ascii, size, 1));
        let incompressible = Arc::new(generate(DataKind::Incompressible, size, 2));
        g.bench_with_input(BenchmarkId::new("posix", size), &ascii, |b, p| {
            b.iter(|| echo_posix(&link, p, 1))
        });
        g.bench_with_input(BenchmarkId::new("adoc_ascii", size), &ascii, |b, p| {
            b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc))
        });
        g.bench_with_input(
            BenchmarkId::new("adoc_incompressible", size),
            &incompressible,
            |b, p| b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc)),
        );
    }
    g.finish();
}

fn bench_stream_sweep(c: &mut Criterion) {
    // One 100 Mbit link *per stream* and a 4× CPU throttle on the
    // sender: single-stream transfers are compression-bound, so striping
    // adds both compression threads and line rate. One-way transfers;
    // throughput is size / time.
    let link = NetProfile::Lan100.link_cfg();
    let mut g = c.benchmark_group("fig3_lan100_streams");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(8));

    let size = 4 << 20;
    let ascii = Arc::new(generate(DataKind::Ascii, size, 5));
    let throttled = AdocConfig::default()
        .with_levels(6, 6)
        .with_throttle(Arc::new(SleepThrottle::new(4.0)));
    let plain = AdocConfig::default();
    for streams in [1usize, 2, 4] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("throttled_ascii_4MiB", streams),
            &ascii,
            |b, p| b.iter(|| striped_oneway(&link, p, streams, 1, &throttled, &plain)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig3, bench_stream_sweep);
criterion_main!(benches);
