//! Criterion companion to **Figure 3**: echo bandwidth on the 100 Mbit
//! LAN profile at three representative sizes (the full sweep lives in the
//! `fig3_lan100` binary).

use adoc_bench::runner::{echo_adoc, echo_posix, Method};
use adoc_data::{generate, DataKind};
use adoc_sim::netprofiles::NetProfile;
use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let link = NetProfile::Lan100.link_cfg();
    let mut g = c.benchmark_group("fig3_lan100");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(8));

    for size in [64 << 10, 1 << 20, 4 << 20] {
        g.throughput(Throughput::Bytes(2 * size as u64));
        let ascii = Arc::new(generate(DataKind::Ascii, size, 1));
        let incompressible = Arc::new(generate(DataKind::Incompressible, size, 2));
        g.bench_with_input(BenchmarkId::new("posix", size), &ascii, |b, p| {
            b.iter(|| echo_posix(&link, p, 1))
        });
        g.bench_with_input(BenchmarkId::new("adoc_ascii", size), &ascii, |b, p| {
            b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc))
        });
        g.bench_with_input(
            BenchmarkId::new("adoc_incompressible", size),
            &incompressible,
            |b, p| b.iter(|| echo_adoc(&link, p, 1, &Method::Adoc)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
