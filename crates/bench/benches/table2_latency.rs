//! Criterion companion to **Table 2**: minimal ping-pong latency per
//! network × method.

use adoc_bench::runner::{pingpong_latency, Method};
use adoc_sim::netprofiles::NetProfile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_latency");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.measurement_time(Duration::from_secs(6));

    for profile in NetProfile::ALL {
        let link = profile.link_cfg();
        for (label, method) in [
            ("posix", Method::Posix),
            ("adoc", Method::Adoc),
            ("adoc_forced", Method::AdocLevels(1, 10)),
        ] {
            g.bench_with_input(BenchmarkId::new(label, profile.name()), &link, |b, l| {
                b.iter(|| pingpong_latency(l, &method, 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
