//! The server's control surface: a typed command vocabulary, a
//! tolerant line parser, and a [`Control`] object that executes
//! commands against a running [`Server`].
//!
//! Both front ends — the `adoc-serverd` stdin loop and the embedded
//! HTTP listener (see [`crate::http`]) — are thin adapters over this
//! module: they parse bytes into a [`Command`] with [`parse_command`]
//! and hand it to [`Control`]. Keeping the verbs in one place means a
//! new control operation automatically reaches every transport.

use crate::event::EventRecord;
use crate::Server;
use std::sync::Arc;

/// A parsed control command.
///
/// The wire syntax (one line per command, case-sensitive verbs):
///
/// | line                | command                          |
/// |---------------------|----------------------------------|
/// | `metrics`           | `Metrics`                        |
/// | `drain`             | `Drain`                          |
/// | `budget <mbit>`     | `Budget(Some(bytes_per_sec))`    |
/// | `budget off`        | `Budget(None)`                   |
/// | `help`              | `Help`                           |
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print a metrics document (`adoc-server-metrics-v2`).
    Metrics,
    /// Begin a graceful drain.
    Drain,
    /// Change the global bandwidth budget (bytes/sec); `None` lifts it.
    Budget(Option<f64>),
    /// Show the command vocabulary.
    Help,
}

/// Parses one control line.
///
/// Tolerant of surrounding whitespace and internal runs of blanks;
/// an empty (or all-blank) line is `Ok(None)` — not a command, not an
/// error. Unknown verbs and malformed arguments produce a one-line
/// human-readable error, e.g. `unknown command "metricz"`.
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let mut words = line.split_whitespace();
    let verb = match words.next() {
        Some(w) => w,
        None => return Ok(None),
    };
    let arg = words.next();
    if let Some(extra) = words.next() {
        return Err(format!("unexpected trailing argument \"{extra}\""));
    }
    let cmd = match (verb, arg) {
        ("metrics", None) => Command::Metrics,
        ("metrics", Some(extra)) => {
            return Err(format!(
                "unexpected trailing argument \"{extra}\" (the v1 schema has been removed)"
            ))
        }
        ("drain", None) => Command::Drain,
        ("help", None) => Command::Help,
        ("budget", Some("off")) => Command::Budget(None),
        ("budget", Some(v)) => match v.parse::<f64>() {
            Ok(mbit) if mbit > 0.0 && mbit.is_finite() => Command::Budget(Some(mbit * 1e6 / 8.0)),
            _ => {
                return Err(format!(
                    "bad budget \"{v}\" (want a positive Mbit/s number or \"off\")"
                ))
            }
        },
        ("budget", None) => return Err("budget needs an argument (Mbit/s or \"off\")".into()),
        ("drain" | "help", Some(extra)) => {
            return Err(format!("unexpected trailing argument \"{extra}\""))
        }
        (other, _) => return Err(format!("unknown command \"{other}\"")),
    };
    Ok(Some(cmd))
}

/// The command vocabulary, one verb per line (the `help` reply).
pub fn help_text() -> &'static str {
    "commands:\n  metrics        print a v2 metrics document\n  drain          begin a graceful drain\n  budget <mbit>  set the global budget in Mbit/s\n  budget off     lift the budget\n  help           this text"
}

/// Executes control commands against a running server. Cheap to clone
/// conceptually (holds one `Arc`); both the stdin loop and the HTTP
/// listener own one.
pub struct Control {
    server: Arc<Server>,
}

impl Control {
    /// Wraps a server.
    pub fn new(server: Arc<Server>) -> Self {
        Control { server }
    }

    /// The server under control.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Current metrics document in the v2 schema.
    pub fn metrics_json(&self) -> String {
        self.server.metrics_json()
    }

    /// Server-wide per-stage latency percentiles (`adoc-latency-v1`).
    pub fn latency_json(&self) -> String {
        self.server.tracer().latency_json()
    }

    /// One connection's flight-recorder document (`adoc-trace-v1`), or
    /// `None` when the connection has no trace (unknown or departed).
    pub fn trace_json(&self, conn: crate::registry::ConnId) -> Option<String> {
        self.server.tracer().trace_json(conn)
    }

    /// Buffered event records with sequence numbers greater than
    /// `since`, oldest first.
    pub fn events_since(&self, since: u64) -> Vec<EventRecord> {
        self.server.event_log().records_since(since)
    }

    /// Buffered events after `since` rendered as JSON lines (one
    /// object per line, trailing newline when non-empty).
    pub fn events_json_lines(&self, since: u64) -> String {
        self.server.event_log().json_lines_since(since)
    }

    /// Begins a graceful drain (idempotent).
    pub fn drain(&self) {
        self.server.begin_drain();
    }

    /// Replaces the global bandwidth budget; `None` lifts it.
    pub fn set_budget(&self, bytes_per_sec: Option<f64>) {
        self.server.scheduler().set_budget(bytes_per_sec);
    }

    /// Runs one parsed command, returning the text reply to print (the
    /// empty string for commands with no output).
    pub fn run(&self, cmd: &Command) -> String {
        match cmd {
            Command::Metrics => self.metrics_json(),
            Command::Drain => {
                self.drain();
                String::new()
            }
            Command::Budget(b) => {
                self.set_budget(*b);
                String::new()
            }
            Command::Help => help_text().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_lines_parse_to_nothing() {
        assert_eq!(parse_command(""), Ok(None));
        assert_eq!(parse_command("   \t  "), Ok(None));
    }

    #[test]
    fn known_verbs_parse_with_sloppy_whitespace() {
        assert_eq!(parse_command("  metrics  "), Ok(Some(Command::Metrics)));
        assert_eq!(parse_command("\tdrain"), Ok(Some(Command::Drain)));
        assert_eq!(parse_command("help"), Ok(Some(Command::Help)));
        assert_eq!(parse_command("budget off"), Ok(Some(Command::Budget(None))));
    }

    #[test]
    fn budget_converts_mbit_to_bytes_per_sec() {
        let cmd = parse_command("budget 64").unwrap().unwrap();
        match cmd {
            Command::Budget(Some(b)) => assert!((b - 8_000_000.0).abs() < 1e-6),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn errors_are_single_line_and_name_the_offender() {
        for (line, needle) in [
            ("metricz", "unknown command \"metricz\""),
            ("metrics v1", "unexpected trailing argument \"v1\""),
            ("budget", "budget needs an argument"),
            ("budget fast", "bad budget \"fast\""),
            ("budget -3", "bad budget \"-3\""),
            ("budget inf", "bad budget \"inf\""),
            ("drain now", "unexpected trailing argument \"now\""),
            ("budget 64 now", "unexpected trailing argument \"now\""),
        ] {
            let err = parse_command(line).unwrap_err();
            assert!(err.contains(needle), "{line:?} gave {err:?}");
            assert!(!err.contains('\n'), "{line:?} error spans lines: {err:?}");
        }
    }

    #[test]
    fn help_text_names_every_verb() {
        for verb in ["metrics", "drain", "budget", "help"] {
            assert!(help_text().contains(verb));
        }
    }
}
