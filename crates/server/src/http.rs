//! A minimal blocking HTTP/1.1 listener exposing the control surface.
//!
//! Deliberately tiny — `std::net::TcpListener`, one serving thread,
//! requests handled serially — because its job is observability, not
//! throughput: a scrape every few seconds from a curl or a collector.
//! Routes:
//!
//! * `GET /metrics` — the v2 metrics document
//! * `GET /events?since=<seq>` — buffered events after `seq` as JSON
//!   lines (`since` defaults to 0, i.e. everything still buffered)
//! * `GET /latency` — server-wide per-stage latency percentiles
//!   (`adoc-latency-v1`)
//! * `GET /trace?conn=<id>` — one connection's flight recorder:
//!   stage summaries plus recent spans (`adoc-trace-v1`)
//! * `POST /control/drain` — begin a graceful drain
//! * `POST /control/budget` — body `<mbit>` or `off`
//!
//! No framework, no keep-alive, no TLS: every response carries
//! `Connection: close`. Malformed requests get a 400; unknown paths a
//! 404; a GET on a control route a 405.

use crate::control::{parse_command, Command, Control};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Accept-loop poll interval while idle; also the per-request socket
/// read/write timeout (a *silent* client cannot wedge the listener for
/// longer than this).
const HTTP_POLL: Duration = Duration::from_millis(50);

/// Hard wall-clock budget for reading one whole request. The socket
/// timeout above only bounds each individual read — a client dripping
/// one byte per poll interval would pass every per-read check while
/// holding the serial listener for minutes. Every read also checks
/// this total deadline, so the worst case a slow client can inflict is
/// `REQUEST_DEADLINE + HTTP_POLL`.
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

/// Largest accepted request head + body; far above any legitimate
/// control request.
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// A running HTTP control listener. Stop it with
/// [`HttpHandle::shutdown`]; dropping the handle detaches the thread.
pub struct HttpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `listen` and serves the control surface for `control` until
/// the returned handle is shut down.
pub fn spawn(control: Control, listen: impl ToSocketAddrs) -> io::Result<HttpHandle> {
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("adoc-http".into())
            .spawn(move || accept_loop(control, listener, stop))?
    };
    Ok(HttpHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(control: Control, listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serial on purpose: one scraper at a time is the
                // designed load, and serial handling means a client
                // can never observe a half-applied control command
                // interleaved with its own.
                if let Err(e) = serve_request(&control, stream) {
                    if e.kind() != io::ErrorKind::WouldBlock && e.kind() != io::ErrorKind::TimedOut
                    {
                        eprintln!("adoc-server: http request failed: {e}");
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(HTTP_POLL),
            Err(e) => {
                eprintln!("adoc-server: http accept failed: {e}");
                thread::sleep(HTTP_POLL);
            }
        }
    }
}

struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: "200 OK",
            content_type,
            body,
        }
    }

    fn error(status: &'static str, msg: &str) -> Self {
        Response {
            status,
            content_type: "text/plain",
            body: format!("{msg}\n"),
        }
    }
}

/// A read half that enforces the whole-request deadline on top of the
/// per-read socket timeout.
struct DeadlineReader {
    inner: TcpStream,
    deadline: Instant,
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if Instant::now() >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        self.inner.read(buf)
    }
}

fn serve_request(control: &Control, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(HTTP_POLL))?;
    stream.set_write_timeout(Some(HTTP_POLL))?;
    stream.set_nodelay(true).ok();

    let reader = DeadlineReader {
        inner: stream.try_clone()?,
        deadline: Instant::now() + REQUEST_DEADLINE,
    };
    let mut reader = BufReader::new(reader).take(MAX_REQUEST_BYTES as u64);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return write_response(
                &mut stream,
                Response::error("400 Bad Request", "bad request"),
            )
        }
    };

    // Drain headers; all we need from them is the body length.
    let mut content_length: usize = 0;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0).min(MAX_REQUEST_BYTES);
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    let body = String::from_utf8_lossy(&body).into_owned();

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };

    let resp = route(control, &method, path, query, body.trim());
    write_response(&mut stream, resp)
}

fn route(control: &Control, method: &str, path: &str, query: &str, body: &str) -> Response {
    match (method, path) {
        ("GET", "/metrics") => {
            if let Some(other) = query_param(query, "schema") {
                return Response::error(
                    "400 Bad Request",
                    &format!("unknown metrics schema \"{other}\" (the v1 schema has been removed)"),
                );
            }
            Response::ok("application/json", control.metrics_json())
        }
        ("GET", "/events") => {
            let since = match query_param(query, "since") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        return Response::error(
                            "400 Bad Request",
                            &format!("bad since \"{v}\" (want an event sequence number)"),
                        )
                    }
                },
                None => 0,
            };
            Response::ok("application/x-ndjson", control.events_json_lines(since))
        }
        ("GET", "/latency") => Response::ok("application/json", control.latency_json()),
        ("GET", "/trace") => {
            let conn = match query_param(query, "conn") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        return Response::error(
                            "400 Bad Request",
                            &format!("bad conn \"{v}\" (want a connection id)"),
                        )
                    }
                },
                None => return Response::error("400 Bad Request", "missing conn parameter"),
            };
            match control.trace_json(conn) {
                Some(doc) => Response::ok("application/json", doc),
                None => Response::error("404 Not Found", &format!("unknown conn {conn}")),
            }
        }
        ("POST", "/control/drain") => {
            control.drain();
            Response::ok("text/plain", "draining\n".into())
        }
        ("POST", "/control/budget") => match parse_command(&format!("budget {body}")) {
            Ok(Some(Command::Budget(b))) => {
                control.set_budget(b);
                Response::ok("text/plain", "ok\n".into())
            }
            Ok(_) => Response::error("400 Bad Request", "empty budget body"),
            Err(e) => Response::error("400 Bad Request", &e),
        },
        ("GET", "/control/drain" | "/control/budget")
        | ("POST", "/metrics" | "/events" | "/latency" | "/trace") => {
            Response::error("405 Method Not Allowed", "method not allowed")
        }
        _ => Response::error("404 Not Found", "not found"),
    }
}

/// Extracts a query parameter's raw value (no percent-decoding; the
/// control surface's values never need it).
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn write_response(stream: &mut TcpStream, resp: Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};

    #[test]
    fn a_drip_feeding_client_cannot_wedge_the_listener() {
        let server = Server::new(ServerConfig::builder().build().expect("config")).expect("server");
        let handle = spawn(Control::new(server), "127.0.0.1:0").expect("listener");
        let addr = handle.addr();

        // Slowloris: connects first and drips one byte per ~25 ms —
        // each individual read succeeds, so only the whole-request
        // deadline can cut it loose.
        let stop = Arc::new(AtomicBool::new(false));
        let drip = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("drip connect");
                while !stop.load(Ordering::Relaxed) {
                    if s.write_all(b"G").is_err() {
                        break; // listener cut us: mission accomplished
                    }
                    thread::sleep(Duration::from_millis(25));
                }
            })
        };
        thread::sleep(Duration::from_millis(200)); // drip holds the serial listener

        // A well-behaved scrape queued behind the drip must still be
        // answered once the deadline cuts the stalled request.
        let t0 = Instant::now();
        let mut scrape = TcpStream::connect(addr).expect("scrape connect");
        scrape
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        scrape
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut resp = String::new();
        scrape.read_to_string(&mut resp).expect("response");
        assert!(
            resp.starts_with("HTTP/1.1 200"),
            "scrape failed: {resp:.60}"
        );
        assert!(
            t0.elapsed() < REQUEST_DEADLINE + Duration::from_secs(5),
            "scrape waited {:?} — the drip client wedged the listener",
            t0.elapsed()
        );

        stop.store(true, Ordering::Relaxed);
        drip.join().expect("drip thread");
        handle.shutdown();
    }

    #[test]
    fn query_params_are_extracted_by_name() {
        assert_eq!(query_param("since=42", "since"), Some("42"));
        assert_eq!(query_param("a=1&since=7&b=2", "since"), Some("7"));
        assert_eq!(query_param("", "since"), None);
        assert_eq!(query_param("since", "since"), None);
        assert_eq!(query_param("schema=v1", "schema"), Some("v1"));
    }
}
