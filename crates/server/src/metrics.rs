//! On-demand metrics: one JSON document describing the whole daemon —
//! registry, scheduler buckets, shared pool — without serde (the
//! workspace builds offline) and without touching any connection's hot
//! path (everything reads registry snapshots).
//!
//! Schema (`adoc-server-metrics-v1`):
//!
//! ```json
//! {
//!   "schema": "adoc-server-metrics-v1",
//!   "uptime_secs": 1.0, "draining": false, "mode": "echo",
//!   "budget_bytes_per_sec": 1000000.0,
//!   "sched": { "work_conserving": true, "drain_admitted": 0 },
//!   "totals": { "accepted": 1, "completed": 1, "failed": 0,
//!               "handshake_failures": 0, "messages": 1,
//!               "raw_bytes": 1, "reply_wire_bytes": 1 },
//!   "pool": { "hits": 1, "misses": 1, "returns": 1, "evicted": 0,
//!             "outstanding": 0, "peak_outstanding": 2, "idle": 2,
//!             "max_idle": 64, "idle_bytes": 4096 },
//!   "connections": [ { "id": 1, "peer": "…", "state": "active",
//!                      "streams": 1, "messages": 1, "raw_bytes": 1,
//!                      "reply_wire_bytes": 1, "age_secs": 1.0,
//!                      "sched_admitted": 1, "sched_tier": "bulk",
//!                      "sched_weight": 1.0,
//!                      "level_bps": { "3": 1.0 } } ]
//! }
//! ```
//!
//! The scheduler fields come from [`crate::FairScheduler::snapshot`],
//! which is read-only and never takes the pacing mutex — a metrics
//! poll cannot stall admissions or mutate pacing state.

use crate::sched::BucketSnapshot;
use crate::Server;
use std::collections::HashMap;
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the metrics document for `server`.
pub(crate) fn render(server: &Server) -> String {
    let totals = server.registry().totals();
    let pool = server.pool().stats();
    let buckets: HashMap<u64, BucketSnapshot> = server
        .scheduler()
        .snapshot()
        .into_iter()
        .map(|b| (b.conn, b))
        .collect();
    let drain = server.scheduler().drain_snapshot();

    let mut out = String::from("{\n  \"schema\": \"adoc-server-metrics-v1\",\n");
    let _ = writeln!(
        out,
        "  \"uptime_secs\": {:.3}, \"draining\": {}, \"mode\": \"{}\",",
        server.uptime_secs(),
        server.is_draining(),
        match server.mode() {
            crate::ServeMode::Echo => "echo",
            crate::ServeMode::Sink => "sink",
        }
    );
    match server.scheduler().budget() {
        Some(b) => {
            let _ = writeln!(out, "  \"budget_bytes_per_sec\": {b:.1},");
        }
        None => out.push_str("  \"budget_bytes_per_sec\": null,\n"),
    }
    let _ = writeln!(
        out,
        "  \"sched\": {{ \"work_conserving\": true, \"drain_admitted\": {} }},",
        drain.admitted,
    );
    let _ = writeln!(
        out,
        "  \"totals\": {{ \"accepted\": {}, \"completed\": {}, \"failed\": {}, \
         \"handshake_failures\": {}, \"messages\": {}, \"raw_bytes\": {}, \"reply_wire_bytes\": {} }},",
        totals.accepted,
        totals.completed,
        totals.failed,
        totals.handshake_failures,
        totals.messages,
        totals.raw_bytes,
        totals.reply_wire_bytes,
    );
    let _ = writeln!(
        out,
        "  \"pool\": {{ \"hits\": {}, \"misses\": {}, \"returns\": {}, \"evicted\": {}, \
         \"outstanding\": {}, \"peak_outstanding\": {}, \"idle\": {}, \"max_idle\": {}, \
         \"idle_bytes\": {} }},",
        pool.hits,
        pool.misses,
        pool.returns,
        pool.evicted,
        pool.outstanding,
        pool.peak_outstanding,
        server.pool().idle(),
        server.pool().max_idle(),
        server.pool().idle_bytes(),
    );
    out.push_str("  \"connections\": [\n");
    let conns = server.registry().snapshot();
    for (i, c) in conns.iter().enumerate() {
        let mut levels = String::new();
        let mut first = true;
        for (level, &bps) in c.level_bps.iter().enumerate() {
            if bps > 0.0 {
                let _ = write!(
                    levels,
                    "{}\"{}\": {:.0}",
                    if first { "" } else { ", " },
                    level,
                    bps
                );
                first = false;
            }
        }
        let sep = if i + 1 == conns.len() { "" } else { "," };
        let bucket = buckets.get(&c.id);
        let _ = writeln!(
            out,
            "    {{ \"id\": {}, \"peer\": \"{}\", \"state\": \"{}\", \"streams\": {}, \
             \"messages\": {}, \"raw_bytes\": {}, \"reply_wire_bytes\": {}, \"age_secs\": {:.3}, \
             \"sched_admitted\": {}, \"sched_tier\": \"{}\", \"sched_weight\": {:.2}, \
             \"level_bps\": {{ {} }} }}{}",
            c.id,
            json_escape(&c.peer),
            c.state.name(),
            c.streams,
            c.messages,
            c.raw_bytes,
            c.reply_wire_bytes,
            c.age_secs,
            bucket.map_or(0, |b| b.admitted),
            bucket.map_or(crate::Tier::Bulk, |b| b.tier),
            bucket.map_or(1.0, |b| b.weight),
            levels,
            sep,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{Server, ServerConfig};

    #[test]
    fn metrics_document_has_every_section() {
        let server = Server::new(ServerConfig {
            budget_bytes_per_sec: Some(5e6),
            ..ServerConfig::default()
        })
        .unwrap();
        let id = server.registry().register("127.0.0.1:9\"quote");
        server.registry().activate(id, 2);
        let doc = server.metrics_json();
        for needle in [
            "\"schema\": \"adoc-server-metrics-v1\"",
            "\"budget_bytes_per_sec\": 5000000.0",
            "\"sched\": { \"work_conserving\": true, \"drain_admitted\": 0 }",
            "\"totals\":",
            "\"pool\":",
            "\"peak_outstanding\"",
            "\"evicted\"",
            "\"connections\": [",
            "\"state\": \"active\"",
            "\"sched_tier\": \"bulk\"",
            "\"sched_weight\": 1.00",
            "\\\"quote", // escaping
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn tier_overrides_show_up_in_metrics() {
        use crate::Tier;
        let server = Server::new(ServerConfig {
            budget_bytes_per_sec: Some(1e9),
            tier_overrides: vec![("vip-".into(), Tier::Control)],
            ..ServerConfig::default()
        })
        .unwrap();
        let id = server.registry().register("vip-7");
        let cfg = server.conn_config(id, 1, "vip-7");
        server.registry().activate(id, 1);
        let doc = server.metrics_json();
        assert!(
            doc.contains("\"sched_tier\": \"control\""),
            "tier override missing in:\n{doc}"
        );
        assert!(doc.contains("\"sched_weight\": 4.00"), "{doc}");
        drop(cfg);
    }

    #[test]
    fn unlimited_budget_renders_null() {
        let server = Server::new(ServerConfig::default()).unwrap();
        assert!(server
            .metrics_json()
            .contains("\"budget_bytes_per_sec\": null"));
    }
}
