//! Typed metrics: one [`MetricsDoc`] snapshot describing the whole
//! daemon — registry, scheduler buckets, shared pool, event layer —
//! collected from read-only snapshots (a metrics poll cannot stall
//! admissions or mutate pacing state) and rendered to JSON without
//! serde (the workspace builds offline).
//!
//! Every number in one document is taken against a **single** "now"
//! read once from the server's [`crate::EventClock`]: `uptime_secs`,
//! per-connection ages, and event timestamps can never disagree about
//! what time it is.
//!
//! Current schema (`adoc-server-metrics-v2`, [`MetricsDoc::to_json`]):
//!
//! ```json
//! {
//!   "schema": "adoc-server-metrics-v2",
//!   "uptime_secs": 1.0, "draining": false, "mode": "echo",
//!   "budget_bytes_per_sec": 1000000.0,
//!   "sched": { "work_conserving": true, "drain_admitted": 0,
//!              "total_admitted": 123456, "utilization": 0.87,
//!              "parked_on_throttle": 0 },
//!   "sessions": { "minted": 0, "resumed": 0, "rejected": 0,
//!                 "expired": 0, "parked": 0 },
//!   "events": { "last_seq": 42, "log_len": 42, "log_dropped": 0,
//!               "subscribers_poisoned": 0,
//!               "counts": { "conns_accepted": 1, "conns_admitted": 1,
//!                           "conns_closed": 0, "handshake_failures": 0,
//!                           "messages_served": 1, "sched_waits": 0,
//!                           "sched_wait_secs": 0.0, "refill_epochs": 0,
//!                           "level_changes": 0, "pool_evictions": 0,
//!                           "budget_changes": 0, "drains": 0,
//!                           "reactor_ticks": 0, "worker_jobs": 0,
//!                           "worker_queue_peak": 0,
//!                           "slow_requests": 0 } },
//!   "workers": { "threads": 1, "queued": 0, "in_flight": 0,
//!                "completed": 0, "panics": 0, "queue_peak": 0 },
//!   "latency": { "messages": 1,
//!                "read": { "count": 1, "p50_us": 10, "p90_us": 10,
//!                          "p99_us": 10, "p999_us": 10, "max_us": 10 },
//!                "sched_wait": { … }, "queue_wait": { … },
//!                "codec": { … }, "write": { … }, "total": { … } },
//!   "totals": { "accepted": 1, "completed": 1, "failed": 0,
//!               "handshake_failures": 0, "messages": 1,
//!               "raw_bytes": 1, "reply_wire_bytes": 1 },
//!   "pool": { "hits": 1, "misses": 1, "returns": 1, "evicted": 0,
//!             "outstanding": 0, "peak_outstanding": 2, "idle": 2,
//!             "max_idle": 64, "idle_bytes": 4096 },
//!   "connections": [ { "id": 1, "peer": "…", "state": "active",
//!                      "streams": 1, "messages": 1, "raw_bytes": 1,
//!                      "reply_wire_bytes": 1, "age_secs": 1.0,
//!                      "sched_admitted": 1, "sched_tier": "bulk",
//!                      "sched_weight": 1.0, "sched_boost": 1.0,
//!                      "delay_us": 1200, "delay_state": "normal",
//!                      "level_bounds": [0, 10],
//!                      "level_bps": { "3": 1.0 } } ]
//! }
//! ```
//!
//! `delay_us`/`delay_state` are `null` until the connection's delay
//! estimator completes its first packet group. The deprecated
//! `adoc-server-metrics-v1` rendering has been removed; v2 is the only
//! schema.

use crate::event::{json_escape, EventCounts};
use crate::registry::{ConnId, RegistryTotals};
use crate::sched::{BucketSnapshot, Tier};
use crate::session::SessionStats;
use crate::trace::StageSummaries;
use crate::workers::WorkerStats;
use crate::{ServeMode, Server};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Scheduler section of a metrics document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedMetrics {
    /// The scheduler redistributes unused share (always true for the
    /// fair scheduler; kept for schema stability).
    pub work_conserving: bool,
    /// Bytes admitted through the shared drain bucket.
    pub drain_admitted: u64,
    /// Lifetime wire bytes admitted across every connection and path
    /// (including the unlimited fast path).
    pub total_admitted: u64,
    /// Fraction of the scheduler's granted admission capacity actually
    /// consumed ([`crate::FairScheduler::utilization`]): paced
    /// admissions net of outstanding debt over burst grants plus the
    /// budget integral — exact, pinned ≤ 1.0. `None` when unlimited.
    pub utilization: Option<f64>,
    /// Connections currently parked in the reactor on a throttle
    /// refusal (nonblocking admissions awaiting refill credit).
    pub parked_on_throttle: usize,
}

/// Event-layer section of a metrics document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventsMetrics {
    /// Sequence number of the most recently emitted event.
    pub last_seq: u64,
    /// Events currently retained in the built-in [`crate::EventLog`].
    pub log_len: usize,
    /// Events overwritten out of the ring because it was full.
    pub log_dropped: u64,
    /// Subscribers detached after panicking.
    pub subscribers_poisoned: usize,
    /// Lifetime counts aggregated by the built-in
    /// [`crate::MetricsSubscriber`].
    pub counts: EventCounts,
}

/// Per-stage latency section of a metrics document, aggregated over
/// every traced message since startup (all zeros when the server runs
/// uninstrumented).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyMetrics {
    /// Messages recorded into the server-wide stage histograms.
    pub messages: u64,
    /// Percentile summaries for each pipeline stage.
    pub stages: StageSummaries,
}

/// Shared-pool section of a metrics document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Buffer requests served from the idle list.
    pub hits: u64,
    /// Buffer requests that had to allocate.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Idle buffers released to the allocator (cap pressure).
    pub evicted: u64,
    /// Buffers currently checked out (negative only if returns raced a
    /// stats read).
    pub outstanding: i64,
    /// High-water mark of `outstanding`.
    pub peak_outstanding: i64,
    /// Buffers currently idle in the pool.
    pub idle: usize,
    /// Idle-buffer cap.
    pub max_idle: usize,
    /// Total capacity of idle buffers, in bytes.
    pub idle_bytes: usize,
}

/// One connection's row in a metrics document.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnMetrics {
    /// Registry id.
    pub id: ConnId,
    /// Peer address or transport label.
    pub peer: String,
    /// Lifecycle state name (`"handshaking"`, `"active"`, …).
    pub state: &'static str,
    /// Streams in the connection's group.
    pub streams: usize,
    /// Messages served so far.
    pub messages: u64,
    /// Raw payload bytes received.
    pub raw_bytes: u64,
    /// Wire bytes of replies sent.
    pub reply_wire_bytes: u64,
    /// Seconds since registration (on the document's shared "now").
    pub age_secs: f64,
    /// Wire bytes admitted by the connection's scheduler bucket.
    pub sched_admitted: u64,
    /// Scheduling tier.
    pub sched_tier: Tier,
    /// Effective scheduling weight.
    pub sched_weight: f64,
    /// Delay-driven scheduler weight boost (1.0 = none).
    pub sched_boost: f64,
    /// Latest queueing delay above the path baseline, µs (`None` until
    /// the delay estimator completes a packet group).
    pub delay_us: Option<u64>,
    /// Congestion-state name from the delay estimator (`"normal"`,
    /// `"overuse"`, `"underuse"`).
    pub delay_state: Option<&'static str>,
    /// Registry-steered compression-level bounds.
    pub level_bounds: (u8, u8),
    /// Observed throughput by compression level (index = level), bytes
    /// per second; zero entries are elided when rendered.
    pub level_bps: [f64; 11],
}

/// A complete, typed metrics snapshot (see the module docs for the
/// rendered schema). Collect one with [`MetricsDoc::collect`]; render
/// with [`MetricsDoc::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// Seconds since the server was created.
    pub uptime_secs: f64,
    /// True once a drain has started.
    pub draining: bool,
    /// What the server does with received messages.
    pub mode: ServeMode,
    /// Aggregate wire budget (`None` = unlimited).
    pub budget_bytes_per_sec: Option<f64>,
    /// Scheduler section.
    pub sched: SchedMetrics,
    /// Session-layer section (ticket mints, resumes, rejections, and
    /// the parked gauge).
    pub sessions: SessionStats,
    /// Event-layer section.
    pub events: EventsMetrics,
    /// Codec worker-pool section (all zeros when no reactor runs).
    pub workers: WorkerStats,
    /// Per-stage latency section.
    pub latency: LatencyMetrics,
    /// Registry lifetime totals.
    pub totals: RegistryTotals,
    /// Shared-pool section.
    pub pool: PoolMetrics,
    /// Per-connection rows, sorted by id.
    pub connections: Vec<ConnMetrics>,
}

/// Schema identifier of [`MetricsDoc::to_json`].
pub const SCHEMA_V2: &str = "adoc-server-metrics-v2";

impl MetricsDoc {
    /// Snapshots `server` into a typed document. Reads "now" once from
    /// the server's event clock and derives every age and rate from it.
    pub fn collect(server: &Server) -> MetricsDoc {
        let now = server.events().now();
        let uptime_secs = now.as_secs_f64();
        let totals = server.registry().totals();
        let pool_stats = server.pool().stats();
        let buckets: HashMap<u64, BucketSnapshot> = server
            .scheduler()
            .snapshot()
            .into_iter()
            .map(|b| (b.conn, b))
            .collect();
        let budget = server.scheduler().budget();
        let total_admitted = server.scheduler().total_admitted();
        let utilization = server.scheduler().utilization();
        let connections = server
            .registry()
            .snapshot_at(now)
            .into_iter()
            .map(|c| {
                let bucket = buckets.get(&c.id);
                ConnMetrics {
                    id: c.id,
                    state: c.state.name(),
                    streams: c.streams,
                    messages: c.messages,
                    raw_bytes: c.raw_bytes,
                    reply_wire_bytes: c.reply_wire_bytes,
                    age_secs: c.age_secs,
                    sched_admitted: bucket.map_or(0, |b| b.admitted),
                    sched_tier: bucket.map_or(Tier::Bulk, |b| b.tier),
                    sched_weight: bucket.map_or(1.0, |b| b.weight),
                    sched_boost: bucket.map_or(1.0, |b| b.boost),
                    delay_us: c.delay.map(|d| d.above_baseline_us()),
                    delay_state: c.delay.map(|d| d.state.as_str()),
                    level_bounds: c.level_bounds,
                    level_bps: c.level_bps,
                    peer: c.peer,
                }
            })
            .collect();
        MetricsDoc {
            uptime_secs,
            draining: server.is_draining(),
            mode: server.mode(),
            budget_bytes_per_sec: budget,
            sched: SchedMetrics {
                work_conserving: true,
                drain_admitted: server.scheduler().drain_snapshot().admitted,
                total_admitted,
                utilization,
                parked_on_throttle: server.scheduler().parked(),
            },
            sessions: server.sessions().stats(),
            workers: server.worker_stats(),
            latency: LatencyMetrics {
                messages: server.tracer().messages(),
                stages: server.tracer().global().summaries(),
            },
            events: EventsMetrics {
                last_seq: server.events().last_seq(),
                log_len: server.event_log().len(),
                log_dropped: server.event_log().dropped(),
                subscribers_poisoned: server.events().poisoned(),
                counts: server.event_counts(),
            },
            totals,
            pool: PoolMetrics {
                hits: pool_stats.hits,
                misses: pool_stats.misses,
                returns: pool_stats.returns,
                evicted: pool_stats.evicted,
                outstanding: pool_stats.outstanding,
                peak_outstanding: pool_stats.peak_outstanding,
                idle: server.pool().idle(),
                max_idle: server.pool().max_idle(),
                idle_bytes: server.pool().idle_bytes(),
            },
            connections,
        }
    }

    /// Renders the current (`adoc-server-metrics-v2`) JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{{\n  \"schema\": \"{SCHEMA_V2}\",");
        self.render_header(&mut out);
        let _ = writeln!(
            out,
            "  \"sched\": {{ \"work_conserving\": {}, \"drain_admitted\": {}, \
             \"total_admitted\": {}, \"utilization\": {}, \"parked_on_throttle\": {} }},",
            self.sched.work_conserving,
            self.sched.drain_admitted,
            self.sched.total_admitted,
            match self.sched.utilization {
                Some(u) => format!("{u:.4}"),
                None => "null".into(),
            },
            self.sched.parked_on_throttle,
        );
        let s = &self.sessions;
        let _ = writeln!(
            out,
            "  \"sessions\": {{ \"minted\": {}, \"resumed\": {}, \"rejected\": {}, \
             \"expired\": {}, \"parked\": {} }},",
            s.minted, s.resumed, s.rejected, s.expired, s.parked,
        );
        let c = &self.events.counts;
        let _ = writeln!(
            out,
            "  \"events\": {{ \"last_seq\": {}, \"log_len\": {}, \"log_dropped\": {}, \
             \"subscribers_poisoned\": {},",
            self.events.last_seq,
            self.events.log_len,
            self.events.log_dropped,
            self.events.subscribers_poisoned,
        );
        let _ = writeln!(
            out,
            "    \"counts\": {{ \"conns_accepted\": {}, \"conns_admitted\": {}, \
             \"conns_closed\": {}, \"handshake_failures\": {}, \"messages_served\": {}, \
             \"sched_waits\": {}, \"sched_wait_secs\": {:.6}, \"refill_epochs\": {}, \
             \"level_changes\": {}, \"pool_evictions\": {}, \"budget_changes\": {}, \
             \"drains\": {}, \"reactor_ticks\": {}, \"worker_jobs\": {}, \
             \"worker_queue_peak\": {}, \"slow_requests\": {} }} }},",
            c.conns_accepted,
            c.conns_admitted,
            c.conns_closed,
            c.handshake_failures,
            c.messages_served,
            c.sched_waits,
            c.sched_wait_secs,
            c.refill_epochs,
            c.level_changes,
            c.pool_evictions,
            c.budget_changes,
            c.drains,
            c.reactor_ticks,
            c.worker_jobs,
            c.worker_queue_peak,
            c.slow_requests,
        );
        let w = &self.workers;
        let _ = writeln!(
            out,
            "  \"workers\": {{ \"threads\": {}, \"queued\": {}, \"in_flight\": {}, \
             \"completed\": {}, \"panics\": {}, \"queue_peak\": {} }},",
            w.threads, w.queued, w.in_flight, w.completed, w.panics, w.queue_peak,
        );
        let _ = write!(
            out,
            "  \"latency\": {{ \"messages\": {}, ",
            self.latency.messages
        );
        self.latency.stages.write_json_fields(&mut out);
        out.push_str(" },\n");
        self.render_tail(&mut out);
        out
    }

    /// The uptime/draining/mode/budget lines of the document header.
    fn render_header(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "  \"uptime_secs\": {:.3}, \"draining\": {}, \"mode\": \"{}\",",
            self.uptime_secs,
            self.draining,
            match self.mode {
                ServeMode::Echo => "echo",
                ServeMode::Sink => "sink",
            }
        );
        match self.budget_bytes_per_sec {
            Some(b) => {
                let _ = writeln!(out, "  \"budget_bytes_per_sec\": {b:.1},");
            }
            None => out.push_str("  \"budget_bytes_per_sec\": null,\n"),
        }
    }

    /// The totals/pool/connections sections of the document.
    fn render_tail(&self, out: &mut String) {
        let t = &self.totals;
        let _ = writeln!(
            out,
            "  \"totals\": {{ \"accepted\": {}, \"completed\": {}, \"failed\": {}, \
             \"handshake_failures\": {}, \"messages\": {}, \"raw_bytes\": {}, \"reply_wire_bytes\": {} }},",
            t.accepted,
            t.completed,
            t.failed,
            t.handshake_failures,
            t.messages,
            t.raw_bytes,
            t.reply_wire_bytes,
        );
        let p = &self.pool;
        let _ = writeln!(
            out,
            "  \"pool\": {{ \"hits\": {}, \"misses\": {}, \"returns\": {}, \"evicted\": {}, \
             \"outstanding\": {}, \"peak_outstanding\": {}, \"idle\": {}, \"max_idle\": {}, \
             \"idle_bytes\": {} }},",
            p.hits,
            p.misses,
            p.returns,
            p.evicted,
            p.outstanding,
            p.peak_outstanding,
            p.idle,
            p.max_idle,
            p.idle_bytes,
        );
        out.push_str("  \"connections\": [\n");
        for (i, c) in self.connections.iter().enumerate() {
            let mut levels = String::new();
            let mut first = true;
            for (level, &bps) in c.level_bps.iter().enumerate() {
                if bps > 0.0 {
                    let _ = write!(
                        levels,
                        "{}\"{}\": {:.0}",
                        if first { "" } else { ", " },
                        level,
                        bps
                    );
                    first = false;
                }
            }
            let sep = if i + 1 == self.connections.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{ \"id\": {}, \"peer\": \"{}\", \"state\": \"{}\", \"streams\": {}, \
                 \"messages\": {}, \"raw_bytes\": {}, \"reply_wire_bytes\": {}, \"age_secs\": {:.3}, \
                 \"sched_admitted\": {}, \"sched_tier\": \"{}\", \"sched_weight\": {:.2}, \
                 \"sched_boost\": {:.2}, \"delay_us\": {}, \"delay_state\": {}, \
                 \"level_bounds\": [{}, {}], \"level_bps\": {{ {} }} }}{}",
                c.id,
                json_escape(&c.peer),
                c.state,
                c.streams,
                c.messages,
                c.raw_bytes,
                c.reply_wire_bytes,
                c.age_secs,
                c.sched_admitted,
                c.sched_tier,
                c.sched_weight,
                c.sched_boost,
                match c.delay_us {
                    Some(us) => us.to_string(),
                    None => "null".into(),
                },
                match c.delay_state {
                    Some(s) => format!("\"{s}\""),
                    None => "null".into(),
                },
                c.level_bounds.0,
                c.level_bounds.1,
                levels,
                sep,
            );
        }
        out.push_str("  ]\n}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};

    #[test]
    fn v2_document_has_every_section() {
        let server = Server::new(ServerConfig {
            budget_bytes_per_sec: Some(5e6),
            ..ServerConfig::default()
        })
        .unwrap();
        let id = server.registry().register("127.0.0.1:9\"quote");
        server.registry().activate(id, 2);
        let doc = server.metrics_json();
        for needle in [
            "\"schema\": \"adoc-server-metrics-v2\"",
            "\"budget_bytes_per_sec\": 5000000.0",
            "\"work_conserving\": true",
            "\"drain_admitted\": 0",
            "\"total_admitted\": 0",
            "\"utilization\": 0.0000",
            "\"parked_on_throttle\": 0",
            "\"sessions\": { \"minted\": 0, \"resumed\": 0, \"rejected\": 0, \"expired\": 0, \"parked\": 0 }",
            "\"workers\": { \"threads\": 0, \"queued\": 0, \"in_flight\": 0",
            "\"reactor_ticks\": 0",
            "\"worker_queue_peak\": 0",
            "\"slow_requests\": 0",
            "\"latency\": { \"messages\": 0",
            "\"sched_wait\": { \"count\": 0",
            "\"total\": { \"count\": 0",
            "\"events\":",
            "\"last_seq\":",
            "\"subscribers_poisoned\": 0",
            "\"conns_accepted\": 1",
            "\"totals\":",
            "\"pool\":",
            "\"peak_outstanding\"",
            "\"evicted\"",
            "\"connections\": [",
            "\"state\": \"active\"",
            "\"sched_tier\": \"bulk\"",
            "\"sched_weight\": 1.00",
            "\"sched_boost\": 1.00",
            "\"delay_us\": null",
            "\"delay_state\": null",
            "\"level_bounds\": [0, 10]",
            "\\\"quote", // escaping
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn delay_fields_render_once_the_hub_signals() {
        use adoc::SignalHub;
        use std::sync::Arc;

        let server = Server::new(ServerConfig::default()).unwrap();
        let id = server.registry().register("peer-d");
        server.registry().activate(id, 1);
        let hub = Arc::new(SignalHub::new());
        server.registry().attach_hub(id, hub.clone());
        for i in 0..30u64 {
            hub.record_remote(i * 20_000, i * 20_000 + 500, 1000);
        }
        let stats = adoc::TransferStats::new();
        server.registry().update(id, 1, 1, &stats);
        hub.set_level_bounds(1, 8);
        let doc = server.metrics_json();
        assert!(doc.contains("\"delay_us\": "), "{doc}");
        assert!(!doc.contains("\"delay_state\": null"), "{doc}");
        assert!(doc.contains("\"level_bounds\": [1, 8]"), "{doc}");
    }

    #[test]
    fn typed_doc_and_json_agree() {
        let server = Server::new(ServerConfig {
            budget_bytes_per_sec: Some(1e6),
            ..ServerConfig::default()
        })
        .unwrap();
        let id = server.registry().register("peer-a");
        server.registry().activate(id, 4);
        let doc = MetricsDoc::collect(&server);
        assert_eq!(doc.connections.len(), 1);
        assert_eq!(doc.connections[0].streams, 4);
        assert_eq!(doc.connections[0].peer, "peer-a");
        assert_eq!(doc.budget_bytes_per_sec, Some(1e6));
        assert_eq!(doc.sched.total_admitted, 0);
        assert_eq!(doc.sched.utilization, Some(0.0));
        assert_eq!(doc.events.counts.conns_admitted, 1);
        let json = doc.to_json();
        assert!(json.contains("\"streams\": 4"), "{json}");
    }

    #[test]
    fn tier_overrides_show_up_in_metrics() {
        use crate::Tier;
        let server = Server::new(ServerConfig {
            budget_bytes_per_sec: Some(1e9),
            tier_overrides: vec![("vip-".into(), Tier::Control)],
            ..ServerConfig::default()
        })
        .unwrap();
        let id = server.registry().register("vip-7");
        let cfg = server.conn_config(id, 1, "vip-7");
        server.registry().activate(id, 1);
        let doc = server.metrics_json();
        assert!(
            doc.contains("\"sched_tier\": \"control\""),
            "tier override missing in:\n{doc}"
        );
        assert!(doc.contains("\"sched_weight\": 4.00"), "{doc}");
        drop(cfg);
    }

    #[test]
    fn unlimited_budget_renders_null_budget_and_utilization() {
        let server = Server::new(ServerConfig::default()).unwrap();
        let doc = server.metrics_json();
        assert!(doc.contains("\"budget_bytes_per_sec\": null"));
        assert!(doc.contains("\"utilization\": null"));
        assert_eq!(MetricsDoc::collect(&server).sched.utilization, None);
    }
}
