//! The readiness-driven I/O front end: every v1 connection the TCP
//! daemon accepts is owned by one reactor thread that multiplexes all
//! of their sockets through a [`Poller`], instead of parking one OS
//! thread per connection in blocking reads.
//!
//! ## Shape
//!
//! The accept loop hands raw sockets to [`ReactorHandle::register`];
//! the reactor sniffs the two protocol bytes itself (under the hello
//! timeout, now a reactor timer instead of a socket timeout):
//!
//! * a v1 message header → the connection becomes a resumable state
//!   machine ([`State`]) registered with the poller and served to
//!   completion without ever blocking the reactor;
//! * a v2 group hello → the socket is flipped back to blocking mode
//!   and handed to a dedicated thread running the unchanged
//!   stream-group path (groups are rare, bounded by admission, and
//!   their striped frame scheduling is inherently thread-shaped);
//! * anything else → a handshake failure, exactly as before.
//!
//! Codec work never runs on the reactor thread: frames above level 0
//! are inflated/deflated by the bounded [`WorkerPool`] (one job in
//! flight per connection), so a core count's worth of workers bounds
//! compression CPU no matter how many sockets are registered — the
//! paper's "compression may use spare cycles, never extra capacity"
//! premise applied to the server's concurrency structure.
//!
//! ## Backpressure and fairness
//!
//! All wire throttling goes through the scheduler's non-blocking
//! [`adoc::Throttle::try_acquire_wire`]: a refused admission *parks*
//! the connection — its poller interest drops to [`Interest::NONE`]
//! (level-triggered polling would otherwise spin on the readable
//! socket it must not drain yet) and a reactor timer re-tries at the
//! scheduler's hinted deadline. The scheduler's parked-waker fires the
//! reactor's wake pipe early when refill credit or a budget change
//! makes progress likely, so throttled connections neither spin nor
//! oversleep.
//!
//! ## Drain
//!
//! The drain contract is unchanged from the thread-per-connection
//! front end: a draining server closes connections sitting at a
//! message boundary immediately, lets mid-message connections finish
//! (reads, worker jobs, and reply writes all keep running), and cuts
//! whatever is left as `Failed` once the drain deadline passes. An
//! idle fleet of thousands of connections therefore drains in one
//! sweep instead of thousands of poll-timeout round trips.

use crate::conn::{fnv1a64, sink_ack, DrainState, ServeMode};
use crate::daemon::{handle_group_stream, PendingGroups};
use crate::event::Event;
use crate::poll::{Interest, PollEvent, Poller};
use crate::registry::{ConnId, ConnOutcome};
use crate::trace::StageTimes;
use crate::workers::{default_worker_threads, Job, JobTiming, WorkerPool};
use crate::Server;
use adoc::wire::{
    self, FrameHeader, MsgKind, FRAME_HEADER_LEN, GROUP_MAGIC, MAGIC, MSG_HEADER_LEN,
};
use adoc::{AdocConfig, PooledBuf};
use adoc_codec::ADOC_MAX_LEVEL;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{self, PipeReader, PipeWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token reserved for the reactor's wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// Upper bound on an idle poll sleep: control-plane state the reactor
/// cannot be woken for directly (a drain started over HTTP) is noticed
/// within this window.
const IDLE_POLL: Duration = Duration::from_millis(500);

/// Poll cap while draining or stopping: the drain deadline and the
/// empty-conns exit condition are re-checked at this cadence.
const DRAIN_POLL: Duration = Duration::from_millis(10);

/// Self-pipe waker: any thread (scheduler refills, worker completions,
/// the accept loop) makes the reactor's next `poll` return immediately.
/// The `pending` flag coalesces bursts into at most one pipe byte.
struct Waker {
    tx: Mutex<PipeWriter>,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // EPIPE after the reactor exits is harmless (Rust ignores
            // SIGPIPE); the write is best-effort by design.
            let _ = self.tx.lock().write(&[1]);
        }
    }

    fn clear(&self) {
        self.pending.store(false, Ordering::Release);
    }
}

/// State shared between the reactor thread and its handle.
struct Shared {
    /// Sockets accepted but not yet picked up by the reactor.
    inject: Mutex<Vec<(TcpStream, SocketAddr)>>,
    /// Finished worker jobs waiting for the reactor to resume their
    /// connections. `Err` carries a worker panic or codec failure; the
    /// [`JobTiming`] is the job's queue wait and codec time for the
    /// connection's stage span.
    completions: Mutex<Vec<Completion>>,
    /// Connections currently owned by the reactor plus running group
    /// threads — the daemon's admission-control count.
    live: AtomicUsize,
    stop: AtomicBool,
    waker: Arc<Waker>,
}

/// What a worker job hands back to the state machine.
enum JobDone {
    /// Decompressed inbound frame bytes (appended to the message).
    Inflated(Vec<u8>),
    /// An encoded reply frame (header included). `level` is the level
    /// actually used — 0 when compression did not pay and the worker
    /// fell back to a stored frame (`trip`).
    Deflated {
        level: u8,
        trip: bool,
        frame: Vec<u8>,
    },
}

type JobResult = Result<JobDone, String>;

/// One worker completion routed back to the reactor: `(token, result,
/// timing)`.
type Completion = (u64, JobResult, JobTiming);

/// Which stage owns the span's lap clock on the reactor thread. Worker
/// stages (queue wait, codec) are measured by the worker itself and
/// folded in via [`MsgSpan::absorb_job`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum StageKind {
    /// Reading inbound bytes (header, body, probe, frame payloads).
    Read,
    /// Parked on a refused wire admission.
    SchedWait,
    /// Writing the reply.
    Write,
}

/// Lap clock over one in-flight message: wall time since `mark`
/// accrues to `owner` whenever ownership switches, so park time lands
/// in `sched_us` no matter which stage the refusal interrupted.
/// Created when the first header byte arrives (idle client think-time
/// between messages belongs to no span) and finished at the reply's
/// last byte. Stages deliberately need not sum to `total_us`: handoff
/// slivers (a completion waiting for the next poll) are dropped rather
/// than misattributed.
struct MsgSpan {
    started: Instant,
    mark: Instant,
    owner: StageKind,
    times: StageTimes,
}

impl MsgSpan {
    fn begin() -> MsgSpan {
        let now = Instant::now();
        MsgSpan {
            started: now,
            mark: now,
            owner: StageKind::Read,
            times: StageTimes::default(),
        }
    }

    /// Charges the lap since `mark` to the current owner.
    fn flush(&mut self) {
        let now = Instant::now();
        let us = now.duration_since(self.mark).as_micros() as u64;
        match self.owner {
            StageKind::Read => self.times.read_us += us,
            StageKind::SchedWait => self.times.sched_us += us,
            StageKind::Write => self.times.write_us += us,
        }
        self.mark = now;
    }

    /// Charges the lap to the current owner, then hands the clock to
    /// `to`.
    fn switch(&mut self, to: StageKind) {
        self.flush();
        self.owner = to;
    }

    /// Folds a worker job's self-measured durations in and restarts the
    /// lap at now (the submit-side `flush` already closed the reactor's
    /// lap, so the worker interval is never double-counted).
    fn absorb_job(&mut self, timing: JobTiming) {
        self.times.queue_us += timing.queue.as_micros() as u64;
        self.times.codec_us += timing.codec.as_micros() as u64;
        self.mark = Instant::now();
    }

    /// Closes the span: final lap charged, total stamped.
    fn finish(mut self) -> StageTimes {
        self.flush();
        self.times.total_us = self.started.elapsed().as_micros() as u64;
        self.times
    }
}

/// The handle the daemon owns: socket injection, the admission gauge,
/// and shutdown.
pub struct ReactorHandle {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("live", &self.live())
            .finish()
    }
}

impl ReactorHandle {
    /// Hands an accepted socket to the reactor. Counted in
    /// [`ReactorHandle::live`] immediately, so the accept loop's
    /// admission check has no injection-queue blind spot.
    pub fn register(&self, stream: TcpStream, peer: SocketAddr) {
        self.shared.live.fetch_add(1, Ordering::Relaxed);
        self.shared.inject.lock().push((stream, peer));
        self.shared.waker.wake();
    }

    /// Connections owned by the reactor (sniffing, serving, or running
    /// as group threads it spawned).
    pub fn live(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// A second, thread-less handle on the same reactor (for the
    /// accept loop; the owner keeps the joinable one).
    pub fn injector(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
            thread: None,
        }
    }

    /// Stops the reactor once every connection has closed (the caller
    /// starts the server drain first; the drain deadline bounds the
    /// wait) and joins its thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.waker.wake();
        if let Some(t) = self.thread.take() {
            if t.join().is_err() {
                return Err(io::Error::other("reactor thread panicked"));
            }
        }
        Ok(())
    }
}

/// Resumable per-connection protocol position. Cursor fields live in
/// the variants; bulk buffers live on [`Conn`].
enum State {
    /// Reading the two protocol-sniff bytes (pre-registry).
    Sniff { got: usize },
    /// Reading a 10-byte message header; `got == 0` is the message
    /// boundary the drain logic keys on.
    ReadHeader { got: usize },
    /// Reading a direct message body straight into `msg`.
    ReadDirect { credit: usize },
    /// Reading an adaptive message's 4-byte probe-length prefix.
    ReadProbeLen { got: usize },
    /// Reading the raw probe bytes into `msg[..end]`.
    ReadProbe { end: usize, credit: usize },
    /// Reading a 9-byte frame header.
    ReadFrameHeader { got: usize },
    /// Parked: the frame payload's wire admission was refused.
    AwaitPayloadBudget { hdr: FrameHeader },
    /// Reading one frame's payload.
    ReadFramePayload {
        hdr: FrameHeader,
        payload: PooledBuf,
        got: usize,
    },
    /// A decompression job is in flight; the completion resumes us.
    Inflate,
    /// Writing the reply.
    Reply(Reply),
    /// A compression job for the next reply frame is in flight.
    Deflate(Reply),
    /// Transient placeholder while an arm owns the state.
    Taken,
}

/// Progress of one reply message.
struct Reply {
    /// Message header (plus the zero probe-length prefix when
    /// adaptive).
    head: Vec<u8>,
    head_pos: usize,
    body: ReplyBody,
    /// Offset into `msg` of the next chunk to encode (adaptive echo).
    next_chunk: usize,
    /// The encoded frame currently being written, if any.
    frame: Option<(Vec<u8>, usize)>,
    /// Wire admission for the current frame/body already granted.
    charged: bool,
    /// The current frame's write saw backpressure (drives the level
    /// controller).
    blocked: bool,
    /// Total bytes put on the wire for this reply.
    wire: u64,
    /// Raw bytes of the reply (echo: the message length; sink: 16).
    raw: u64,
}

enum ReplyBody {
    /// Echo the message raw after the header.
    Direct { pos: usize, credit: usize },
    /// 16-byte sink acknowledgement.
    Ack { buf: [u8; 16], pos: usize },
    /// Chunked adaptive frames built from `msg`.
    Adaptive,
}

/// One reactor-owned connection.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    token: u64,
    /// Registry id once the sniff proves this is a v1 connection.
    id: Option<ConnId>,
    /// Per-connection config (scheduler throttle chained) — present
    /// exactly when `id` is.
    cfg: Option<AdocConfig>,
    state: State,
    /// Interest currently installed in the poller.
    interest: Interest,
    /// Header/prefix scratch (message header, probe length, frame
    /// header all fit).
    hdr: [u8; MSG_HEADER_LEN],
    /// Raw length of the in-flight inbound message.
    raw_len: u64,
    /// Inbound message bytes assembled so far (`msg[..filled]` valid;
    /// the buffer is pre-sized to `raw_len`).
    msg: Option<PooledBuf>,
    filled: usize,
    /// Send-path statistics (the reply side), mirrored into the
    /// registry after every message like the blocking serve loop.
    stats: adoc::TransferStats,
    last_level: Option<u8>,
    /// Reply-side compression level controller: climbs on write
    /// backpressure, decays toward `min_level` when the socket keeps
    /// up — the paper's adaptation signal, driven by readiness instead
    /// of a blocked `write`.
    out_level: u8,
    /// Generation of this connection's live timer; stale heap entries
    /// are skipped on pop.
    timer_gen: u64,
    /// Stage span of the in-flight message (present between the first
    /// header byte and the reply's last byte, on traced servers).
    span: Option<MsgSpan>,
}

impl Conn {
    fn at_boundary(&self) -> bool {
        matches!(self.state, State::ReadHeader { got: 0 })
    }

    fn cfg(&self) -> &AdocConfig {
        self.cfg
            .as_ref()
            .expect("registered connection has a config")
    }
}

/// How a connection leaves the reactor.
enum CloseKind {
    /// Clean: counted `Completed` if registered.
    Clean,
    /// Protocol/io/worker failure: counted `Failed` if registered.
    Failed,
    /// Pre-registration failure (bad magic, hello timeout, EOF during
    /// sniff): a handshake-failure count, like the blocking sniffer.
    Handshake,
}

/// What driving a connection's state machine produced.
enum Flow {
    /// Still alive; install this poller interest and wait.
    Keep(Interest),
    Close(CloseKind),
    /// Sniffed a v2 group hello: hand the socket to a blocking thread.
    Handoff,
}

enum ReadStep {
    Data(usize),
    Eof,
    Block,
    Fail,
}

fn read_step(stream: &mut TcpStream, buf: &mut [u8]) -> ReadStep {
    if buf.is_empty() {
        return ReadStep::Data(0);
    }
    match stream.read(buf) {
        Ok(0) => ReadStep::Eof,
        Ok(n) => ReadStep::Data(n),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReadStep::Block,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => ReadStep::Data(0),
        Err(_) => ReadStep::Fail,
    }
}

enum WriteStep {
    Data(usize),
    Block,
    Fail,
}

fn write_step(stream: &mut TcpStream, buf: &[u8]) -> WriteStep {
    match stream.write(buf) {
        Ok(0) => WriteStep::Fail,
        Ok(n) => WriteStep::Data(n),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => WriteStep::Block,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => WriteStep::Data(0),
        Err(_) => WriteStep::Fail,
    }
}

/// The reactor itself. [`Reactor::spawn`] runs it on a named thread
/// behind a [`ReactorHandle`]; tests drive [`Reactor::run_once`]
/// directly for deterministic single-step control.
pub struct Reactor {
    server: Arc<Server>,
    pending: Arc<PendingGroups>,
    poller: Poller,
    wake_rx: PipeReader,
    shared: Arc<Shared>,
    pool: WorkerPool<JobResult>,
    conns: HashMap<u64, Conn>,
    /// `(deadline, token, timer_gen)` min-heap; entries whose gen no
    /// longer matches the connection are skipped (lazy deletion).
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    /// Tokens parked on a throttle refusal — all retried when the
    /// scheduler's waker fires.
    throttled: HashSet<u64>,
    group_threads: Vec<JoinHandle<()>>,
    events: Vec<PollEvent>,
    drain: Arc<DrainState>,
    next_token: u64,
    /// Stage spans are recorded only on instrumented servers, so the
    /// bare bench configuration pays nothing for the latency layer.
    traced: bool,
    /// [`crate::ServerConfig::slow_request_threshold`] in microseconds.
    slow_us: u64,
}

impl Reactor {
    /// Builds a reactor for `server` without starting a thread.
    pub fn new(server: Arc<Server>, pending: Arc<PendingGroups>) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        let (wake_rx, wake_tx) = io::pipe()?;
        poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
        let waker = Arc::new(Waker {
            tx: Mutex::new(wake_tx),
            pending: AtomicBool::new(false),
        });
        let shared = Arc::new(Shared {
            inject: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            waker: Arc::clone(&waker),
        });
        // Parked connections are re-tried as soon as refill credit or a
        // budget change lands, not only at their hinted retry deadline.
        let sched_waker = Arc::clone(&waker);
        server
            .scheduler()
            .set_parked_waker(Arc::new(move || sched_waker.wake()));
        let completion_shared = Arc::clone(&shared);
        let pool = WorkerPool::new(
            default_worker_threads(),
            Arc::clone(server.worker_gauges()),
            server.events_shared(),
            move |conn, result, timing| {
                // Flatten the pool's panic channel into the job's own
                // error channel: both close the connection the same way.
                let flat = match result {
                    Ok(inner) => inner,
                    Err(panic) => Err(panic),
                };
                completion_shared
                    .completions
                    .lock()
                    .push((conn, flat, timing));
                completion_shared.waker.wake();
            },
        );
        let drain = server.drain_state();
        let traced = server.config().instrument;
        let slow_us = server.config().slow_request_threshold.as_micros() as u64;
        Ok(Reactor {
            traced,
            slow_us,
            server,
            pending,
            poller,
            wake_rx,
            shared,
            pool,
            conns: HashMap::new(),
            timers: BinaryHeap::new(),
            throttled: HashSet::new(),
            group_threads: Vec::new(),
            events: Vec::new(),
            drain,
            next_token: 1,
        })
    }

    /// Spawns the reactor loop on a dedicated thread.
    pub fn spawn(server: Arc<Server>, pending: Arc<PendingGroups>) -> io::Result<ReactorHandle> {
        let mut reactor = Reactor::new(server, pending)?;
        let shared = Arc::clone(&reactor.shared);
        let thread = std::thread::Builder::new()
            .name("adoc-reactor".into())
            .spawn(move || reactor.run())?;
        Ok(ReactorHandle {
            shared,
            thread: Some(thread),
        })
    }

    /// An injection/shutdown handle for a reactor driven manually with
    /// [`Reactor::run_once`] (tests).
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
            thread: None,
        }
    }

    /// Connections currently owned (including group threads).
    pub fn live(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Runs until stopped and empty.
    pub fn run(&mut self) {
        loop {
            if self.shared.stop.load(Ordering::Relaxed)
                && self.conns.is_empty()
                && self.group_threads.is_empty()
            {
                break;
            }
            self.run_once(self.poll_timeout());
        }
    }

    fn poll_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut timeout = self
            .timers
            .peek()
            .map(|Reverse((deadline, _, _))| deadline.saturating_duration_since(now));
        let cap = if self.drain.is_draining() || self.shared.stop.load(Ordering::Relaxed) {
            DRAIN_POLL
        } else {
            IDLE_POLL
        };
        timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
        timeout
    }

    /// One poll-dispatch cycle; returns how many units of work
    /// (readiness events, injections, completions, fired timers) were
    /// dispatched. A parked or idle fleet produces ticks that return 0
    /// and emit nothing.
    pub fn run_once(&mut self, timeout: Option<Duration>) -> usize {
        let mut events = std::mem::take(&mut self.events);
        let n = self.poller.wait(&mut events, timeout);
        let mut work = 0usize;
        let mut woken = false;
        if n.is_ok() {
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    woken = true;
                    // Drain the pipe BEFORE clearing the pending flag:
                    // wake() only writes on a false→true transition, so
                    // while `pending` is still true no new byte can
                    // land, and this read can never consume a byte
                    // whose wake() skipped the write. (Clearing first
                    // opens exactly that race — a wake between the
                    // clear and the read leaves pending=true with an
                    // empty pipe, permanently wedging the waker.) A
                    // wake landing after the clear writes its own byte,
                    // which the next poll observes.
                    let mut drain_buf = [0u8; 64];
                    let _ = self.wake_rx.read(&mut drain_buf);
                    self.shared.waker.clear();
                } else {
                    work += 1;
                }
            }
            // Readiness dispatch happens after the wake-pipe drain so a
            // completion queued during dispatch still wakes the next
            // poll.
            let ready: Vec<PollEvent> = events
                .iter()
                .filter(|ev| ev.token != WAKE_TOKEN)
                .copied()
                .collect();
            for ev in ready {
                if ev.error && !ev.readable && !ev.writable {
                    // ERR/HUP is reported regardless of the interest
                    // mask. With no readiness the state machine can act
                    // on (a parked or worker-waiting connection holds
                    // Interest::NONE), dispatching would just re-refuse
                    // admission against a dead peer on every poll — a
                    // 100% CPU loop growing the timer heap. The peer is
                    // gone; close directly.
                    if let Some(conn) = self.conns.remove(&ev.token) {
                        let kind = if conn.id.is_some() {
                            CloseKind::Failed
                        } else {
                            CloseKind::Handshake
                        };
                        self.close(conn, kind);
                    }
                } else {
                    self.dispatch(ev.token);
                }
            }
        }
        self.events = events;
        work += self.process_injections();
        work += self.process_completions();
        work += self.fire_timers();
        if woken {
            // The scheduler's waker cannot name a connection; retry the
            // whole parked set (admission checks are cheap).
            let parked: Vec<u64> = self.throttled.iter().copied().collect();
            for token in parked {
                self.dispatch(token);
            }
        }
        self.sweep_drain();
        self.reap_group_threads();
        if work > 0 && self.server.events().is_active() {
            self.server.events().emit(Event::ReactorTick {
                ready: work,
                parked: self.server.scheduler().parked(),
            });
        }
        work
    }

    fn process_injections(&mut self) -> usize {
        let injected: Vec<(TcpStream, SocketAddr)> =
            std::mem::take(&mut *self.shared.inject.lock());
        let n = injected.len();
        for (stream, peer) in injected {
            self.admit(stream, peer);
        }
        n
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) {
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            self.server.registry().count_handshake_failure();
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.server.registry().count_handshake_failure();
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let hello_timeout = self.server.config().adoc.hello_timeout;
        let mut conn = Conn {
            stream,
            peer,
            token,
            id: None,
            cfg: None,
            state: State::Sniff { got: 0 },
            interest: Interest::READ,
            hdr: [0u8; MSG_HEADER_LEN],
            raw_len: 0,
            msg: None,
            filled: 0,
            stats: adoc::TransferStats::new(),
            last_level: None,
            out_level: 0,
            timer_gen: 0,
            span: None,
        };
        self.arm_timer(&mut conn, hello_timeout);
        self.conns.insert(token, conn);
        // The client may have sent its first bytes already; serve them
        // this tick instead of waiting for the next poll.
        self.dispatch(token);
    }

    fn process_completions(&mut self) -> usize {
        let done: Vec<(u64, Result<JobDone, String>, JobTiming)> =
            std::mem::take(&mut *self.shared.completions.lock());
        let n = done.len();
        for (token, result, timing) in done {
            self.complete(token, result, timing);
        }
        n
    }

    fn fire_timers(&mut self) -> usize {
        let now = Instant::now();
        let mut fired = 0usize;
        while let Some(&Reverse((deadline, token, gen))) = self.timers.peek() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            let live_gen = match self.conns.get(&token) {
                Some(conn) => conn.timer_gen,
                None => continue,
            };
            if live_gen != gen {
                continue; // stale: the connection moved on
            }
            fired += 1;
            if matches!(
                self.conns.get(&token).map(|c| &c.state),
                Some(State::Sniff { .. })
            ) {
                // Hello timeout: the peer never finished its first two
                // bytes.
                if let Some(conn) = self.conns.remove(&token) {
                    self.close(conn, CloseKind::Handshake);
                }
            } else {
                // Throttle retry (or a stale hello timer on an active
                // connection, where dispatch is a harmless no-op).
                self.dispatch(token);
            }
        }
        fired
    }

    /// Closes everything the drain rules say must go this tick.
    fn sweep_drain(&mut self) {
        if !self.drain.is_draining() {
            return;
        }
        let cut_stalled = self.drain.deadline_passed();
        let doomed: Vec<(u64, CloseKind)> = self
            .conns
            .iter()
            .filter_map(|(&token, conn)| {
                if matches!(conn.state, State::Sniff { .. }) {
                    Some((token, CloseKind::Handshake))
                } else if conn.at_boundary() {
                    Some((token, CloseKind::Clean))
                } else if cut_stalled {
                    Some((token, CloseKind::Failed))
                } else {
                    None
                }
            })
            .collect();
        for (token, kind) in doomed {
            if let Some(conn) = self.conns.remove(&token) {
                self.close(conn, kind);
            }
        }
    }

    fn reap_group_threads(&mut self) {
        let mut i = 0;
        while i < self.group_threads.len() {
            if self.group_threads[i].is_finished() {
                if self.group_threads.swap_remove(i).join().is_err() {
                    eprintln!("adoc-server: a group serving thread panicked");
                }
            } else {
                i += 1;
            }
        }
    }

    /// Runs `token`'s state machine until it blocks, parks, queues a
    /// job, or closes.
    fn dispatch(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        // A parked connection being retried leaves the set; a refused
        // admission below re-inserts it.
        self.throttled.remove(&token);
        match self.drive(&mut conn) {
            Flow::Keep(interest) => {
                if interest != conn.interest
                    && self
                        .poller
                        .modify(conn.stream.as_raw_fd(), token, interest)
                        .is_ok()
                {
                    conn.interest = interest;
                }
                self.conns.insert(token, conn);
            }
            Flow::Close(kind) => self.close(conn, kind),
            Flow::Handoff => self.handoff(conn),
        }
    }

    /// Resumes a connection with its worker-job result.
    fn complete(&mut self, token: u64, result: Result<JobDone, String>, timing: JobTiming) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // closed while the job ran (drain cut, peer reset)
        };
        if let Some(span) = conn.span.as_mut() {
            span.absorb_job(timing);
        }
        let done = match result {
            Ok(done) => done,
            Err(msg) => {
                // The typed worker-failure path: a panicked or failed
                // codec job closes exactly this connection.
                self.server.events().emit(Event::ConnError {
                    conn: conn.id,
                    error: &format!("codec worker: {msg}"),
                });
                self.close(conn, CloseKind::Failed);
                return;
            }
        };
        let next: Result<(), String> =
            match (std::mem::replace(&mut conn.state, State::Taken), done) {
                (State::Inflate, JobDone::Inflated(bytes)) => {
                    let msg = conn.msg.as_mut().expect("inflating implies a message");
                    msg[conn.filled..conn.filled + bytes.len()].copy_from_slice(&bytes);
                    conn.filled += bytes.len();
                    if conn.filled as u64 == conn.raw_len {
                        if let Err(kind) = self.start_reply(&mut conn) {
                            self.close(conn, kind);
                            return;
                        }
                    } else {
                        conn.state = State::ReadFrameHeader { got: 0 };
                    }
                    Ok(())
                }
                (State::Deflate(mut reply), JobDone::Deflated { level, trip, frame }) => {
                    conn.stats.record_buffer(level);
                    if trip {
                        conn.stats.ratio_trips += 1;
                    }
                    reply.frame = Some((frame, 0));
                    reply.charged = false;
                    reply.blocked = false;
                    conn.state = State::Reply(reply);
                    Ok(())
                }
                _ => Err("worker completion arrived in an impossible state".to_string()),
            };
        match next {
            Ok(()) => {
                self.conns.insert(token, conn);
                self.dispatch(token);
            }
            Err(msg) => {
                self.server.events().emit(Event::ConnError {
                    conn: conn.id,
                    error: &msg,
                });
                self.close(conn, CloseKind::Failed);
            }
        }
    }

    fn arm_timer(&mut self, conn: &mut Conn, after: Duration) {
        conn.timer_gen += 1;
        self.timers.push(Reverse((
            Instant::now() + after,
            conn.token,
            conn.timer_gen,
        )));
    }

    /// Admission helper: `true` = admitted (the span's lap clock goes
    /// to `stage`), `false` = parked (timer armed, the lap clock goes
    /// to sched-wait, caller returns `Keep(NONE)`).
    fn try_admit(&mut self, conn: &mut Conn, bytes: usize, stage: StageKind) -> bool {
        match conn.cfg().throttle.try_acquire_wire(bytes) {
            Ok(()) => {
                if let Some(span) = conn.span.as_mut() {
                    span.switch(stage);
                }
                true
            }
            Err(retry) => {
                if let Some(span) = conn.span.as_mut() {
                    span.switch(StageKind::SchedWait);
                }
                self.throttled.insert(conn.token);
                self.arm_timer(conn, retry);
                false
            }
        }
    }

    fn close(&mut self, conn: Conn, kind: CloseKind) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.throttled.remove(&conn.token);
        if let Some(id) = conn.id {
            self.server.tracer().deregister(id);
        }
        match (conn.id, kind) {
            (Some(id), CloseKind::Clean) => {
                self.server.registry().remove(id, ConnOutcome::Completed)
            }
            (Some(id), _) => self.server.registry().remove(id, ConnOutcome::Failed),
            (None, CloseKind::Clean) => {}
            (None, _) => self.server.registry().count_handshake_failure(),
        }
        self.shared.live.fetch_sub(1, Ordering::Relaxed);
        // Dropping the conn drops its config, whose scheduler throttle
        // deregisters the bucket.
    }

    /// Flips a group-hello socket back to blocking and serves it on a
    /// dedicated thread via the unchanged stream-group path.
    fn handoff(&mut self, conn: Conn) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let sniff = [conn.hdr[0], conn.hdr[1]];
        let Conn { stream, peer, .. } = conn;
        let hello_timeout = self.server.config().adoc.hello_timeout;
        if stream.set_nonblocking(false).is_err()
            || stream.set_read_timeout(Some(hello_timeout)).is_err()
        {
            self.server.registry().count_handshake_failure();
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let server = Arc::clone(&self.server);
        let pending = Arc::clone(&self.pending);
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name(format!("adoc-conn-{peer}"))
            .spawn(move || {
                handle_group_stream(server, pending, stream, peer, sniff, hello_timeout);
                shared.live.fetch_sub(1, Ordering::Relaxed);
                shared.waker.wake();
            });
        match spawned {
            Ok(handle) => self.group_threads.push(handle),
            Err(e) => {
                eprintln!("adoc-server: cannot spawn group serving thread: {e}");
                self.server.registry().count_handshake_failure();
                self.shared.live.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// The state machine. Loops until the connection blocks on the
    /// socket, parks on the throttle, queues a worker job, or closes.
    fn drive(&mut self, conn: &mut Conn) -> Flow {
        loop {
            match std::mem::replace(&mut conn.state, State::Taken) {
                State::Sniff { mut got } => {
                    match read_step(&mut conn.stream, &mut conn.hdr[got..2]) {
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Handshake),
                        ReadStep::Block => {
                            conn.state = State::Sniff { got };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            got += n;
                            if got < 2 {
                                conn.state = State::Sniff { got };
                                continue;
                            }
                        }
                    }
                    if conn.hdr[0] != MAGIC {
                        return Flow::Close(CloseKind::Handshake);
                    }
                    if conn.hdr[1] == GROUP_MAGIC {
                        return Flow::Handoff;
                    }
                    if conn.hdr[1] > 1 {
                        return Flow::Close(CloseKind::Handshake);
                    }
                    if self.server.config().require_auth {
                        // A v1 connection has no credential to present:
                        // refused pre-admission, exactly like a
                        // plaintext group hello.
                        self.server.sessions().count_rejected();
                        self.server.events().emit(Event::TicketRejected {
                            session_id: None,
                            reason: "auth",
                        });
                        return Flow::Close(CloseKind::Handshake);
                    }
                    // A v1 message header begins: register the
                    // connection and resume header parsing with the two
                    // sniffed bytes already in place.
                    let peer_label = conn.peer.to_string();
                    let id = self.server.registry().register(peer_label.clone());
                    let cfg = self.server.conn_config(id, 1, &peer_label);
                    self.server.registry().activate(id, 1);
                    conn.out_level = cfg.min_level;
                    conn.id = Some(id);
                    conn.cfg = Some(cfg);
                    if self.traced {
                        // A live, registered connection answers
                        // GET /trace (empty ring) before its first
                        // message completes.
                        self.server.tracer().register(id);
                        conn.span = Some(MsgSpan::begin());
                    }
                    conn.state = State::ReadHeader { got: 2 };
                }
                State::ReadHeader { mut got } => {
                    if got == 0 && self.drain.is_draining() {
                        // At a boundary: a draining server takes no
                        // further messages.
                        return Flow::Close(CloseKind::Clean);
                    }
                    match read_step(&mut conn.stream, &mut conn.hdr[got..MSG_HEADER_LEN]) {
                        ReadStep::Eof if got == 0 => return Flow::Close(CloseKind::Clean),
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Failed),
                        ReadStep::Block => {
                            conn.state = State::ReadHeader { got };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            if got == 0 && n > 0 && self.traced && conn.span.is_none() {
                                // First header byte of a new message:
                                // the span starts here, so client idle
                                // time between messages is excluded.
                                conn.span = Some(MsgSpan::begin());
                            }
                            got += n;
                            if got < MSG_HEADER_LEN {
                                conn.state = State::ReadHeader { got };
                                continue;
                            }
                        }
                    }
                    let parsed = wire::read_msg_header(&mut &conn.hdr[..]);
                    let (kind, raw_len) = match parsed {
                        Ok(Some(h)) => h,
                        _ => return Flow::Close(CloseKind::Failed),
                    };
                    if raw_len > conn.cfg().max_message {
                        return Flow::Close(CloseKind::Failed);
                    }
                    if raw_len == 0 {
                        // A zero-byte message (of either kind) is a
                        // client-initiated close, like the blocking
                        // serve loop.
                        return Flow::Close(CloseKind::Clean);
                    }
                    conn.raw_len = raw_len;
                    conn.filled = 0;
                    let mut msg = conn.cfg().pool.get(raw_len as usize);
                    msg.resize(raw_len as usize, 0);
                    conn.msg = Some(msg);
                    conn.state = match kind {
                        MsgKind::Direct => State::ReadDirect { credit: 0 },
                        MsgKind::Adaptive => State::ReadProbeLen { got: 0 },
                    };
                }
                State::ReadDirect { mut credit } => {
                    let remaining = conn.raw_len as usize - conn.filled;
                    if credit == 0 {
                        // Inbound pacing in the blocking receiver's
                        // quanta: a buffer_size's worth at a time.
                        let quantum = remaining.min(conn.cfg().buffer_size);
                        if !self.try_admit(conn, quantum, StageKind::Read) {
                            conn.state = State::ReadDirect { credit };
                            return Flow::Keep(Interest::NONE);
                        }
                        credit = quantum;
                    }
                    let msg = conn.msg.as_mut().expect("direct read has a message");
                    let end = conn.filled + credit.min(remaining);
                    match read_step(&mut conn.stream, &mut msg[conn.filled..end]) {
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Failed),
                        ReadStep::Block => {
                            conn.state = State::ReadDirect { credit };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            conn.filled += n;
                            credit -= n;
                        }
                    }
                    if conn.filled as u64 == conn.raw_len {
                        if let Err(kind) = self.start_reply(conn) {
                            return Flow::Close(kind);
                        }
                    } else {
                        conn.state = State::ReadDirect { credit };
                    }
                }
                State::ReadProbeLen { mut got } => {
                    match read_step(&mut conn.stream, &mut conn.hdr[got..4]) {
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Failed),
                        ReadStep::Block => {
                            conn.state = State::ReadProbeLen { got };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            got += n;
                            if got < 4 {
                                conn.state = State::ReadProbeLen { got };
                                continue;
                            }
                        }
                    }
                    let probe_len =
                        u32::from_le_bytes(conn.hdr[..4].try_into().expect("4 bytes")) as u64;
                    if probe_len > conn.raw_len {
                        return Flow::Close(CloseKind::Failed);
                    }
                    if probe_len == 0 {
                        conn.state = match self.after_inbound_bytes(conn) {
                            Ok(state) => state,
                            Err(kind) => return Flow::Close(kind),
                        };
                    } else {
                        conn.state = State::ReadProbe {
                            end: probe_len as usize,
                            credit: 0,
                        };
                    }
                }
                State::ReadProbe { end, mut credit } => {
                    if credit == 0 {
                        let quantum = (end - conn.filled).min(conn.cfg().packet_size);
                        if !self.try_admit(conn, quantum, StageKind::Read) {
                            conn.state = State::ReadProbe { end, credit };
                            return Flow::Keep(Interest::NONE);
                        }
                        credit = quantum;
                    }
                    let msg = conn.msg.as_mut().expect("probe read has a message");
                    let upto = (conn.filled + credit).min(end);
                    match read_step(&mut conn.stream, &mut msg[conn.filled..upto]) {
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Failed),
                        ReadStep::Block => {
                            conn.state = State::ReadProbe { end, credit };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            conn.filled += n;
                            credit -= n;
                        }
                    }
                    conn.state = if conn.filled == end {
                        match self.after_inbound_bytes(conn) {
                            Ok(state) => state,
                            Err(kind) => return Flow::Close(kind),
                        }
                    } else {
                        State::ReadProbe { end, credit }
                    };
                    if matches!(conn.state, State::Reply(_)) {
                        continue;
                    }
                }
                State::ReadFrameHeader { mut got } => {
                    match read_step(&mut conn.stream, &mut conn.hdr[got..FRAME_HEADER_LEN]) {
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Failed),
                        ReadStep::Block => {
                            conn.state = State::ReadFrameHeader { got };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            got += n;
                            if got < FRAME_HEADER_LEN {
                                conn.state = State::ReadFrameHeader { got };
                                continue;
                            }
                        }
                    }
                    let hdr =
                        match FrameHeader::read(&mut &conn.hdr[..FRAME_HEADER_LEN], ADOC_MAX_LEVEL)
                        {
                            Ok(h) => h,
                            Err(_) => return Flow::Close(CloseKind::Failed),
                        };
                    // The blocking receiver's sanity bound, verbatim.
                    let cap = 2 * u64::from(hdr.raw_len).max(conn.cfg().buffer_size as u64) + 1024;
                    if u64::from(hdr.payload_len) > cap {
                        return Flow::Close(CloseKind::Failed);
                    }
                    if conn.filled as u64 + u64::from(hdr.raw_len) > conn.raw_len {
                        return Flow::Close(CloseKind::Failed);
                    }
                    conn.state = State::AwaitPayloadBudget { hdr };
                }
                State::AwaitPayloadBudget { hdr } => {
                    // Wire admission covers the payload, as in the
                    // blocking receiver; parking here is what lets a
                    // throttled connection sleep instead of spin.
                    if !self.try_admit(conn, hdr.payload_len as usize, StageKind::Read) {
                        conn.state = State::AwaitPayloadBudget { hdr };
                        return Flow::Keep(Interest::NONE);
                    }
                    let payload = conn.cfg().pool.get(hdr.payload_len as usize);
                    conn.state = State::ReadFramePayload {
                        hdr,
                        payload,
                        got: 0,
                    };
                }
                State::ReadFramePayload {
                    hdr,
                    mut payload,
                    mut got,
                } => {
                    payload.resize(hdr.payload_len as usize, 0);
                    match read_step(&mut conn.stream, &mut payload[got..]) {
                        ReadStep::Eof | ReadStep::Fail => return Flow::Close(CloseKind::Failed),
                        ReadStep::Block => {
                            conn.state = State::ReadFramePayload { hdr, payload, got };
                            return Flow::Keep(Interest::READ);
                        }
                        ReadStep::Data(n) => {
                            got += n;
                            if got < hdr.payload_len as usize {
                                conn.state = State::ReadFramePayload { hdr, payload, got };
                                continue;
                            }
                        }
                    }
                    if hdr.level == 0 {
                        // Stored frame: the payload is the raw bytes.
                        let msg = conn.msg.as_mut().expect("frame read has a message");
                        msg[conn.filled..conn.filled + payload.len()].copy_from_slice(&payload);
                        conn.filled += payload.len();
                        conn.state = match self.after_inbound_bytes(conn) {
                            Ok(state) => state,
                            Err(kind) => return Flow::Close(kind),
                        };
                        if matches!(conn.state, State::Reply(_)) {
                            continue;
                        }
                    } else {
                        // Decompression is codec work: off the reactor.
                        let level = hdr.level;
                        let raw_len = hdr.raw_len as usize;
                        let input = std::mem::take(&mut *payload);
                        if let Some(span) = conn.span.as_mut() {
                            // Close the read lap; the worker measures
                            // its own queue/codec interval.
                            span.flush();
                        }
                        self.pool.submit(Job {
                            conn: conn.token,
                            work: Box::new(move |_codec| {
                                let mut out = Vec::with_capacity(raw_len);
                                adoc_codec::decompress_at(level, &input, raw_len, &mut out)
                                    .map_err(|e| e.to_string())?;
                                Ok(JobDone::Inflated(out))
                            }),
                        });
                        conn.state = State::Inflate;
                        return Flow::Keep(Interest::NONE);
                    }
                }
                State::Inflate => {
                    // Waiting on the worker; the completion resumes us.
                    conn.state = State::Inflate;
                    return Flow::Keep(Interest::NONE);
                }
                State::Reply(reply) => match self.drive_reply(conn, reply) {
                    ReplyFlow::Wait(state, interest) => {
                        conn.state = state;
                        return Flow::Keep(interest);
                    }
                    ReplyFlow::Close(kind) => return Flow::Close(kind),
                },
                State::Deflate(reply) => {
                    conn.state = State::Deflate(reply);
                    return Flow::Keep(Interest::NONE);
                }
                State::Taken => unreachable!("state taken re-entrantly"),
            }
        }
    }

    /// After probe/frame bytes landed: more frames, or a finished
    /// message (start the reply). `Err` propagates `start_reply`'s
    /// close verdict to the caller instead of inventing a state.
    fn after_inbound_bytes(&mut self, conn: &mut Conn) -> Result<State, CloseKind> {
        if conn.filled as u64 == conn.raw_len {
            self.start_reply(conn)?;
            Ok(std::mem::replace(&mut conn.state, State::Taken))
        } else {
            Ok(State::ReadFrameHeader { got: 0 })
        }
    }

    /// Builds the reply for the completed inbound message and moves the
    /// connection into `Reply`. `Err` means close (zero-length message).
    fn start_reply(&mut self, conn: &mut Conn) -> Result<(), CloseKind> {
        if conn.raw_len == 0 {
            return Err(CloseKind::Clean);
        }
        let raw_len = conn.raw_len;
        let cfg = conn.cfg();
        let reply = match self.server.mode() {
            ServeMode::Sink => {
                let msg = conn.msg.as_ref().expect("sink reply has a message");
                let ack = sink_ack(raw_len, fnv1a64(msg));
                conn.stats.direct_messages += 1;
                Reply {
                    head: wire::encode_msg_header(MsgKind::Direct, 16).to_vec(),
                    head_pos: 0,
                    body: ReplyBody::Ack { buf: ack, pos: 0 },
                    next_chunk: 0,
                    frame: None,
                    charged: false,
                    blocked: false,
                    wire: 0,
                    raw: 16,
                }
            }
            ServeMode::Echo
                if cfg.compression_disabled() || raw_len < cfg.probe_threshold as u64 =>
            {
                conn.stats.direct_messages += 1;
                Reply {
                    head: wire::encode_msg_header(MsgKind::Direct, raw_len).to_vec(),
                    head_pos: 0,
                    body: ReplyBody::Direct { pos: 0, credit: 0 },
                    next_chunk: 0,
                    frame: None,
                    charged: false,
                    blocked: false,
                    wire: 0,
                    raw: raw_len,
                }
            }
            ServeMode::Echo => {
                // Adaptive echo with a zero-length probe: the level
                // controller, not a probe, picks the starting level.
                let mut head = wire::encode_msg_header(MsgKind::Adaptive, raw_len).to_vec();
                head.extend_from_slice(&0u32.to_le_bytes());
                Reply {
                    head,
                    head_pos: 0,
                    body: ReplyBody::Adaptive,
                    next_chunk: 0,
                    frame: None,
                    charged: false,
                    blocked: false,
                    wire: 0,
                    raw: raw_len,
                }
            }
        };
        if let Some(span) = conn.span.as_mut() {
            // The message is fully read; everything from here is the
            // write side (a refused admission re-takes the clock).
            span.switch(StageKind::Write);
        }
        conn.state = State::Reply(reply);
        Ok(())
    }

    fn drive_reply(&mut self, conn: &mut Conn, mut reply: Reply) -> ReplyFlow {
        // Message header first.
        while reply.head_pos < reply.head.len() {
            match write_step(&mut conn.stream, &reply.head[reply.head_pos..]) {
                WriteStep::Fail => return ReplyFlow::Close(CloseKind::Failed),
                WriteStep::Block => return ReplyFlow::Wait(State::Reply(reply), Interest::WRITE),
                WriteStep::Data(n) => {
                    reply.head_pos += n;
                    reply.wire += n as u64;
                }
            }
        }
        loop {
            // A frame (or ack) already encoded: put it on the wire.
            if let Some((frame, mut pos)) = reply.frame.take() {
                if !reply.charged {
                    if !self.try_admit(conn, frame.len(), StageKind::Write) {
                        reply.frame = Some((frame, pos));
                        return ReplyFlow::Wait(State::Reply(reply), Interest::NONE);
                    }
                    reply.charged = true;
                }
                while pos < frame.len() {
                    match write_step(&mut conn.stream, &frame[pos..]) {
                        WriteStep::Fail => return ReplyFlow::Close(CloseKind::Failed),
                        WriteStep::Block => {
                            reply.blocked = true;
                            reply.frame = Some((frame, pos));
                            return ReplyFlow::Wait(State::Reply(reply), Interest::WRITE);
                        }
                        WriteStep::Data(n) => {
                            pos += n;
                            reply.wire += n as u64;
                        }
                    }
                }
                // Frame done: feed the adaptation signal. Backpressure
                // raises the level (spend cycles to shrink the wire);
                // a clean write decays toward min_level.
                let cfg = conn.cfg();
                if reply.blocked {
                    conn.out_level = (conn.out_level + 1).min(cfg.max_level);
                } else if conn.out_level > cfg.min_level {
                    conn.out_level -= 1;
                }
                reply.charged = false;
                reply.blocked = false;
            }
            match &mut reply.body {
                ReplyBody::Ack { buf, pos } => {
                    if !reply.charged {
                        if !self.try_admit(conn, buf.len(), StageKind::Write) {
                            return ReplyFlow::Wait(State::Reply(reply), Interest::NONE);
                        }
                        reply.charged = true;
                    }
                    while *pos < buf.len() {
                        match write_step(&mut conn.stream, &buf[*pos..]) {
                            WriteStep::Fail => return ReplyFlow::Close(CloseKind::Failed),
                            WriteStep::Block => {
                                return ReplyFlow::Wait(State::Reply(reply), Interest::WRITE)
                            }
                            WriteStep::Data(n) => {
                                *pos += n;
                                reply.wire += n as u64;
                            }
                        }
                    }
                    return self.finish_message(conn, reply);
                }
                ReplyBody::Direct { pos, credit } => {
                    let msg_len = conn.msg.as_ref().expect("direct reply has a message").len();
                    while *pos < msg_len {
                        if *credit == 0 {
                            let quantum = (msg_len - *pos).min(conn.cfg().buffer_size);
                            if !self.try_admit(conn, quantum, StageKind::Write) {
                                return ReplyFlow::Wait(State::Reply(reply), Interest::NONE);
                            }
                            *credit = quantum;
                        }
                        let end = (*pos + *credit).min(msg_len);
                        let msg = conn.msg.as_ref().expect("direct reply has a message");
                        match write_step(&mut conn.stream, &msg[*pos..end]) {
                            WriteStep::Fail => return ReplyFlow::Close(CloseKind::Failed),
                            WriteStep::Block => {
                                return ReplyFlow::Wait(State::Reply(reply), Interest::WRITE)
                            }
                            WriteStep::Data(n) => {
                                *pos += n;
                                *credit -= n;
                                reply.wire += n as u64;
                            }
                        }
                    }
                    return self.finish_message(conn, reply);
                }
                ReplyBody::Adaptive => {
                    let msg = conn.msg.as_ref().expect("adaptive reply has a message");
                    if reply.next_chunk >= msg.len() {
                        return self.finish_message(conn, reply);
                    }
                    let cfg = conn.cfg();
                    let start = reply.next_chunk;
                    let end = (start + cfg.buffer_size).min(msg.len());
                    let level = conn.out_level.clamp(cfg.min_level, cfg.max_level);
                    reply.next_chunk = end;
                    if level == 0 {
                        // Stored frames are pure memcpy: build inline.
                        let chunk = &msg[start..end];
                        let hdr = FrameHeader {
                            level: 0,
                            raw_len: chunk.len() as u32,
                            payload_len: chunk.len() as u32,
                        };
                        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + chunk.len());
                        frame.extend_from_slice(&hdr.encode());
                        frame.extend_from_slice(chunk);
                        conn.stats.record_buffer(0);
                        reply.frame = Some((frame, 0));
                        continue;
                    }
                    // Compression is worker-pool work; one job in
                    // flight per connection bounds the queue.
                    let chunk = msg[start..end].to_vec();
                    if let Some(span) = conn.span.as_mut() {
                        span.flush();
                    }
                    self.pool.submit(Job {
                        conn: conn.token,
                        work: Box::new(move |codec| {
                            let mut payload = Vec::new();
                            codec.compress_at(level, &chunk, &mut payload);
                            let (level, trip, body): (u8, bool, &[u8]) =
                                if payload.len() >= chunk.len() {
                                    (0, true, &chunk)
                                } else {
                                    (level, false, &payload)
                                };
                            let hdr = FrameHeader {
                                level,
                                raw_len: chunk.len() as u32,
                                payload_len: body.len() as u32,
                            };
                            let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
                            frame.extend_from_slice(&hdr.encode());
                            frame.extend_from_slice(body);
                            Ok(JobDone::Deflated { level, trip, frame })
                        }),
                    });
                    return ReplyFlow::Wait(State::Deflate(reply), Interest::NONE);
                }
            }
        }
    }

    /// Reply fully written: mirror the blocking serve loop's accounting
    /// and return to the message boundary.
    fn finish_message(&mut self, conn: &mut Conn, reply: Reply) -> ReplyFlow {
        let id = conn.id.expect("served connection is registered");
        conn.stats.messages += 1;
        conn.stats.raw_bytes += reply.raw;
        conn.stats.wire_bytes += reply.wire;
        if let Some(snap) = self
            .server
            .registry()
            .update(id, conn.raw_len, reply.wire, &conn.stats)
        {
            self.server.scheduler().report_delay(id, snap);
        }
        let span_times = conn.span.take().map(MsgSpan::finish);
        if let Some(times) = span_times {
            self.server.tracer().record(
                id,
                conn.raw_len,
                self.server.events().now().as_secs_f64(),
                &times,
            );
        }
        self.server.events().emit(Event::MessageServed {
            conn: id,
            raw_bytes: conn.raw_len,
            reply_wire_bytes: reply.wire,
            times: span_times.unwrap_or_default(),
        });
        if let Some(times) = span_times.filter(|t| t.total_us > self.slow_us) {
            self.server.events().emit(Event::SlowRequest {
                conn: id,
                raw_bytes: conn.raw_len,
                times,
            });
        }
        if self.server.events().is_active() {
            if let Some(&adoc::LevelEvent { level, reason, .. }) = conn.stats.level_timeline.last()
            {
                if let Some(from) = conn.last_level.filter(|&prev| prev != level) {
                    self.server.events().emit(Event::LevelChange {
                        conn: id,
                        from,
                        to: level,
                        reason,
                    });
                }
                conn.last_level = Some(level);
            }
            self.server.note_pool_evictions();
        }
        // Returning the message buffer at every boundary caps idle
        // memory at socket buffers and makes the bytes visible to the
        // pool's idle gauges.
        conn.msg = None;
        conn.filled = 0;
        conn.raw_len = 0;
        ReplyFlow::Wait(State::ReadHeader { got: 0 }, Interest::READ)
    }

    /// Test hook: queue a job that panics, attributed to the
    /// connection currently owning `token` — exercises the typed
    /// worker-failure path end to end.
    #[cfg(test)]
    fn inject_panic_job(&self, token: u64) {
        self.pool.submit(Job {
            conn: token,
            work: Box::new(|_codec| panic!("injected worker panic")),
        });
    }

    /// Test hook: tokens of currently-owned connections.
    #[cfg(test)]
    fn tokens(&self) -> Vec<u64> {
        self.conns.keys().copied().collect()
    }
}

enum ReplyFlow {
    /// Park or block with this state and poller interest (also how a
    /// finished message returns to the read-header boundary).
    Wait(State, Interest),
    Close(CloseKind),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeMode, ServerConfig};
    use adoc::AdocSocket;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;

    fn reactor_with(cfg: ServerConfig) -> (Reactor, Arc<Server>, TcpListener, SocketAddr) {
        let server = Server::new(cfg).expect("config");
        let reactor =
            Reactor::new(Arc::clone(&server), Arc::new(PendingGroups::default())).expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        (reactor, server, listener, addr)
    }

    /// Accepts one socket and injects it into the reactor.
    fn accept_into(reactor: &Reactor, listener: &TcpListener) {
        let (stream, peer) = listener.accept().expect("accept");
        reactor.handle().register(stream, peer);
    }

    fn run_until(
        reactor: &mut Reactor,
        deadline: Duration,
        mut done: impl FnMut(&mut Reactor) -> bool,
    ) {
        let end = Instant::now() + deadline;
        while !done(reactor) {
            assert!(Instant::now() < end, "reactor did not reach the condition");
            reactor.run_once(Some(Duration::from_millis(10)));
        }
    }

    #[test]
    fn echoes_direct_and_adaptive_messages_byte_exactly() {
        let (mut reactor, server, listener, addr) =
            reactor_with(ServerConfig::builder().build().expect("config"));
        let small = b"tiny direct message".to_vec();
        let big = adoc_data::generate(adoc_data::DataKind::Ascii, 1 << 20, 7);
        let client = {
            let (small, big) = (small.clone(), big.clone());
            std::thread::spawn(move || {
                let sock = TcpStream::connect(addr).expect("connect");
                let r = sock.try_clone().expect("clone");
                let mut conn = AdocSocket::new(r, sock);
                for payload in [&small, &big] {
                    conn.write_all(payload).expect("send");
                    let mut back = vec![0u8; payload.len()];
                    conn.read_exact(&mut back).expect("echo");
                    assert_eq!(&back, payload, "echo must be byte-exact");
                }
            })
        };
        accept_into(&reactor, &listener);
        run_until(&mut reactor, Duration::from_secs(30), |_| {
            client.is_finished()
        });
        client.join().expect("client");
        // Client closed: the reactor observes EOF at the boundary.
        run_until(&mut reactor, Duration::from_secs(10), |r| r.live() == 0);
        let totals = server.registry().totals();
        assert_eq!(totals.accepted, 1);
        assert_eq!(totals.completed, 1);
        assert_eq!(totals.failed, 0);
        assert_eq!(server.pool().stats().outstanding, 0, "no leaked buffers");
    }

    #[test]
    fn sink_mode_acknowledges_with_length_and_hash() {
        let (mut reactor, server, listener, addr) = reactor_with(
            ServerConfig::builder()
                .mode(ServeMode::Sink)
                .build()
                .expect("config"),
        );
        let payload = adoc_data::generate(adoc_data::DataKind::Binary, 200_000, 3);
        let expect_hash = fnv1a64(&payload);
        let client = {
            let payload = payload.clone();
            std::thread::spawn(move || {
                let sock = TcpStream::connect(addr).expect("connect");
                let r = sock.try_clone().expect("clone");
                let mut conn = AdocSocket::new(r, sock);
                conn.write_all(&payload).expect("send");
                let mut ack = [0u8; 16];
                conn.read_exact(&mut ack).expect("ack");
                ack
            })
        };
        accept_into(&reactor, &listener);
        run_until(&mut reactor, Duration::from_secs(30), |_| {
            client.is_finished()
        });
        let ack = client.join().expect("client");
        assert_eq!(
            u64::from_le_bytes(ack[..8].try_into().unwrap()),
            payload.len() as u64
        );
        assert_eq!(
            u64::from_le_bytes(ack[8..].try_into().unwrap()),
            expect_hash
        );
        run_until(&mut reactor, Duration::from_secs(10), |r| r.live() == 0);
        assert_eq!(server.registry().totals().completed, 1);
    }

    #[test]
    fn a_throttled_connection_parks_without_spinning() {
        let (mut reactor, server, listener, addr) = reactor_with(
            ServerConfig::builder()
                // 1 MB/s aggregate: a 1 MiB direct echo (≈ 2 MiB of
                // admissions) must park repeatedly.
                .budget(Some(1_000_000.0))
                .build()
                .expect("config"),
        );
        let payload = adoc_data::generate(adoc_data::DataKind::Ascii, 1 << 20, 11);
        let client = {
            let payload = payload.clone();
            std::thread::spawn(move || {
                let sock = TcpStream::connect(addr).expect("connect");
                let r = sock.try_clone().expect("clone");
                // Probe threshold above the payload keeps the client's
                // own send direct, so inbound pacing is chunk-by-chunk.
                let cfg = AdocConfig {
                    probe_threshold: 8 << 20,
                    ..AdocConfig::default()
                };
                let mut conn = AdocSocket::with_config(r, sock, cfg).expect("client cfg");
                conn.write_all(&payload).expect("send");
                let mut back = vec![0u8; payload.len()];
                conn.read_exact(&mut back).expect("echo");
                assert_eq!(back, payload);
            })
        };
        accept_into(&reactor, &listener);
        let mut observed_parked = false;
        let mut checked_quiet = false;
        let end = Instant::now() + Duration::from_secs(60);
        while !client.is_finished() {
            assert!(Instant::now() < end, "throttled echo never finished");
            reactor.run_once(Some(Duration::from_millis(20)));
            if server.scheduler().parked() == 1 && !checked_quiet {
                observed_parked = true;
                checked_quiet = true;
                // The socket has pending bytes, but a parked connection
                // holds Interest::NONE: polling must report *nothing*
                // (no busy-wake spin) until the retry timer or the
                // scheduler waker fires.
                let quiet = reactor.run_once(Some(Duration::ZERO));
                assert_eq!(quiet, 0, "a parked connection must not spin on readiness");
            }
        }
        client.join().expect("client");
        assert!(
            observed_parked,
            "the budget must have parked the connection"
        );
        run_until(&mut reactor, Duration::from_secs(10), |r| r.live() == 0);
        assert_eq!(
            server.scheduler().parked(),
            0,
            "parked gauge drains to zero"
        );
        assert_eq!(server.registry().totals().completed, 1);
    }

    #[test]
    fn a_worker_panic_closes_the_connection_with_a_typed_error() {
        let (mut reactor, server, listener, addr) =
            reactor_with(ServerConfig::builder().build().expect("config"));
        let sock = TcpStream::connect(addr).expect("connect");
        let mut probe = sock.try_clone().expect("clone");
        // Register and reach the serving state: two header bytes sniff
        // the connection into the registry.
        probe.write_all(&[MAGIC, 0]).expect("sniff bytes");
        accept_into(&reactor, &listener);
        run_until(&mut reactor, Duration::from_secs(10), |r| {
            r.tokens().len() == 1 && r.conns.values().all(|c| c.id.is_some())
        });
        let token = reactor.tokens()[0];

        // Silence the expected panic's default hook output.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        reactor.inject_panic_job(token);
        run_until(&mut reactor, Duration::from_secs(10), |r| r.live() == 0);
        std::panic::set_hook(hook);

        let totals = server.registry().totals();
        assert_eq!(totals.failed, 1, "the panic must fail exactly that conn");
        // The peer observes the close instead of hanging forever.
        let mut buf = [0u8; 1];
        probe
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let n = probe.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "the socket must be closed, not wedged");
    }

    #[test]
    fn wake_consume_order_never_strands_the_pending_flag() {
        // Mirrors run_once's consume cycle: drain the pipe, THEN clear.
        // A wake racing in between is coalesced into the current cycle
        // (pending is still true, so it writes nothing), and the first
        // wake after the clear must land a fresh byte — pending can
        // never end up true over an empty pipe, which would leave the
        // waker permanently dead.
        let (mut rx, tx) = io::pipe().expect("pipe");
        let waker = Waker {
            tx: Mutex::new(tx),
            pending: AtomicBool::new(false),
        };
        waker.wake();
        let mut buf = [0u8; 64];
        assert_eq!(rx.read(&mut buf).expect("drain"), 1);
        waker.wake(); // races the consume cycle: coalesced, no byte
        waker.clear();
        waker.wake(); // first wake after the clear re-arms the pipe
        let poller = Poller::new().expect("poller");
        poller
            .register(rx.as_raw_fd(), 1, Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        assert_eq!(
            n, 1,
            "a wake after clear() must write a byte or the reactor sleeps forever"
        );
    }

    #[test]
    fn a_zero_length_adaptive_message_is_a_clean_close() {
        let (mut reactor, server, listener, addr) =
            reactor_with(ServerConfig::builder().build().expect("config"));
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(&wire::encode_msg_header(MsgKind::Adaptive, 0))
            .expect("header");
        accept_into(&reactor, &listener);
        run_until(&mut reactor, Duration::from_secs(10), |r| r.live() == 0);
        let totals = server.registry().totals();
        assert_eq!(
            totals.completed, 1,
            "a zero-length message of either kind is a client-initiated close"
        );
        assert_eq!(totals.failed, 0);
        // The server closed the socket instead of waiting for frames
        // that will never come.
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 1];
        assert_eq!(sock.read(&mut buf).unwrap_or(0), 0, "socket must close");
    }

    /// Forces an RST on close (`SO_LINGER` with a zero timeout) so the
    /// peer observes ERR/HUP instead of an orderly FIN.
    fn rst_close(sock: TcpStream) {
        use std::os::raw::c_int;
        #[repr(C)]
        struct Linger {
            l_onoff: c_int,
            l_linger: c_int,
        }
        extern "C" {
            fn setsockopt(
                fd: c_int,
                level: c_int,
                name: c_int,
                value: *const Linger,
                len: u32,
            ) -> c_int;
        }
        #[cfg(target_os = "linux")]
        const SOL_SOCKET: c_int = 1;
        #[cfg(target_os = "linux")]
        const SO_LINGER: c_int = 13;
        #[cfg(not(target_os = "linux"))]
        const SOL_SOCKET: c_int = 0xffff;
        #[cfg(not(target_os = "linux"))]
        const SO_LINGER: c_int = 0x0080;
        let linger = Linger {
            l_onoff: 1,
            l_linger: 0,
        };
        let rc = unsafe {
            setsockopt(
                sock.as_raw_fd(),
                SOL_SOCKET,
                SO_LINGER,
                &linger,
                std::mem::size_of::<Linger>() as u32,
            )
        };
        assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
        drop(sock); // close() now sends RST
    }

    #[test]
    fn a_dead_peer_closes_a_parked_connection_instead_of_spinning() {
        // A parked connection holds Interest::NONE, but ERR/HUP is
        // reported regardless of the mask. A peer reset must close it
        // on the first poll that sees the hangup — re-dispatching the
        // state machine would re-refuse admission (10 B/s below never
        // admits a quantum within the test horizon) and re-park on
        // every level-triggered HUP: a 100% CPU loop that also grows
        // the timer heap without bound.
        let (mut reactor, server, listener, addr) = reactor_with(
            ServerConfig::builder()
                .budget(Some(10.0))
                .build()
                .expect("config"),
        );
        let sock = TcpStream::connect(addr).expect("connect");
        let writer = {
            let s = sock.try_clone().expect("clone");
            std::thread::spawn(move || {
                (&s).write_all(&wire::encode_msg_header(MsgKind::Direct, 1 << 20))
                    .expect("header");
                // The debt-based bucket admits the first buffer_size
                // quantum on burst credit; one byte past it forces a
                // second admission, which is refused — the park.
                (&s).write_all(&vec![0x5au8; 200 * 1024 + 1]).expect("body");
            })
        };
        accept_into(&reactor, &listener);
        run_until(&mut reactor, Duration::from_secs(10), |_| {
            server.scheduler().parked() == 1
        });
        writer.join().expect("writer");
        rst_close(sock);
        run_until(&mut reactor, Duration::from_secs(5), |r| r.live() == 0);
        let totals = server.registry().totals();
        assert_eq!(totals.failed, 1, "the reset conn is counted Failed");
        assert_eq!(
            server.scheduler().parked(),
            0,
            "the parked gauge drains with the close"
        );
    }

    #[test]
    fn drain_closes_idle_connections_at_the_boundary() {
        let (mut reactor, server, listener, addr) =
            reactor_with(ServerConfig::builder().build().expect("config"));
        let done = Arc::new(AtomicBool::new(false));
        let client = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let sock = TcpStream::connect(addr).expect("connect");
                let r = sock.try_clone().expect("clone");
                let mut conn = AdocSocket::new(r, sock);
                conn.write_all(b"one message then idle").expect("send");
                let mut back = vec![0u8; b"one message then idle".len()];
                conn.read_exact(&mut back).expect("echo");
                // Hold the connection open at the boundary until the
                // server drains us away.
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        accept_into(&reactor, &listener);
        run_until(&mut reactor, Duration::from_secs(30), |_| {
            server.registry().totals().messages >= 1
        });
        server.begin_drain();
        run_until(&mut reactor, Duration::from_secs(10), |r| r.live() == 0);
        done.store(true, Ordering::Relaxed);
        client.join().expect("client");
        let totals = server.registry().totals();
        assert_eq!(totals.completed, 1, "an idle boundary conn drains cleanly");
        assert_eq!(totals.failed, 0);
    }
}
