//! `adoc-serverd` — the AdOC transfer daemon.
//!
//! ```text
//! adoc-serverd [--listen ADDR] [--max-conns N] [--budget-mbit F]
//!              [--mode echo|sink] [--hello-timeout-ms N]
//!              [--drain-deadline-ms N] [--pool-idle N]
//!              [--default-tier control|paid|bulk]
//!              [--tier-peer PREFIX=TIER]...
//!              [--metrics-every-secs N] [--port-file PATH]
//! ```
//!
//! The wire budget is shared by a **work-conserving weighted
//! scheduler**: share idle connections leave unused flows to backlogged
//! ones, and `--default-tier` / `--tier-peer` set the weights
//! (`control` = 4×, `paid` = 2×, `bulk` = 1×). `--tier-peer` matches
//! peer-address prefixes, first match wins, and may repeat:
//! `--tier-peer 10.0.7.=paid --tier-peer 10.0.8.=control`.
//!
//! The daemon serves until its **stdin** closes or a `drain` line
//! arrives, then drains gracefully (in-flight messages finish) and
//! prints a final metrics document on stdout. A `metrics` line on stdin
//! prints a snapshot on demand; `budget <mbit>` (or `budget off`)
//! retunes the aggregate budget live. CI bounds a run with
//! `sleep 30 | adoc-serverd …` (stdin EOF after 30 s ⇒ graceful exit).

use adoc_server::{daemon, ServeMode, Server, ServerConfig, Tier};
use std::io::BufRead;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: adoc-serverd [--listen ADDR] [--max-conns N] [--budget-mbit F]\n\
         \u{20}                   [--mode echo|sink] [--hello-timeout-ms N]\n\
         \u{20}                   [--drain-deadline-ms N] [--pool-idle N]\n\
         \u{20}                   [--default-tier control|paid|bulk]\n\
         \u{20}                   [--tier-peer PREFIX=TIER]...\n\
         \u{20}                   [--metrics-every-secs N] [--port-file PATH]\n\
         the budget is work-conserving weighted fair: tiers weigh control=4x,\n\
         paid=2x, bulk=1x; --tier-peer assigns a tier by peer-address prefix\n\
         (first match wins) and may be repeated\n\
         stdin: 'metrics' prints a snapshot, 'budget <mbit>|off' retunes the\n\
         budget live, 'drain' or EOF shuts down gracefully"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(v) = args.next() else {
        eprintln!("missing value for {flag}");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value {v:?} for {flag}");
        usage();
    })
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut cfg = ServerConfig::default();
    let mut metrics_every: u64 = 0;
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = parse(&mut args, "--listen"),
            "--max-conns" => cfg.max_conns = parse(&mut args, "--max-conns"),
            "--budget-mbit" => {
                let mbit: f64 = parse(&mut args, "--budget-mbit");
                if !(mbit > 0.0 && mbit.is_finite()) {
                    eprintln!("--budget-mbit wants a positive finite Mbit/s, got {mbit}");
                    usage();
                }
                cfg.budget_bytes_per_sec = Some(mbit * 1e6 / 8.0);
            }
            "--mode" => {
                cfg.mode = match parse::<String>(&mut args, "--mode").as_str() {
                    "echo" => ServeMode::Echo,
                    "sink" => ServeMode::Sink,
                    other => {
                        eprintln!("unknown mode {other:?}");
                        usage();
                    }
                }
            }
            "--hello-timeout-ms" => {
                cfg.adoc.hello_timeout =
                    Duration::from_millis(parse(&mut args, "--hello-timeout-ms"));
            }
            "--drain-deadline-ms" => {
                cfg.drain_deadline = Duration::from_millis(parse(&mut args, "--drain-deadline-ms"));
            }
            "--pool-idle" => cfg.pool_max_idle = Some(parse(&mut args, "--pool-idle")),
            "--default-tier" => cfg.default_tier = parse(&mut args, "--default-tier"),
            "--tier-peer" => {
                let spec: String = parse::<String>(&mut args, "--tier-peer");
                let Some((prefix, tier)) = spec.split_once('=') else {
                    eprintln!("--tier-peer wants PREFIX=TIER, got {spec:?}");
                    usage();
                };
                let Ok(tier) = tier.parse::<Tier>() else {
                    eprintln!("bad tier in {spec:?}");
                    usage();
                };
                cfg.tier_overrides.push((prefix.to_string(), tier));
            }
            "--metrics-every-secs" => metrics_every = parse(&mut args, "--metrics-every-secs"),
            "--port-file" => port_file = Some(parse(&mut args, "--port-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let server = match Server::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adoc-serverd: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let handle = match daemon::spawn(server, &listen) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("adoc-serverd: cannot listen on {listen}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("adoc-serverd: listening on {}", handle.addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, handle.addr().port().to_string()) {
            eprintln!("adoc-serverd: cannot write port file {path}: {e}");
        }
    }

    // Optional periodic metrics on stderr (stdout stays machine-clean).
    // The interval is slept in short slices so a drain is noticed within
    // ~250 ms instead of up to a full interval.
    let periodic = (metrics_every > 0).then(|| {
        let server = std::sync::Arc::clone(handle.server());
        std::thread::spawn(move || {
            let slice = Duration::from_millis(250);
            'outer: loop {
                let mut slept = Duration::ZERO;
                while slept < Duration::from_secs(metrics_every) {
                    if server.is_draining() {
                        break 'outer;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if server.is_draining() {
                    break;
                }
                eprintln!("{}", server.metrics_json());
            }
        })
    });

    // Control loop: serve until stdin EOF or an explicit drain command.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line.as_deref().map(str::trim) {
            Ok("metrics") => println!("{}", handle.metrics_json()),
            Ok("drain") | Err(_) => break,
            Ok(cmd) if cmd.starts_with("budget ") => {
                // Live budget retuning: 'budget 64' caps at 64 Mbit/s,
                // 'budget off' lifts the cap. Waiters re-pace at once.
                let arg = cmd["budget ".len()..].trim();
                let budget = if arg == "off" {
                    Some(None)
                } else {
                    arg.parse::<f64>()
                        .ok()
                        .filter(|m| *m > 0.0 && m.is_finite())
                        .map(|m| Some(m * 1e6 / 8.0))
                };
                match budget {
                    Some(b) => handle.server().scheduler().set_budget(b),
                    None => eprintln!("adoc-serverd: bad budget {arg:?} (Mbit/s or 'off')"),
                }
            }
            Ok(_) => {}
        }
    }

    eprintln!("adoc-serverd: draining…");
    let server = std::sync::Arc::clone(handle.server());
    match handle.shutdown() {
        Ok(()) => {
            println!("{}", server.metrics_json());
            eprintln!("adoc-serverd: drained cleanly");
        }
        Err(e) => {
            eprintln!("adoc-serverd: shutdown error: {e}");
            std::process::exit(1);
        }
    }
    if let Some(t) = periodic {
        let _ = t.join();
    }
}
